//! Static contention-shape inference (the `contention` pass).
//!
//! Classifies every allocation site (pool index) by its predicted
//! *contention shape* — the dynamic personality of its lock — by
//! combining three static ingredients:
//!
//! * **loop weight**: a per-pc abstract trip count from back-edges
//!   ([`LOOP_WEIGHT`] per nesting level, saturating at [`WEIGHT_CAP`]),
//!   so an acquisition inside a loop predicts many dynamic
//!   acquisitions;
//! * **interprocedural reach**: per-method summaries of acquisition,
//!   `wait`, and `notify` weights, propagated through `Invoke` with the
//!   same substitution fixpoint as the guards pass (callee weights
//!   multiply by the call site's loop weight);
//! * **thread roles**: the [`EntryRole`]s of the concurrent harness
//!   ground each summary — a site's predicted weight is its reachable
//!   weight times the role's thread count, and the number of *distinct
//!   acquiring roles' threads* decides whether contention is even
//!   possible.
//!
//! The shapes form a precedence lattice (first match wins):
//!
//! | shape | evidence | plan |
//! |---|---|---|
//! | [`Shape::ThreadLocal`] | escape pass proves the pool local | elide |
//! | [`Shape::WaitHeavy`] | reachable `wait`/`notify` | pre-inflate |
//! | [`Shape::HotMutex`] | ≥ 2 acquiring threads, looped weight | pin FIFO |
//! | [`Shape::Churn`] | only dynamic (`aloadpool`) lock identities | deflating backend |
//! | [`Shape::Uncontended`] | everything else | thin default |
//!
//! The result is a machine-readable [`SyncPlan`] the VM applies at
//! startup
//! (`Vm::apply_sync_plan`) and the bench harness can consume in place
//! of a dynamic profile-derived plan. `lockcheck --plan` checks the
//! static plan against the dynamic [`ContentionProfile`] per site; the
//! agreement contract (divergence allowed only toward the conservative
//! side) is stated in DESIGN.md §18 and enforced by
//! [`classify_agreement`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use thinlock_obs::ContentionProfile;
use thinlock_runtime::heap::ObjRef;
use thinlock_vm::plan::{BackendHint, PlanEntry, SyncPlan};
use thinlock_vm::program::{Method, Program};

use crate::escape::EscapeReport;
use crate::guards::EntryRole;
use crate::lockstack::{MethodLockFacts, Sym};
use crate::nestdepth::NestDepthReport;

/// Abstract trip-count multiplier per loop-nesting level.
pub const LOOP_WEIGHT: u64 = 8;

/// Saturation bound for abstract weights. Keeps the interprocedural
/// fixpoint finite (recursion would otherwise grow weights without
/// bound) and makes "very hot" a terminal judgment.
pub const WEIGHT_CAP: u64 = 4096;

/// Dynamic contended-acquisition count below which a site counts as
/// *cold* for the agreement gate: a static protection (pin or
/// pre-inflation) on a cold site is a conservative divergence, not a
/// disagreement.
pub const AGREE_COLD: u64 = 8;

/// Dynamic contended-acquisition count above which a site counts as
/// *hot* for the agreement gate: the static plan must protect it. The
/// band between [`AGREE_COLD`] and [`AGREE_HOT`] is hysteresis — either
/// verdict agrees — so scheduler noise near a threshold cannot flip the
/// gate.
pub const AGREE_HOT: u64 = 64;

/// Predicted contention personality of one pool site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Shape {
    /// Provably confined to one thread: synchronization is removable.
    ThreadLocal,
    /// Shared in principle but no evidence of heat: thin locking wins.
    Uncontended,
    /// Acquired by several threads inside loops: blocking acquisitions
    /// dominate, FIFO admission keeps the handoff fair.
    HotMutex,
    /// Reached by `wait`/`notify`: parking is part of the protocol, so
    /// the fat shape should be armed before the first waiter arrives.
    WaitHeavy,
    /// Lock identities resolved only dynamically (`aloadpool`) inside
    /// loops: many short-lived monitors, so a deflating backend bounds
    /// the monitor population.
    Churn,
}

impl Shape {
    /// Stable lowercase name used in JSON reports and ground-truth
    /// labels.
    pub fn as_str(self) -> &'static str {
        match self {
            Shape::ThreadLocal => "thread-local",
            Shape::Uncontended => "uncontended",
            Shape::HotMutex => "hot-mutex",
            Shape::WaitHeavy => "wait-heavy",
            Shape::Churn => "churn",
        }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The contention verdict for one pool index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteShape {
    /// Pool index of the site.
    pub pool: u32,
    /// Predicted shape.
    pub shape: Shape,
    /// Total worker threads across roles that acquire this site.
    pub threads: u32,
    /// Grounded acquisition weight (loop-weighted, times threads,
    /// saturating).
    pub weight: u64,
    /// Grounded `wait` weight reaching this site.
    pub waits: u64,
    /// Grounded `notify` weight reaching this site.
    pub notifies: u64,
    /// One-line human-readable justification.
    pub reason: String,
}

/// Result of the contention pass over one program.
#[derive(Debug, Clone, Default)]
pub struct ContentionReport {
    /// Per-site verdicts, sorted by pool index, one per pool object.
    pub sites: Vec<SiteShape>,
    /// Acquisition weight on symbols that could not be grounded to a
    /// pool index (dynamic `aloadpool` identities, unresolved
    /// arguments) — the evidence behind [`Shape::Churn`], and a
    /// coverage caveat like `GuardsReport::unresolved_accesses`.
    pub unknown_weight: u64,
    /// The machine-readable startup plan derived from the shapes.
    pub plan: SyncPlan,
}

impl ContentionReport {
    /// The verdict for `pool`, if the program has such a site.
    pub fn site(&self, pool: u32) -> Option<&SiteShape> {
        self.sites.iter().find(|s| s.pool == pool)
    }
}

impl fmt::Display for ContentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "contention: {} site(s), unknown-weight {}",
            self.sites.len(),
            self.unknown_weight
        )?;
        for s in &self.sites {
            let entry = self.plan.entry(s.pool).copied().unwrap_or_else(|| {
                // Every site gets a plan entry; this is unreachable in
                // reports built by `analyze`, but Display must not lie.
                PlanEntry::neutral(s.pool)
            });
            let mut flags = Vec::new();
            if entry.elide {
                flags.push("elide");
            }
            if entry.pre_inflate {
                flags.push("pre-inflate");
            }
            if entry.pin_fifo {
                flags.push("pin-fifo");
            }
            let flags = if flags.is_empty() {
                String::new()
            } else {
                format!(" -> {}", flags.join("+"))
            };
            writeln!(
                f,
                "  pool[{}]: {} ({}){} [hint {}]",
                s.pool, s.shape, s.reason, flags, entry.backend_hint
            )?;
        }
        Ok(())
    }
}

/// Per-pc abstract trip count for one method: [`LOOP_WEIGHT`] per
/// enclosing back-edge (a branch whose target is at or before it),
/// saturating at [`WEIGHT_CAP`].
fn loop_weights(method: &Method) -> Vec<u64> {
    let code = method.code();
    let mut depth = vec![0u32; code.len()];
    for (pc, op) in code.iter().enumerate() {
        if let Some(target) = op.branch_target() {
            if target <= pc {
                for d in &mut depth[target..=pc] {
                    *d += 1;
                }
            }
        }
    }
    depth
        .into_iter()
        .map(|d| LOOP_WEIGHT.saturating_pow(d).min(WEIGHT_CAP))
        .collect()
}

/// Reachable lock activity in one method's namespace: per-symbol
/// weights for acquisitions, waits, and notifies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    acquires: BTreeMap<Sym, u64>,
    waits: BTreeMap<Sym, u64>,
    notifies: BTreeMap<Sym, u64>,
}

fn bump(map: &mut BTreeMap<Sym, u64>, sym: Sym, weight: u64) {
    let slot = map.entry(sym).or_insert(0);
    *slot = slot.saturating_add(weight).min(WEIGHT_CAP);
}

fn substitute(sym: Sym, args: &[Sym]) -> Sym {
    match sym {
        Sym::Arg(i) => args.get(usize::from(i)).copied().unwrap_or(Sym::Unknown),
        other => other,
    }
}

/// Folds a callee map into the caller's namespace: substitute each
/// symbol through the call-site arguments and multiply by the call
/// site's loop weight.
fn fold(dst: &mut BTreeMap<Sym, u64>, src: &BTreeMap<Sym, u64>, args: &[Sym], call_weight: u64) {
    for (&sym, &weight) in src {
        bump(
            dst,
            substitute(sym, args),
            weight.saturating_mul(call_weight).min(WEIGHT_CAP),
        );
    }
}

/// Computes, per method, the weighted lock activity reachable from it,
/// via the same monotone summary fixpoint as the guards pass. Weights
/// saturate at [`WEIGHT_CAP`], so recursion converges.
fn summarize(program: &Program, facts: &[MethodLockFacts]) -> BTreeMap<u16, Summary> {
    let weights: BTreeMap<u16, Vec<u64>> = facts
        .iter()
        .filter_map(|f| {
            let method = program.methods().get(usize::from(f.method_id))?;
            Some((f.method_id, loop_weights(method)))
        })
        .collect();
    let mut summaries: BTreeMap<u16, Summary> = facts
        .iter()
        .map(|f| (f.method_id, Summary::default()))
        .collect();
    loop {
        let mut changed = false;
        for f in facts {
            let at = |pc: usize| {
                weights
                    .get(&f.method_id)
                    .and_then(|w| w.get(pc))
                    .copied()
                    .unwrap_or(1)
                    .max(1)
            };
            let mut s = Summary::default();
            for a in &f.acquires {
                bump(&mut s.acquires, a.sym, at(a.pc));
            }
            for c in &f.cond_ops {
                let map = if c.is_wait {
                    &mut s.waits
                } else {
                    &mut s.notifies
                };
                bump(map, c.sym, at(c.pc));
            }
            for call in &f.invokes {
                let Some(callee) = summaries.get(&call.callee) else {
                    continue;
                };
                let callee = callee.clone();
                let cw = at(call.pc);
                fold(&mut s.acquires, &callee.acquires, &call.args, cw);
                fold(&mut s.waits, &callee.waits, &call.args, cw);
                fold(&mut s.notifies, &callee.notifies, &call.args, cw);
            }
            if s != summaries[&f.method_id] {
                summaries.insert(f.method_id, s);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

#[derive(Debug, Clone, Copy, Default)]
struct PoolStats {
    weight: u64,
    threads: u32,
    waits: u64,
    notifies: u64,
}

/// Runs the contention pass: grounds the per-role summaries at the
/// entry roles, classifies every pool site, and derives the startup
/// [`SyncPlan`].
pub fn analyze(
    program: &Program,
    facts: &[MethodLockFacts],
    roles: &[EntryRole],
    escape: &EscapeReport,
    nest: &NestDepthReport,
) -> ContentionReport {
    let summaries = summarize(program, facts);
    let mut stats: BTreeMap<u32, PoolStats> = BTreeMap::new();
    let mut unknown_weight = 0u64;

    for role in roles {
        let Some(summary) = summaries.get(&role.method) else {
            continue;
        };
        let threads = u64::from(role.threads.max(1));
        for (&sym, &weight) in &summary.acquires {
            match sym {
                Sym::Pool(p) => {
                    let s = stats.entry(p).or_default();
                    s.weight = s.weight.saturating_add(weight.saturating_mul(threads));
                    s.threads += role.threads.max(1);
                }
                // Entry arguments are harness integers; anything still
                // symbolic at the root is a dynamic lock identity.
                Sym::Arg(_) | Sym::Unknown => {
                    unknown_weight = unknown_weight.saturating_add(weight.saturating_mul(threads));
                }
            }
        }
        for (map, pick) in [(&summary.waits, true), (&summary.notifies, false)] {
            for (&sym, &weight) in map {
                if let Sym::Pool(p) = sym {
                    let s = stats.entry(p).or_default();
                    let grounded = weight.saturating_mul(threads);
                    if pick {
                        s.waits = s.waits.saturating_add(grounded);
                    } else {
                        s.notifies = s.notifies.saturating_add(grounded);
                    }
                }
            }
        }
    }

    let hinted: BTreeSet<u32> = nest.hints.iter().copied().collect();
    let mut sites = Vec::new();
    let mut entries = Vec::new();
    for pool in 0..program.pool_size() {
        let s = stats.get(&pool).copied().unwrap_or_default();
        let locked_dynamically =
            s.weight == 0 && unknown_weight >= LOOP_WEIGHT && escape.context.pool_is_shared(pool);
        let (shape, reason) = if escape.local_pool.contains(&pool) {
            (
                Shape::ThreadLocal,
                "escape pass proves the site thread-local".to_string(),
            )
        } else if s.waits + s.notifies > 0 {
            (
                Shape::WaitHeavy,
                format!("wait weight {}, notify weight {}", s.waits, s.notifies),
            )
        } else if s.threads >= 2 && s.weight >= LOOP_WEIGHT {
            (
                Shape::HotMutex,
                format!("{} acquiring thread(s), weight {}", s.threads, s.weight),
            )
        } else if locked_dynamically {
            (
                Shape::Churn,
                format!("no grounded acquisition, shared, dynamic lock weight {unknown_weight}"),
            )
        } else if s.weight > 0 {
            (
                Shape::Uncontended,
                format!("{} acquiring thread(s), weight {}", s.threads, s.weight),
            )
        } else {
            (Shape::Uncontended, "no reachable acquisition".to_string())
        };

        let elide = shape == Shape::ThreadLocal;
        let pre_inflate = shape == Shape::WaitHeavy || (!elide && hinted.contains(&pool));
        let pin_fifo = shape == Shape::HotMutex;
        let backend_hint = match shape {
            Shape::ThreadLocal => BackendHint::Thin,
            Shape::WaitHeavy => BackendHint::Fat,
            Shape::HotMutex => BackendHint::Fifo,
            Shape::Churn => BackendHint::Deflating,
            Shape::Uncontended => {
                if pre_inflate {
                    // A nest-depth hint (predicted count overflow)
                    // wants the fat shape even without contention.
                    BackendHint::Fat
                } else {
                    BackendHint::Thin
                }
            }
        };
        sites.push(SiteShape {
            pool,
            shape,
            threads: s.threads,
            weight: s.weight,
            waits: s.waits,
            notifies: s.notifies,
            reason,
        });
        entries.push(PlanEntry {
            pool,
            elide,
            pre_inflate,
            pin_fifo,
            backend_hint,
        });
    }

    ContentionReport {
        sites,
        unknown_weight,
        plan: SyncPlan { entries },
    }
}

/// The objects a *dynamic* profile would pin, by the same formula as
/// the bench harness's `plan_from_profile`: pinned iff the contended
/// acquisition count (`acquire_contended_thin + acquire_fat_contended`)
/// reaches `threshold`. Kept here, next to the static planner, so
/// `lockcheck --plan` can derive the dynamic side of the agreement
/// check without depending on the bench crate; a bench test asserts
/// the two formulas never drift.
///
/// # Panics
///
/// If `threshold` is zero (it would pin every object ever touched).
pub fn dynamic_pins(profile: &ContentionProfile, threshold: u64) -> Vec<ObjRef> {
    assert!(threshold >= 1, "a zero threshold would pin every object");
    profile
        .objects
        .iter()
        .filter(|o| o.acquire_contended_thin + o.acquire_fat_contended >= threshold)
        .map(|o| o.obj)
        .collect()
}

/// One site's verdict from the static↔dynamic agreement gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agreement {
    /// Static and dynamic tell the same story (including the hysteresis
    /// band between [`AGREE_COLD`] and [`AGREE_HOT`]).
    Agree,
    /// The static plan protects a site the dynamic run found cold —
    /// allowed, enumerated: static analysis over-approximates (and a
    /// serialized single-CPU schedule can hide real contention).
    Conservative,
    /// The dynamic run demanded protection the static plan lacks. This
    /// is the failure `--deny-disagreement` gates on.
    Disagree,
}

impl Agreement {
    /// Stable lowercase name used in reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Agreement::Agree => "agree",
            Agreement::Conservative => "conservative",
            Agreement::Disagree => "disagree",
        }
    }
}

impl fmt::Display for Agreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Compares one site's static plan entry against its dynamic profile.
///
/// `contended` is the dynamic contended-acquisition count
/// (`acquire_contended_thin + acquire_fat_contended`), `waits` the
/// dynamic wait count. The static side *protects* a site when it pins
/// or pre-inflates it. The rules, from DESIGN.md §18:
///
/// * dynamic waiters require static pre-inflation;
/// * a dynamically hot site (`contended >= AGREE_HOT`) requires some
///   static protection;
/// * static protection on a dynamically cold site
///   (`contended <= AGREE_COLD`, no waits) is a conservative
///   divergence;
/// * everything else agrees.
pub fn classify_agreement(entry: Option<&PlanEntry>, contended: u64, waits: u64) -> Agreement {
    let protects = entry.is_some_and(|e| e.pin_fifo || e.pre_inflate);
    let pre_inflates = entry.is_some_and(|e| e.pre_inflate);
    if waits > 0 && !pre_inflates {
        return Agreement::Disagree;
    }
    if contended >= AGREE_HOT && !protects {
        return Agreement::Disagree;
    }
    if protects && contended <= AGREE_COLD && waits == 0 {
        return Agreement::Conservative;
    }
    Agreement::Agree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::escape::{self, EscapeContext};
    use crate::guards::default_roles;
    use crate::lockstack;
    use crate::nestdepth;
    use thinlock_vm::program::{Method, MethodFlags};
    use thinlock_vm::Op;

    fn run(program: &Program, ctx: &EscapeContext) -> ContentionReport {
        let facts = lockstack::analyze_program(program);
        let escape = escape::analyze(program, &facts, ctx);
        let nest = nestdepth::analyze(&facts);
        analyze(
            program,
            &facts,
            &default_roles(program, ctx),
            &escape,
            &nest,
        )
    }

    /// `main(iters)`: loop `iters` times around `body`.
    fn looped(pool: u32, body: Vec<Op>) -> Program {
        let mut code = vec![
            Op::IConst(0),
            Op::IStore(1),
            // loop head (pc 2)
            Op::ILoad(1),
            Op::ILoad(0),
            Op::IfICmpGe(usize::MAX), // patched below
        ];
        code.extend(body);
        code.extend([Op::IInc(1, 1), Op::Goto(2), Op::Return]);
        let exit = code.len() - 1;
        code[4] = Op::IfICmpGe(exit);
        let mut p = Program::new(pool);
        p.add_method(Method::new("main", 1, 2, MethodFlags::default(), code));
        p
    }

    #[test]
    fn loop_weights_multiply_per_nesting_level() {
        let m = Method::new(
            "m",
            0,
            1,
            MethodFlags::default(),
            vec![
                Op::IConst(0), // pc 0: depth 0
                Op::IConst(0), // pc 1: depth 1 (outer loop body)
                Op::IConst(0), // pc 2: depth 2 (inner loop body)
                Op::Goto(2),   // pc 3: inner back-edge
                Op::Goto(1),   // pc 4: outer back-edge
                Op::Return,
            ],
        );
        let w = loop_weights(&m);
        assert_eq!(w[0], 1);
        assert_eq!(w[1], LOOP_WEIGHT);
        assert_eq!(w[2], LOOP_WEIGHT * LOOP_WEIGHT);
        assert_eq!(w[5], 1);
    }

    #[test]
    fn looped_shared_lock_is_a_hot_mutex() {
        let p = looped(
            1,
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::MonitorExit,
            ],
        );
        let r = run(&p, &EscapeContext::threads(4));
        let site = r.site(0).expect("pool[0] classified");
        assert_eq!(site.shape, Shape::HotMutex, "{}", site.reason);
        assert_eq!(site.threads, 4);
        assert!(site.weight >= LOOP_WEIGHT * 4);
        let entry = r.plan.entry(0).unwrap();
        assert!(entry.pin_fifo && !entry.elide && !entry.pre_inflate);
        assert_eq!(entry.backend_hint, BackendHint::Fifo);
    }

    #[test]
    fn single_thread_never_classifies_hot() {
        let p = looped(
            1,
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::MonitorExit,
            ],
        );
        // One thread: the lock is thread-local, so it is elidable, not
        // hot.
        let r = run(&p, &EscapeContext::single_threaded());
        let site = r.site(0).unwrap();
        assert_eq!(site.shape, Shape::ThreadLocal);
        assert!(r.plan.entry(0).unwrap().elide);
        assert!(r.plan.pin_pools().is_empty());
    }

    #[test]
    fn straightline_shared_lock_stays_uncontended() {
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "main",
            1,
            1,
            MethodFlags::default(),
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        let r = run(&p, &EscapeContext::threads(4));
        let site = r.site(0).unwrap();
        assert_eq!(site.shape, Shape::Uncontended, "{}", site.reason);
        let entry = r.plan.entry(0).unwrap();
        assert!(!entry.pin_fifo && !entry.pre_inflate && !entry.elide);
    }

    #[test]
    fn wait_and_notify_make_a_site_wait_heavy() {
        let p = looped(
            1,
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::Wait,
                Op::AConst(0),
                Op::Notify,
                Op::AConst(0),
                Op::MonitorExit,
            ],
        );
        let r = run(&p, &EscapeContext::threads(3));
        let site = r.site(0).unwrap();
        assert_eq!(site.shape, Shape::WaitHeavy, "{}", site.reason);
        assert!(site.waits > 0 && site.notifies > 0);
        let entry = r.plan.entry(0).unwrap();
        assert!(entry.pre_inflate && !entry.pin_fifo);
        assert_eq!(entry.backend_hint, BackendHint::Fat);
    }

    #[test]
    fn dynamic_lock_identities_classify_as_churn() {
        // Lock pool[i % 3] each iteration: every acquisition is through
        // `aloadpool` with a loop-varying index, so no pool site gets
        // grounded weight but the program clearly locks in a loop.
        let mut p = Program::new(3);
        p.add_method(Method::new(
            "main",
            1,
            3,
            MethodFlags::default(),
            vec![
                Op::IConst(0),
                Op::IStore(1),
                Op::ILoad(1), // pc 2: loop head
                Op::ILoad(0),
                Op::IfICmpGe(16),
                Op::ILoad(1),
                Op::IConst(3),
                Op::IRem,
                Op::ALoadPool,
                Op::AStore(2),
                Op::ALoad(2),
                Op::MonitorEnter,
                Op::ALoad(2),
                Op::MonitorExit,
                Op::IInc(1, 1),
                Op::Goto(2),
                Op::Return,
            ],
        ));
        let r = run(&p, &EscapeContext::threads(2));
        assert!(r.unknown_weight >= LOOP_WEIGHT);
        for pool in 0..3 {
            let site = r.site(pool).unwrap();
            assert_eq!(site.shape, Shape::Churn, "pool[{pool}]: {}", site.reason);
            assert_eq!(
                r.plan.entry(pool).unwrap().backend_hint,
                BackendHint::Deflating
            );
        }
    }

    #[test]
    fn callee_weights_multiply_through_loops_and_substitute_args() {
        // main loops invoking bump(pool[0]); bump locks arg0 without a
        // loop of its own. The acquisition must ground to pool[0] with
        // looped weight.
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "main",
            1,
            2,
            MethodFlags::default(),
            vec![
                Op::IConst(0),
                Op::IStore(1),
                Op::ILoad(1), // pc 2: loop head
                Op::ILoad(0),
                Op::IfICmpGe(8),
                Op::AConst(0),
                Op::Invoke(1),
                Op::Goto(2),
                Op::Return,
            ],
        ));
        p.add_method(Method::new(
            "bump",
            1,
            1,
            MethodFlags::default(),
            vec![
                Op::ALoad(0),
                Op::MonitorEnter,
                Op::ALoad(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        let r = run(&p, &EscapeContext::threads(2));
        let site = r.site(0).unwrap();
        assert_eq!(site.shape, Shape::HotMutex, "{}", site.reason);
        assert!(site.weight >= LOOP_WEIGHT * 2, "weight {}", site.weight);
        assert_eq!(r.unknown_weight, 0);
    }

    #[test]
    fn recursive_weights_saturate_and_converge() {
        // rec(obj): lock obj; rec(obj) — an unbounded static cycle. The
        // fixpoint must terminate with the weight capped, not hang.
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "main",
            1,
            1,
            MethodFlags::default(),
            vec![Op::AConst(0), Op::Invoke(1), Op::Return],
        ));
        p.add_method(Method::new(
            "rec",
            1,
            1,
            MethodFlags::default(),
            vec![
                Op::ALoad(0),
                Op::MonitorEnter,
                Op::ALoad(0),
                Op::Invoke(1),
                Op::ALoad(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        let r = run(&p, &EscapeContext::threads(2));
        let site = r.site(0).unwrap();
        assert_eq!(site.weight, WEIGHT_CAP * 2, "saturated weight x threads");
        assert_eq!(site.shape, Shape::HotMutex);
    }

    #[test]
    fn library_ground_truth_shapes_are_reproduced() {
        // The concurrent library carries hand-labeled expected shapes
        // per pool site; the pass must reproduce every one of them.
        // This is the deterministic half of the `lockcheck --plan`
        // agreement gate.
        for entry in thinlock_vm::programs::concurrent_library() {
            let ctx = EscapeContext::threads(entry.total_threads());
            let roles: Vec<EntryRole> = entry
                .roles
                .iter()
                .map(|r| EntryRole {
                    name: r.method.to_string(),
                    method: entry.program.method_id(r.method).unwrap_or(0),
                    threads: r.threads,
                })
                .collect();
            let facts = lockstack::analyze_program(&entry.program);
            let escape = escape::analyze(&entry.program, &facts, &ctx);
            let nest = nestdepth::analyze(&facts);
            let r = analyze(&entry.program, &facts, &roles, &escape, &nest);
            for &(pool, expected) in &entry.expected_shapes {
                let site = r
                    .site(pool)
                    .unwrap_or_else(|| panic!("{}: pool[{pool}] has no site verdict", entry.name));
                assert_eq!(
                    site.shape.as_str(),
                    expected,
                    "{}: pool[{pool}] ({})",
                    entry.name,
                    site.reason
                );
            }
        }
    }

    #[test]
    fn agreement_rules_cover_the_lattice() {
        let protect = PlanEntry {
            pin_fifo: true,
            ..PlanEntry::neutral(0)
        };
        let inflate = PlanEntry {
            pre_inflate: true,
            ..PlanEntry::neutral(0)
        };
        let neutral = PlanEntry::neutral(0);
        // Hot dynamic site without static protection: disagree.
        assert_eq!(
            classify_agreement(Some(&neutral), AGREE_HOT, 0),
            Agreement::Disagree
        );
        assert_eq!(classify_agreement(None, AGREE_HOT, 0), Agreement::Disagree);
        // Dynamic waiters demand pre-inflation specifically.
        assert_eq!(
            classify_agreement(Some(&protect), 0, 1),
            Agreement::Disagree
        );
        assert_eq!(classify_agreement(Some(&inflate), 0, 1), Agreement::Agree);
        // Static protection on a cold site: conservative, enumerated.
        assert_eq!(
            classify_agreement(Some(&protect), AGREE_COLD, 0),
            Agreement::Conservative
        );
        // The hysteresis band agrees either way.
        assert_eq!(
            classify_agreement(Some(&protect), AGREE_COLD + 1, 0),
            Agreement::Agree
        );
        assert_eq!(
            classify_agreement(Some(&neutral), AGREE_HOT - 1, 0),
            Agreement::Agree
        );
        // Cold and unprotected: agree.
        assert_eq!(classify_agreement(Some(&neutral), 0, 0), Agreement::Agree);
    }
}
