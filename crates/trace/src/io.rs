//! Text serialization of lock traces.
//!
//! Benchmarks should be re-runnable bit-for-bit: a generated trace can be
//! written to a `.trace` file, shipped alongside results, and replayed
//! later (or on another machine) without regenerating it. The format is a
//! line-oriented text format chosen for diff-ability:
//!
//! ```text
//! thinlock-trace v1
//! name javac
//! ops
//! A 3        ; allocate 3 objects
//! L 0        ; lock object 0
//! W 200      ; 200 units of application work
//! U 0        ; unlock object 0
//! end
//! ```
//!
//! `A` lines carry a run length (allocations cluster); `L`/`U`/`W` are one
//! per line. Comments (`;` or `#`) and blank lines are ignored. Reading
//! re-derives all counters and re-validates the trace, so a corrupted
//! file is rejected rather than replayed.

use std::fmt::Write as _;

use crate::generator::{LockTrace, TraceOp};

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn err(line: usize, message: impl Into<String>) -> TraceParseError {
    TraceParseError {
        line,
        message: message.into(),
    }
}

/// Serializes a trace to the text format.
pub fn trace_to_string(trace: &LockTrace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "thinlock-trace v1");
    let _ = writeln!(out, "name {}", trace.name());
    let _ = writeln!(out, "ops");
    let mut pending_allocs: u32 = 0;
    let flush = |out: &mut String, pending: &mut u32| {
        if *pending > 0 {
            let _ = writeln!(out, "A {pending}");
            *pending = 0;
        }
    };
    for op in trace.ops() {
        match *op {
            TraceOp::Alloc => pending_allocs += 1,
            TraceOp::Lock(o) => {
                flush(&mut out, &mut pending_allocs);
                let _ = writeln!(out, "L {o}");
            }
            TraceOp::Unlock(o) => {
                flush(&mut out, &mut pending_allocs);
                let _ = writeln!(out, "U {o}");
            }
            TraceOp::Work(u) => {
                flush(&mut out, &mut pending_allocs);
                let _ = writeln!(out, "W {u}");
            }
        }
    }
    flush(&mut out, &mut pending_allocs);
    let _ = writeln!(out, "end");
    out
}

/// Parses a trace from the text format, re-validating it.
///
/// # Errors
///
/// Returns a [`TraceParseError`] naming the first offending line,
/// including validation failures (unbalanced locks, references to
/// unallocated objects).
///
/// # Example
///
/// ```
/// use thinlock_trace::io::{trace_from_str, trace_to_string};
/// use thinlock_trace::{generator, table1::BenchmarkProfile};
///
/// let profile = BenchmarkProfile::by_name("javacup").unwrap();
/// let trace = generator::generate(profile, &generator::quick_config());
/// let text = trace_to_string(&trace);
/// let back = trace_from_str(&text)?;
/// assert_eq!(trace, back);
/// # Ok::<(), thinlock_trace::io::TraceParseError>(())
/// ```
pub fn trace_from_str(text: &str) -> Result<LockTrace, TraceParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split([';', '#']).next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (line, header) = lines.next().ok_or_else(|| err(1, "empty trace file"))?;
    if header != "thinlock-trace v1" {
        return Err(err(line, "missing `thinlock-trace v1` header"));
    }
    let (line, name_line) = lines.next().ok_or_else(|| err(line, "missing name"))?;
    let name = name_line
        .strip_prefix("name ")
        .ok_or_else(|| err(line, "expected `name <benchmark>`"))?
        .to_string();
    let (line, ops_marker) = lines.next().ok_or_else(|| err(line, "missing ops"))?;
    if ops_marker != "ops" {
        return Err(err(line, "expected `ops`"));
    }

    let mut ops: Vec<TraceOp> = Vec::new();
    let mut ended = false;
    for (line_no, l) in lines {
        if l == "end" {
            ended = true;
            continue;
        }
        if ended {
            return Err(err(line_no, "content after `end`"));
        }
        let mut parts = l.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let operand: u64 = parts
            .next()
            .ok_or_else(|| err(line_no, format!("`{tag}` needs an operand")))?
            .parse()
            .map_err(|_| err(line_no, "invalid operand"))?;
        if parts.next().is_some() {
            return Err(err(line_no, "trailing tokens"));
        }
        match tag {
            "A" => {
                for _ in 0..operand {
                    ops.push(TraceOp::Alloc);
                }
            }
            "L" => ops.push(TraceOp::Lock(operand as u32)),
            "U" => ops.push(TraceOp::Unlock(operand as u32)),
            "W" => ops.push(TraceOp::Work(operand as u32)),
            other => return Err(err(line_no, format!("unknown tag `{other}`"))),
        }
    }
    if !ended {
        return Err(err(text.lines().count(), "missing `end`"));
    }
    LockTrace::from_ops(name, ops).map_err(|m| err(0, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, quick_config};
    use crate::table1::MACRO_BENCHMARKS;

    #[test]
    fn round_trips_every_generated_trace() {
        for p in &MACRO_BENCHMARKS {
            let trace = generate(p, &quick_config());
            let text = trace_to_string(&trace);
            let back = trace_from_str(&text).unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(trace, back, "{}", p.name);
        }
    }

    #[test]
    fn format_is_commentable_and_whitespace_tolerant() {
        let text = "\n; banner\nthinlock-trace v1\nname toy   ; a name\nops\nA 2\n\nL 0 # lock\nW 5\nU 0\nend\n";
        let t = trace_from_str(text).unwrap();
        assert_eq!(t.name(), "toy");
        assert_eq!(t.total_objects(), 2);
        assert_eq!(t.lock_ops(), 1);
    }

    #[test]
    fn rejects_malformed_inputs() {
        let cases = [
            ("", "empty"),
            ("not-a-header\n", "header"),
            ("thinlock-trace v1\nops\n", "name"),
            ("thinlock-trace v1\nname x\nL 0\n", "expected `ops`"),
            ("thinlock-trace v1\nname x\nops\nQ 1\nend\n", "unknown tag"),
            (
                "thinlock-trace v1\nname x\nops\nL\nend\n",
                "needs an operand",
            ),
            (
                "thinlock-trace v1\nname x\nops\nL zero\nend\n",
                "invalid operand",
            ),
            ("thinlock-trace v1\nname x\nops\nL 0\n", "missing `end`"),
            ("thinlock-trace v1\nname x\nops\nend\nL 0\n", "after `end`"),
            ("thinlock-trace v1\nname x\nops\nL 0 0\nend\n", "trailing"),
        ];
        for (text, needle) in cases {
            let e = trace_from_str(text).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "{text:?} -> {e} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn validation_runs_on_read() {
        // Lock of an unallocated object must be rejected.
        let text = "thinlock-trace v1\nname bad\nops\nL 0\nU 0\nend\n";
        let e = trace_from_str(text).unwrap_err();
        assert!(e.to_string().contains("unallocated"), "{e}");
        // Unbalanced lock as well.
        let text = "thinlock-trace v1\nname bad\nops\nA 1\nL 0\nend\n";
        assert!(trace_from_str(text).is_err());
    }

    #[test]
    fn alloc_runs_are_compact() {
        // Without per-alloc work, consecutive allocations serialize as
        // run-length lines rather than one line each.
        let mut cfg = quick_config();
        cfg.work_per_alloc = 0;
        let p = &MACRO_BENCHMARKS[0];
        let trace = generate(p, &cfg);
        let text = trace_to_string(&trace);
        let alloc_lines = text.lines().filter(|l| l.starts_with("A ")).count() as u64;
        let total_allocs = u64::from(trace.total_objects());
        assert!(
            alloc_lines < total_allocs || total_allocs <= 1,
            "{alloc_lines} lines for {total_allocs} allocs"
        );
        // And the round trip still holds in this configuration.
        assert_eq!(trace_from_str(&text).unwrap(), trace);
    }
}
