//! Seeded concurrent replay of VM programs — the dynamic side of the
//! race-detection cross-check.
//!
//! [`run_concurrent_program`] executes one [`ConcurrentProgram`] the
//! way its harness contract specifies: every
//! [`ThreadRole`](thinlock_vm::programs::ThreadRole) spawns its
//! thread count, all workers release from one barrier, and each thread
//! splits its iteration budget into seed-derived chunks with yields in
//! between, so different seeds explore different interleavings while
//! any single seed replays deterministically *in its schedule
//! perturbation* (the OS still schedules, but the perturbation points
//! are fixed by the seed).
//!
//! The caller supplies the [`TraceSink`] — typically the
//! `EraserSanitizer` of `thinlock-obs` — and this module stays agnostic
//! about what the sink computes; it only guarantees that every lock
//! event and every field access of the run streams through it.

use std::sync::{Arc, Barrier};

use thinlock::ThinLocks;
use thinlock_runtime::events::TraceSink;
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::prng::Prng;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;
use thinlock_vm::programs::ConcurrentProgram;
use thinlock_vm::{Value, Vm};

/// Outcome of one seeded concurrent replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmReplayReport {
    /// The replay seed.
    pub seed: u64,
    /// Threads that ran (across all roles).
    pub threads: u32,
    /// Total loop iterations completed across all threads.
    pub iterations: u64,
    /// Final value of every `(pool index, field)` the program's objects
    /// expose, in pool-then-field order — lets tests assert that
    /// lock-guarded counters are exact.
    pub final_fields: Vec<i32>,
}

impl VmReplayReport {
    /// Final value of `pool[pool].field`.
    pub fn field(&self, pool: usize, field: usize, fields_per_object: usize) -> Option<i32> {
        self.final_fields
            .get(pool * fields_per_object + field)
            .copied()
    }
}

/// Runs `entry` with `iters` loop iterations per worker thread, seeding
/// all schedule perturbation from `seed`. Every lock and field event is
/// streamed through `sink` when one is given.
///
/// # Errors
///
/// Returns a description if the program fails validation, a worker hits
/// a VM error, or a role's entry method is missing.
pub fn run_concurrent_program(
    entry: &ConcurrentProgram,
    iters: u32,
    seed: u64,
    sink: Option<Arc<dyn TraceSink>>,
) -> Result<VmReplayReport, String> {
    let pool_size = entry.program.pool_size() as usize;
    let fields = usize::from(entry.fields.max(1));
    let heap = Arc::new(Heap::with_capacity_and_fields(pool_size + 1, fields));
    let mut locks = ThinLocks::new(heap, ThreadRegistry::new());
    if let Some(sink) = sink {
        locks = locks.with_trace_sink(sink);
    }
    let locks = Arc::new(locks);
    let pool: Vec<ObjRef> = (0..pool_size)
        .map(|_| locks.heap().alloc())
        .collect::<Result<_, _>>()
        .map_err(|e| format!("{}: heap alloc failed: {e:?}", entry.name))?;

    for role in &entry.roles {
        if entry.program.method_id(role.method).is_none() {
            return Err(format!("{}: no method named {}", entry.name, role.method));
        }
    }

    let total_threads = entry.total_threads().max(1);
    let barrier = Arc::new(Barrier::new(total_threads as usize));
    let mut iterations = 0u64;
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        let mut worker = 0u64;
        for role in &entry.roles {
            for _ in 0..role.threads {
                let locks = Arc::clone(&locks);
                let barrier = Arc::clone(&barrier);
                let pool = pool.clone();
                let program = &entry.program;
                let method = role.method;
                let name = entry.name;
                // Distinct per-worker stream from one replay seed.
                let mut rng =
                    Prng::seed_from_u64(seed ^ (worker.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                worker += 1;
                handles.push(scope.spawn(move || -> Result<u64, String> {
                    let reg = locks
                        .registry()
                        .register()
                        .map_err(|e| format!("{name}: register failed: {e:?}"))?;
                    let vm = Vm::new(&*locks, program, pool).map_err(|e| format!("{name}: {e}"))?;
                    barrier.wait();
                    let mut done = 0u64;
                    let mut remaining = iters;
                    while remaining > 0 {
                        // Seed-derived chunking: run a slice of the loop,
                        // then yield so other schedules can interleave.
                        let chunk = rng.range_u32(1, remaining / 4 + 2).min(remaining);
                        let out = vm
                            .run(method, reg.token(), &[Value::Int(chunk as i32)])
                            .map_err(|e| format!("{name}/{method}: {e}"))?
                            .and_then(Value::as_int)
                            .ok_or_else(|| format!("{name}/{method}: no return value"))?;
                        if out != chunk as i32 {
                            return Err(format!(
                                "{name}/{method}: ran {out} of {chunk} iterations"
                            ));
                        }
                        done += u64::from(chunk);
                        remaining -= chunk;
                        if rng.gen_bool(0.5) {
                            std::thread::yield_now();
                        }
                    }
                    Ok(done)
                }));
            }
        }
        for h in handles {
            iterations += h.join().map_err(|_| "worker panicked".to_string())??;
        }
        Ok(())
    })?;

    let mut final_fields = Vec::with_capacity(pool_size * fields);
    for obj in &pool {
        for f in 0..fields {
            final_fields.push(
                locks
                    .heap()
                    .field(*obj, f)
                    .load(std::sync::atomic::Ordering::SeqCst),
            );
        }
    }
    Ok(VmReplayReport {
        seed,
        threads: total_threads,
        iterations,
        final_fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_vm::programs::concurrent_library;

    #[test]
    fn guarded_counter_is_exact_for_any_seed() {
        let entry = concurrent_library()
            .into_iter()
            .find(|e| e.name == "guarded-counter")
            .unwrap();
        for seed in [1u64, 0xDEAD_BEEF, 42] {
            let report = run_concurrent_program(&entry, 200, seed, None).unwrap();
            assert_eq!(report.threads, 2);
            assert_eq!(report.iterations, 400);
            assert_eq!(
                report.field(0, 0, 1),
                Some(400),
                "guarded increments are exact"
            );
        }
    }

    #[test]
    fn multi_role_program_runs_every_role() {
        let entry = concurrent_library()
            .into_iter()
            .find(|e| e.name == "read-mostly")
            .unwrap();
        let report = run_concurrent_program(&entry, 100, 7, None).unwrap();
        assert_eq!(report.threads, 3, "1 writer + 2 readers");
        assert_eq!(report.iterations, 300);
        assert_eq!(report.field(0, 0, 1), Some(100), "only the writer writes");
    }

    #[test]
    fn racy_counter_completes_even_though_it_races() {
        // The data race is on an int counter; the run itself must still
        // terminate and report its iteration count faithfully.
        let entry = concurrent_library()
            .into_iter()
            .find(|e| e.name == "racy-counter")
            .unwrap();
        let report = run_concurrent_program(&entry, 150, 3, None).unwrap();
        assert_eq!(report.iterations, 300);
        let v = report.field(0, 0, 1).unwrap();
        assert!(v > 0 && v <= 300, "lost updates allowed, invented ones not");
    }

    #[test]
    fn unknown_role_method_is_an_error() {
        let mut entry = concurrent_library().into_iter().next().unwrap();
        entry.roles[0].method = "nonexistent";
        assert!(run_concurrent_program(&entry, 10, 0, None).is_err());
    }
}
