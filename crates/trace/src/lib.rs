//! Macro-benchmark workload model and lock-trace replay.
//!
//! The paper's macro-benchmarks (Table 1, Figures 3 and 5) are eighteen
//! real Java programs — compilers, parsers, obfuscators, documentation
//! tools — that we cannot run without a full JVM and their (long-gone)
//! inputs. What the locking protocols actually *see* of those programs,
//! however, is fully captured by a handful of distributional facts that
//! Table 1 and Figure 3 report:
//!
//! * how many objects are created, and how many are ever synchronized;
//! * how many synchronization operations occur, and how they concentrate
//!   on few hot objects (median 22.7 syncs per synchronized object, with
//!   extremes like `HashJava`'s 4312);
//! * the nesting-depth mix (≥45%, median 80%, of lock operations hit an
//!   unlocked object; none nest deeper than four).
//!
//! This crate substitutes each benchmark with a *synthetic lock trace*
//! drawn from exactly those distributions ([`table1`] holds the per-
//! benchmark profiles, [`generator`] samples traces, [`characterize`]
//! verifies the samples match), and [`replay`] runs a trace against any
//! [`SyncProtocol`](thinlock_runtime::protocol::SyncProtocol) — which is
//! how the Figure 5 speedups are regenerated. See DESIGN.md §5 for why
//! this substitution preserves the relevant behaviour. [`concurrent`]
//! extends the model to the paper's multithreaded design target: the same
//! distributions split across worker threads with the hottest objects
//! shared. [`vmreplay`] runs the VM's seeded concurrent bytecode
//! programs under barrier-released worker threads with seed-derived
//! schedule perturbation, streaming every lock and field event through a
//! caller-supplied sink — the harness behind the static/dynamic
//! race-detector cross-check.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod characterize;
pub mod concurrent;
pub mod generator;
pub mod io;
pub mod replay;
pub mod table1;
pub mod vmreplay;

/// The deterministic, seedable PRNG the generators sample from — an
/// in-repo SplitMix64/xorshift128+ pair (no external `rand` dependency,
/// so the workspace builds offline).
pub use thinlock_runtime::prng;

pub use generator::{LockTrace, TraceConfig, TraceOp};
pub use table1::{BenchmarkProfile, MACRO_BENCHMARKS};
pub use vmreplay::{run_concurrent_program, VmReplayReport};
