//! Synthetic lock-trace generation from a Table 1 profile.
//!
//! A trace is a single-threaded sequence of allocation and balanced
//! lock/unlock operations whose distributional properties match the
//! profile it was generated from:
//!
//! * the ratio of sync operations to synchronized objects;
//! * the ratio of synchronized objects to all allocated objects;
//! * the Figure 3 nesting-depth mix, via *bursts*: each synchronized
//!   region is `lock^d … unlock^d` with `P(d ≥ k) = f_k / f_1`, which
//!   makes the fraction of lock operations at depth `k` exactly `f_k`;
//! * a Zipf-like concentration of operations on hot objects, reproducing
//!   the paper's observation that a few objects (e.g. one `Vector` inside
//!   `javalex`) absorb most synchronization.

use std::fmt;

use thinlock_runtime::prng::Prng;

use crate::table1::BenchmarkProfile;

/// One event of a lock trace. Object ids index the trace's allocation
/// order: id `k` refers to the `k`-th `Alloc` in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// Allocate the next object.
    Alloc,
    /// Acquire the monitor of an object.
    Lock(u32),
    /// Release the monitor of an object.
    Unlock(u32),
    /// Perform this many units of non-locking application work.
    ///
    /// The paper's macro-benchmarks measure *whole-program* time, in which
    /// locking is only a fraction; replaying bare lock/unlock sequences
    /// would overstate every speedup by 5-10x. Work operations restore the
    /// surrounding computation: a fixed amount per synchronization (the
    /// body of the synchronized region) plus an amount per allocation
    /// (construction and eventual collection), so each benchmark's
    /// lock-time fraction follows its Table 1 sync density.
    Work(u32),
}

/// Scaling knobs for trace generation.
///
/// Paper workloads perform up to ~20 million synchronizations; replaying
/// that per benchmark per protocol would dominate benchmark time, so the
/// default scales counts down by 1000 while preserving every ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Divide the profile's absolute counts by this factor.
    pub scale: u64,
    /// RNG seed: same profile + same config = bit-identical trace.
    pub seed: u64,
    /// Hard cap on allocated objects after scaling.
    pub max_objects: u32,
    /// Hard cap on lock operations after scaling.
    pub max_lock_ops: u64,
    /// Zipf skew exponent for object popularity (0 = uniform).
    pub skew: f64,
    /// Units of synthetic application work per lock operation (the body of
    /// the synchronized region and the code around it).
    pub work_per_sync: u32,
    /// Units of synthetic application work per allocation (object
    /// construction and amortized collection).
    pub work_per_alloc: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            scale: 1000,
            seed: 0x7e57_ab1e,
            max_objects: 100_000,
            max_lock_ops: 2_000_000,
            skew: 0.8,
            work_per_sync: DEFAULT_WORK_PER_SYNC,
            work_per_alloc: DEFAULT_WORK_PER_ALLOC,
        }
    }
}

/// Default work units accompanying each lock operation. One unit is one
/// iteration of [`crate::replay::spin_work`]'s arithmetic loop (on the
/// order of a nanosecond); the default is calibrated once, globally, so
/// that locking is a realistic minority of replay time — per-benchmark
/// differences then emerge from Table 1's own sync densities, not from
/// tuning. See EXPERIMENTS.md (Figure 5).
pub const DEFAULT_WORK_PER_SYNC: u32 = 100;

/// Default work units accompanying each allocation. See
/// [`DEFAULT_WORK_PER_SYNC`].
pub const DEFAULT_WORK_PER_ALLOC: u32 = 800;

/// A generated single-threaded lock trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockTrace {
    name: String,
    ops: Vec<TraceOp>,
    total_objects: u32,
    sync_objects: u32,
    lock_ops: u64,
}

impl LockTrace {
    /// Builds a trace directly from an operation sequence — for tests and
    /// hand-crafted workloads. Counters are derived from the ops.
    ///
    /// # Errors
    ///
    /// Returns the [`validate`](LockTrace::validate) error if the sequence
    /// is not well-formed.
    pub fn from_ops(name: impl Into<String>, ops: Vec<TraceOp>) -> Result<Self, String> {
        let total_objects = ops.iter().filter(|o| matches!(o, TraceOp::Alloc)).count() as u32;
        let lock_ops = ops.iter().filter(|o| matches!(o, TraceOp::Lock(_))).count() as u64;
        let mut locked = vec![false; total_objects as usize];
        for op in &ops {
            if let TraceOp::Lock(o) = *op {
                if let Some(slot) = locked.get_mut(o as usize) {
                    *slot = true;
                }
            }
        }
        let trace = LockTrace {
            name: name.into(),
            ops,
            total_objects,
            sync_objects: locked.iter().filter(|&&b| b).count() as u32,
            lock_ops,
        };
        trace.validate()?;
        Ok(trace)
    }

    /// The profile name this trace was generated from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The event sequence.
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// Objects allocated by the trace (sync + non-sync).
    pub fn total_objects(&self) -> u32 {
        self.total_objects
    }

    /// Objects that are ever locked.
    pub fn sync_objects(&self) -> u32 {
        self.sync_objects
    }

    /// Total lock operations (equals unlock operations).
    pub fn lock_ops(&self) -> u64 {
        self.lock_ops
    }

    /// Heap capacity a replay needs.
    pub fn required_heap_capacity(&self) -> usize {
        self.total_objects as usize
    }

    /// Checks well-formedness: every `Lock`/`Unlock` references an already
    /// allocated object, lock/unlock are balanced per object and properly
    /// nested (LIFO), and the trace ends with all monitors released.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut allocated: u32 = 0;
        let mut depth: Vec<u32> = Vec::new();
        let mut hold_stack: Vec<u32> = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                TraceOp::Alloc => {
                    allocated += 1;
                    depth.push(0);
                }
                TraceOp::Work(_) => {}
                TraceOp::Lock(o) => {
                    if o >= allocated {
                        return Err(format!("op {i}: lock of unallocated object {o}"));
                    }
                    depth[o as usize] += 1;
                    hold_stack.push(o);
                }
                TraceOp::Unlock(o) => {
                    if o >= allocated {
                        return Err(format!("op {i}: unlock of unallocated object {o}"));
                    }
                    match hold_stack.pop() {
                        Some(top) if top == o => {}
                        _ => return Err(format!("op {i}: unlock of {o} is not LIFO")),
                    }
                    if depth[o as usize] == 0 {
                        return Err(format!("op {i}: unlock of unlocked object {o}"));
                    }
                    depth[o as usize] -= 1;
                }
            }
        }
        if allocated != self.total_objects {
            return Err(format!(
                "alloc count {allocated} != declared {}",
                self.total_objects
            ));
        }
        if let Some(o) = depth.iter().position(|&d| d > 0) {
            return Err(format!("object {o} still locked at end of trace"));
        }
        Ok(())
    }
}

impl fmt::Display for LockTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace {}: {} objects ({} synced), {} lock ops, {} events",
            self.name,
            self.total_objects,
            self.sync_objects,
            self.lock_ops,
            self.ops.len()
        )
    }
}

/// Cumulative Zipf-like weights over `n` items with exponent `skew`.
fn zipf_cumulative(n: u32, skew: f64) -> Vec<f64> {
    let mut cum = Vec::with_capacity(n as usize);
    let mut total = 0.0;
    for i in 0..n {
        total += 1.0 / ((i + 1) as f64).powf(skew);
        cum.push(total);
    }
    cum
}

/// Samples an index from a cumulative weight vector.
fn sample_cumulative(cum: &[f64], rng: &mut Prng) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.range_f64(total);
    cum.partition_point(|&c| c <= x).min(cum.len() - 1)
}

/// Samples a burst depth `d ∈ 1..=4` with `P(d ≥ k) = f_k / f_1`.
fn sample_depth(fractions: &[f64; 4], rng: &mut Prng) -> u32 {
    let f1 = fractions[0].max(f64::MIN_POSITIVE);
    let x: f64 = rng.next_f64();
    // d >= k  iff  x < f_k / f_1; find the deepest k satisfied.
    let mut d = 1;
    for k in 2..=4 {
        if x < fractions[k - 1] / f1 {
            d = k as u32;
        } else {
            break;
        }
    }
    d
}

/// Generates a synthetic lock trace matching `profile` at the scale given
/// by `config`. Deterministic in `(profile, config)`.
///
/// # Example
///
/// ```
/// use thinlock_trace::{generator, table1::BenchmarkProfile};
///
/// let profile = BenchmarkProfile::by_name("javac").unwrap();
/// let trace = generator::generate(profile, &generator::quick_config());
/// assert!(trace.validate().is_ok());
/// assert!(trace.lock_ops() > 0);
/// ```
pub fn generate(profile: &BenchmarkProfile, config: &TraceConfig) -> LockTrace {
    let mut rng = Prng::seed_from_u64(config.seed ^ hash_name(profile.name));

    let scale = config.scale.max(1);
    let sync_objects =
        ((profile.synchronized_objects / scale).max(1) as u32).min(config.max_objects.max(1));
    let total_objects = ((profile.objects_created / scale).max(u64::from(sync_objects)) as u32)
        .min(config.max_objects.max(sync_objects));
    let target_lock_ops = (profile.sync_operations / scale)
        .max(u64::from(sync_objects))
        .min(config.max_lock_ops.max(1));

    // Spread synchronized objects evenly through allocation order so that
    // allocation and synchronization interleave as in a real run.
    let stride = (total_objects / sync_objects).max(1);
    let sync_ids: Vec<u32> = (0..sync_objects)
        .map(|j| (j * stride).min(total_objects - 1))
        .collect();

    let cum = zipf_cumulative(sync_objects, config.skew);

    let mut ops = Vec::new();
    let mut allocated: u32 = 0;
    let mut lock_ops: u64 = 0;
    let ensure_allocated = |ops: &mut Vec<TraceOp>, allocated: &mut u32, id: u32| {
        while *allocated <= id {
            ops.push(TraceOp::Alloc);
            if config.work_per_alloc > 0 {
                ops.push(TraceOp::Work(config.work_per_alloc));
            }
            *allocated += 1;
        }
    };

    // Touch every synchronized object at least once, in order, so the
    // synchronized-object count is exact.
    for &id in &sync_ids {
        ensure_allocated(&mut ops, &mut allocated, id);
        ops.push(TraceOp::Lock(id));
        if config.work_per_sync > 0 {
            ops.push(TraceOp::Work(config.work_per_sync));
        }
        ops.push(TraceOp::Unlock(id));
        lock_ops += 1;
    }

    // Remaining bursts follow the popularity and depth distributions.
    while lock_ops < target_lock_ops {
        let j = sample_cumulative(&cum, &mut rng);
        let id = sync_ids[j];
        ensure_allocated(&mut ops, &mut allocated, id);
        let d = sample_depth(&profile.depth_fractions, &mut rng)
            .min(u32::try_from(target_lock_ops - lock_ops).unwrap_or(u32::MAX));
        let d = d.max(1);
        for _ in 0..d {
            ops.push(TraceOp::Lock(id));
        }
        if config.work_per_sync > 0 {
            ops.push(TraceOp::Work(config.work_per_sync.saturating_mul(d)));
        }
        for _ in 0..d {
            ops.push(TraceOp::Unlock(id));
        }
        lock_ops += u64::from(d);
    }

    // Allocate the remaining (never-synchronized) objects.
    while allocated < total_objects {
        ops.push(TraceOp::Alloc);
        if config.work_per_alloc > 0 {
            ops.push(TraceOp::Work(config.work_per_alloc));
        }
        allocated += 1;
    }

    LockTrace {
        name: profile.name.to_string(),
        ops,
        total_objects,
        sync_objects,
        lock_ops,
    }
}

/// A small configuration for tests and doc examples: fast to generate and
/// replay while still exercising every distribution.
pub fn quick_config() -> TraceConfig {
    TraceConfig {
        scale: 10_000,
        seed: 42,
        max_objects: 5_000,
        max_lock_ops: 20_000,
        skew: 0.8,
        work_per_sync: 20,
        work_per_alloc: 50,
    }
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, stable across runs (unlike `DefaultHasher`).
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::MACRO_BENCHMARKS;

    #[test]
    fn every_profile_generates_valid_trace() {
        for p in &MACRO_BENCHMARKS {
            let trace = generate(p, &quick_config());
            trace
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert!(trace.lock_ops() > 0);
            assert!(trace.sync_objects() >= 1);
            assert!(trace.total_objects() >= trace.sync_objects());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = &MACRO_BENCHMARKS[0];
        let a = generate(p, &quick_config());
        let b = generate(p, &quick_config());
        assert_eq!(a, b);
        let mut other = quick_config();
        other.seed = 43;
        let c = generate(p, &other);
        assert_ne!(a, c, "different seed, different trace");
    }

    #[test]
    fn scaling_preserves_syncs_per_object_ratio() {
        let p = crate::table1::BenchmarkProfile::by_name("javac").unwrap();
        let cfg = TraceConfig {
            scale: 100,
            ..quick_config()
        };
        let trace = generate(p, &cfg);
        let got = trace.lock_ops() as f64 / f64::from(trace.sync_objects());
        let want = p.syncs_per_object();
        assert!(
            (got - want).abs() / want < 0.25,
            "ratio {got:.1} should approximate table value {want:.1}"
        );
    }

    #[test]
    fn depth_distribution_is_respected() {
        let p = crate::table1::BenchmarkProfile::by_name("mocha").unwrap(); // deepest mix
        let cfg = TraceConfig {
            scale: 1,
            max_lock_ops: 50_000,
            max_objects: 2_000,
            ..quick_config()
        };
        let trace = generate(p, &cfg);
        // Count lock ops by depth.
        let mut depth = vec![0u32; trace.total_objects() as usize];
        let mut hist = [0u64; 4];
        for op in trace.ops() {
            match *op {
                TraceOp::Lock(o) => {
                    depth[o as usize] += 1;
                    let d = depth[o as usize].min(4) as usize;
                    hist[d - 1] += 1;
                }
                TraceOp::Unlock(o) => depth[o as usize] -= 1,
                TraceOp::Alloc | TraceOp::Work(_) => {}
            }
        }
        let total: u64 = hist.iter().sum();
        for (k, (&h, &want)) in hist.iter().zip(&p.depth_fractions).enumerate() {
            let got = h as f64 / total as f64;
            assert!(
                (got - want).abs() < 0.05,
                "depth {} fraction {got:.3} vs target {want:.3}",
                k + 1
            );
        }
    }

    #[test]
    fn hot_objects_dominate_with_skew() {
        let p = crate::table1::BenchmarkProfile::by_name("jacorb").unwrap();
        let cfg = TraceConfig {
            skew: 1.0,
            ..quick_config()
        };
        let trace = generate(p, &cfg);
        let mut counts = std::collections::HashMap::new();
        for op in trace.ops() {
            if let TraceOp::Lock(o) = op {
                *counts.entry(*o).or_insert(0u64) += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile = freqs.len().div_ceil(10);
        let head: u64 = freqs[..top_decile].iter().sum();
        let total: u64 = freqs.iter().sum();
        assert!(
            head as f64 / total as f64 > 0.3,
            "hottest 10% of objects should take >30% of lock ops"
        );
    }

    #[test]
    fn display_mentions_counts() {
        let p = &MACRO_BENCHMARKS[0];
        let t = generate(p, &quick_config());
        let s = t.to_string();
        assert!(s.contains("trans"));
        assert!(s.contains("lock ops"));
    }

    #[test]
    fn validate_rejects_corrupt_traces() {
        let p = &MACRO_BENCHMARKS[0];
        let good = generate(p, &quick_config());

        let mut missing_alloc = good.clone();
        missing_alloc.ops.insert(0, TraceOp::Lock(9999));
        assert!(missing_alloc.validate().is_err());

        let mut unbalanced = good.clone();
        unbalanced.ops.push(TraceOp::Lock(0));
        assert!(unbalanced.validate().is_err());

        let mut non_lifo = good;
        non_lifo.ops.push(TraceOp::Unlock(0));
        assert!(non_lifo.validate().is_err());
    }
}
