//! Characterization of a lock trace — regenerates Table 1 and Figure 3.
//!
//! The paper instruments the JVM to count lock operations by scenario and
//! nesting depth (Section 3.2). Here the same numbers are computed from a
//! trace directly: the trace is single-threaded, so the scenario of every
//! lock operation is determined by the per-object depth at that point.

use std::fmt;

use crate::generator::{LockTrace, TraceOp};

/// Number of nesting-depth buckets reported (the paper's Figure 3 shows
/// First through Fourth; nothing deeper ever occurred).
pub const DEPTH_BUCKETS: usize = 8;

/// Table 1 / Figure 3 numbers for one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCharacterization {
    /// Objects allocated.
    pub objects_created: u64,
    /// Objects locked at least once.
    pub synchronized_objects: u64,
    /// Total lock operations.
    pub sync_operations: u64,
    /// Lock operations by nesting depth; bucket 0 = depth 1 (object was
    /// unlocked), last bucket aggregates deeper nesting.
    pub depth_histogram: [u64; DEPTH_BUCKETS],
}

impl TraceCharacterization {
    /// Synchronizations per synchronized object (Table 1, last column).
    pub fn syncs_per_object(&self) -> f64 {
        if self.synchronized_objects == 0 {
            0.0
        } else {
            self.sync_operations as f64 / self.synchronized_objects as f64
        }
    }

    /// Fraction of lock operations on unlocked objects (Figure 3 "First").
    pub fn first_lock_fraction(&self) -> f64 {
        if self.sync_operations == 0 {
            0.0
        } else {
            self.depth_histogram[0] as f64 / self.sync_operations as f64
        }
    }

    /// Deepest observed nesting (1-based), 0 if no locks.
    pub fn max_depth(&self) -> usize {
        self.depth_histogram
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1)
    }

    /// Fraction of lock operations that would overflow a thin count of
    /// `count_bits` bits and force an inflation — the paper's "our use of
    /// 8 bits for the lock count is highly conservative; 2 or 3 bits is
    /// probably sufficient" (Section 3.2), made quantitative. A `b`-bit
    /// count represents up to `2^b` acquisitions (the stored value is
    /// locks − 1), so every lock op at depth `> 2^b` overflows.
    pub fn overflow_fraction(&self, count_bits: u32) -> f64 {
        if self.sync_operations == 0 {
            return 0.0;
        }
        let max_locks = 1u64 << count_bits.min(32);
        let overflowing: u64 = self
            .depth_histogram
            .iter()
            .enumerate()
            .filter(|&(i, _)| (i as u64 + 1) > max_locks)
            .map(|(_, &c)| c)
            .sum();
        overflowing as f64 / self.sync_operations as f64
    }

    /// Fraction of lock operations at 1-based `depth`.
    pub fn depth_fraction(&self, depth: usize) -> f64 {
        if self.sync_operations == 0 || depth == 0 || depth > DEPTH_BUCKETS {
            return 0.0;
        }
        self.depth_histogram[depth - 1] as f64 / self.sync_operations as f64
    }
}

impl fmt::Display for TraceCharacterization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} objects | {} synced | {} syncs | {:.1} syncs/obj | {:.0}% first-locks | max depth {}",
            self.objects_created,
            self.synchronized_objects,
            self.sync_operations,
            self.syncs_per_object(),
            self.first_lock_fraction() * 100.0,
            self.max_depth()
        )
    }
}

/// Computes the characterization of a well-formed trace.
///
/// # Example
///
/// ```
/// use thinlock_trace::{characterize, generator, table1::BenchmarkProfile};
///
/// let profile = BenchmarkProfile::by_name("javalex").unwrap();
/// let trace = generator::generate(profile, &generator::quick_config());
/// let c = characterize::characterize(&trace);
/// assert_eq!(c.sync_operations, trace.lock_ops());
/// assert!(c.max_depth() <= 4, "the paper never saw nesting deeper than 4");
/// ```
pub fn characterize(trace: &LockTrace) -> TraceCharacterization {
    let mut depth = vec![0u32; trace.total_objects() as usize];
    let mut ever_locked = vec![false; trace.total_objects() as usize];
    let mut out = TraceCharacterization::default();
    for op in trace.ops() {
        match *op {
            TraceOp::Alloc => out.objects_created += 1,
            TraceOp::Lock(o) => {
                let o = o as usize;
                ever_locked[o] = true;
                depth[o] += 1;
                let bucket = (depth[o] as usize - 1).min(DEPTH_BUCKETS - 1);
                out.depth_histogram[bucket] += 1;
                out.sync_operations += 1;
            }
            TraceOp::Unlock(o) => depth[o as usize] -= 1,
            TraceOp::Work(_) => {}
        }
    }
    out.synchronized_objects = ever_locked.iter().filter(|&&b| b).count() as u64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, quick_config};
    use crate::table1::{median, MACRO_BENCHMARKS};

    #[test]
    fn characterization_matches_trace_bookkeeping() {
        for p in &MACRO_BENCHMARKS {
            let trace = generate(p, &quick_config());
            let c = characterize(&trace);
            assert_eq!(
                c.objects_created,
                u64::from(trace.total_objects()),
                "{}",
                p.name
            );
            assert_eq!(
                c.synchronized_objects,
                u64::from(trace.sync_objects()),
                "{}",
                p.name
            );
            assert_eq!(c.sync_operations, trace.lock_ops(), "{}", p.name);
        }
    }

    #[test]
    fn nesting_never_exceeds_four() {
        for p in &MACRO_BENCHMARKS {
            let trace = generate(p, &quick_config());
            let c = characterize(&trace);
            assert!(
                c.max_depth() <= 4,
                "{}: max depth {}",
                p.name,
                c.max_depth()
            );
        }
    }

    #[test]
    fn regenerated_figure3_aggregates_match_paper() {
        // With a decently sized sample the generated traces must hit the
        // paper's headline numbers: ≥45% first-locks everywhere, median
        // around 80%.
        let cfg = crate::generator::TraceConfig {
            scale: 2_000,
            max_lock_ops: 30_000,
            ..quick_config()
        };
        let mut firsts = Vec::new();
        for p in &MACRO_BENCHMARKS {
            let c = characterize(&generate(p, &cfg));
            // The warm-up pass (one lock per object) biases first-lock
            // fraction slightly upward; allow a small tolerance below 45%.
            assert!(
                c.first_lock_fraction() > 0.42,
                "{}: {:.2}",
                p.name,
                c.first_lock_fraction()
            );
            firsts.push(c.first_lock_fraction());
        }
        let med = median(&mut firsts);
        assert!(
            (med - 0.80).abs() < 0.06,
            "median first-lock ≈ 80%, got {med:.2}"
        );
    }

    #[test]
    fn depth_fraction_accessor() {
        let p = &MACRO_BENCHMARKS[0];
        let c = characterize(&generate(p, &quick_config()));
        let total: f64 = (1..=DEPTH_BUCKETS).map(|d| c.depth_fraction(d)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(c.depth_fraction(0), 0.0);
        assert_eq!(c.depth_fraction(DEPTH_BUCKETS + 1), 0.0);
    }

    #[test]
    fn display_row_reads_like_table1() {
        let p = &MACRO_BENCHMARKS[0];
        let c = characterize(&generate(p, &quick_config()));
        let s = c.to_string();
        assert!(s.contains("syncs/obj"));
        assert!(s.contains("first-locks"));
    }

    #[test]
    fn overflow_fraction_matches_paper_claim() {
        // Nesting never exceeds 4, so a 2-bit count (max 4 acquisitions)
        // never overflows — the paper's "2 or 3 bits is probably
        // sufficient", exactly.
        for p in &MACRO_BENCHMARKS {
            let c = characterize(&generate(p, &quick_config()));
            assert_eq!(c.overflow_fraction(2), 0.0, "{}", p.name);
            assert_eq!(c.overflow_fraction(8), 0.0, "{}", p.name);
        }
        // A 1-bit count (max 2 acquisitions) overflows on depth-3+ ops.
        let mocha = crate::table1::BenchmarkProfile::by_name("mocha").unwrap();
        let c = characterize(&generate(mocha, &quick_config()));
        let expected = c.depth_fraction(3) + c.depth_fraction(4);
        assert!((c.overflow_fraction(1) - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_characterization_is_calm() {
        let c = TraceCharacterization::default();
        assert_eq!(c.syncs_per_object(), 0.0);
        assert_eq!(c.first_lock_fraction(), 0.0);
        assert_eq!(c.max_depth(), 0);
        assert_eq!(c.overflow_fraction(1), 0.0);
    }
}
