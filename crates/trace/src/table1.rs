//! The macro-benchmark profiles of Table 1 / Figure 3.
//!
//! Eighteen real Java programs characterize the paper's macro evaluation.
//! Numeric columns below are transcribed from the paper where the source
//! text is legible and otherwise reconstructed to be consistent with the
//! aggregates the prose states explicitly:
//!
//! * "The number of synchronized objects is generally less than a tenth of
//!   the total number of objects created."
//! * "the median number of synchronizations per synchronized object is
//!   22.7" (extremes: `javacup` 7.4, `HashJava` 4312.0).
//! * "at least 45% of locks obtained by any of the benchmark applications
//!   were for unlocked objects; the median is 80%".
//! * "none of the benchmarks obtained any locks nested more than four
//!   deep".
//! * Figure 5: thin locks speed the benchmarks up by a median of 1.22 and
//!   a maximum of 1.7 over JDK111, while IBM112 manages a median of only
//!   1.04 and slows several programs down.
//!
//! Cells marked *reconstructed* in EXPERIMENTS.md should be treated as
//! representative rather than archival. The workload generator consumes
//! only ratios and distributions, so the reproduced *shape* of Figures 3
//! and 5 does not depend on the exact absolute values.

use std::fmt;

/// Static description of one macro-benchmark row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as listed in Table 1.
    pub name: &'static str,
    /// One-line description (source) from Table 1.
    pub description: &'static str,
    /// Application bytecode size in bytes.
    pub app_bytecode_bytes: u64,
    /// Library bytecode size in bytes (classes transitively reachable).
    pub lib_bytecode_bytes: u64,
    /// Total objects created during the run.
    pub objects_created: u64,
    /// Objects that were ever synchronized.
    pub synchronized_objects: u64,
    /// Total synchronization (lock) operations.
    pub sync_operations: u64,
    /// Fraction of lock operations at nesting depth 1, 2, 3, 4
    /// (Figure 3); sums to 1, zero beyond depth 4.
    pub depth_fractions: [f64; 4],
    /// Figure 5 speedup of thin locks over JDK111 (reconstructed where
    /// the bar chart is not numerically labelled).
    pub paper_speedup_thin: f64,
    /// Figure 5 speedup of IBM112 hot locks over JDK111.
    pub paper_speedup_ibm112: f64,
}

impl BenchmarkProfile {
    /// Synchronizations per synchronized object — the last column of
    /// Table 1.
    pub fn syncs_per_object(&self) -> f64 {
        if self.synchronized_objects == 0 {
            0.0
        } else {
            self.sync_operations as f64 / self.synchronized_objects as f64
        }
    }

    /// Fraction of lock operations that find the object unlocked
    /// (depth 1) — Figure 3's "First" band.
    pub fn first_lock_fraction(&self) -> f64 {
        self.depth_fractions[0]
    }

    /// Looks up a profile by name.
    pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
        MACRO_BENCHMARKS.iter().find(|p| p.name == name)
    }
}

impl fmt::Display for BenchmarkProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} objects, {} synced, {} syncs ({:.1}/obj)",
            self.name,
            self.objects_created,
            self.synchronized_objects,
            self.sync_operations,
            self.syncs_per_object()
        )
    }
}

/// Shorthand constructor keeping the table below readable.
#[allow(clippy::too_many_arguments)]
const fn row(
    name: &'static str,
    description: &'static str,
    app: u64,
    lib: u64,
    objects: u64,
    synced: u64,
    syncs: u64,
    depth: [f64; 4],
    thin: f64,
    ibm: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        description,
        app_bytecode_bytes: app,
        lib_bytecode_bytes: lib,
        objects_created: objects,
        synchronized_objects: synced,
        sync_operations: syncs,
        depth_fractions: depth,
        paper_speedup_thin: thin,
        paper_speedup_ibm112: ibm,
    }
}

/// The eighteen macro-benchmarks of Table 1.
pub const MACRO_BENCHMARKS: [BenchmarkProfile; 18] = [
    row(
        "trans",
        "High Performance Java Compiler (IBM)",
        124_751,
        159_747,
        486_215,
        9_825,
        173_911,
        [0.80, 0.15, 0.04, 0.01],
        1.22,
        1.05,
    ),
    row(
        "javac",
        "Java source to bytecode compiler (Sun)",
        298_436,
        345_687,
        247_350,
        24_735,
        856_666,
        [0.74, 0.20, 0.05, 0.01],
        1.25,
        1.04,
    ),
    row(
        "jacorb",
        "Java Object Request Broker 0.5 (Freie U.)",
        12_182,
        159_747,
        4_258_177,
        150_175,
        12_975_639,
        [0.65, 0.25, 0.08, 0.02],
        1.30,
        0.97,
    ),
    row(
        "javaparser",
        "Java grammar parser (Sun)",
        59_431,
        159_747,
        391_380,
        39_138,
        888_390,
        [0.80, 0.16, 0.03, 0.01],
        1.20,
        1.06,
    ),
    row(
        "jobe",
        "Java Obfuscator 1.0 (E. Jokipii)",
        52_961,
        159_747,
        437_793,
        61_064,
        807_000,
        [0.85, 0.12, 0.02, 0.01],
        1.18,
        1.02,
    ),
    row(
        "toba",
        "Java to C translator (U. Arizona)",
        23_743,
        166_472,
        266_198,
        61_951,
        917_038,
        [0.88, 0.10, 0.015, 0.005],
        1.15,
        1.03,
    ),
    row(
        "javalex",
        "Lexical analyzer generator for Java (E. Berk)",
        10_105,
        159_758,
        707_960,
        70_796,
        1_611_558,
        [0.90, 0.08, 0.015, 0.005],
        1.70,
        1.10,
    ),
    row(
        "jax",
        "Java class-file compactor (IBM)",
        24_154,
        161_229,
        6_250_390,
        119_179,
        16_517_630,
        [0.92, 0.06, 0.015, 0.005],
        1.65,
        1.08,
    ),
    row(
        "javacup",
        "Java constructor of parsers (S. Hudson)",
        25_058,
        159_747,
        433_920,
        12_243,
        90_573,
        [0.75, 0.18, 0.05, 0.02],
        1.10,
        1.01,
    ),
    row(
        "NetRexx",
        "NetRexx to Java translator 1.0 (IBM)",
        191_820,
        160_963,
        625_039,
        119_179,
        1_651_763,
        [0.78, 0.17, 0.04, 0.01],
        1.28,
        1.04,
    ),
    row(
        "Espresso",
        "Java source to bytecode compiler (M. Odersky)",
        305_690,
        160_963,
        433_920,
        10_333,
        1_975_481,
        [0.70, 0.22, 0.06, 0.02],
        1.35,
        0.98,
    ),
    row(
        "HashJava",
        "Java obfuscator (K.B. Sriram)",
        19_182,
        160_963,
        246_150,
        4_629,
        19_960_283,
        [0.60, 0.28, 0.09, 0.03],
        1.55,
        1.12,
    ),
    row(
        "crema",
        "Java obfuscator, demo version (H.P. van Vliet)",
        30_569,
        160_963,
        221_093,
        23_676,
        330_100,
        [0.82, 0.14, 0.03, 0.01],
        1.12,
        1.02,
    ),
    row(
        "jaNet",
        "Java Neural Network ToolKit (W. Gander)",
        136_535,
        298_436,
        2_258_960,
        139_253,
        1_918_352,
        [0.72, 0.21, 0.05, 0.02],
        1.24,
        0.96,
    ),
    row(
        "javadoc",
        "Java document generator (Sun)",
        16_821,
        160_827,
        247_723,
        7_281,
        212_148,
        [0.80, 0.15, 0.04, 0.01],
        1.14,
        1.03,
    ),
    row(
        "javap",
        "Java disassembler (Sun)",
        26_008,
        161_071,
        845_320,
        10_228,
        275_155,
        [0.86, 0.11, 0.02, 0.01],
        1.12,
        1.04,
    ),
    row(
        "mocha",
        "Java decompiler (H.P. van Vliet)",
        8_825,
        160_827,
        1_083_688,
        2_340,
        233_690,
        [0.45, 0.35, 0.15, 0.05],
        1.08,
        1.00,
    ),
    row(
        "wingdis",
        "Java decompiler, demo version (WingSoft)",
        79_260,
        162_650,
        2_577_899,
        633_145,
        3_647_296,
        [0.88, 0.09, 0.02, 0.01],
        1.40,
        1.06,
    ),
];

/// Median of a list (used by tests and reports).
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_benchmarks() {
        assert_eq!(MACRO_BENCHMARKS.len(), 18);
        let mut names: Vec<&str> = MACRO_BENCHMARKS.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18, "names are unique");
    }

    #[test]
    fn depth_fractions_sum_to_one() {
        for p in &MACRO_BENCHMARKS {
            let sum: f64 = p.depth_fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", p.name);
            // Monotone non-increasing, as in Figure 3.
            for w in p.depth_fractions.windows(2) {
                assert!(w[0] >= w[1], "{}: deeper nesting is rarer", p.name);
            }
        }
    }

    #[test]
    fn first_lock_fraction_matches_paper_aggregates() {
        let mut firsts: Vec<f64> = MACRO_BENCHMARKS
            .iter()
            .map(|p| p.first_lock_fraction())
            .collect();
        for (&f, p) in firsts.iter().zip(&MACRO_BENCHMARKS) {
            assert!(f >= 0.45, "{}: at least 45% first locks", p.name);
        }
        let med = median(&mut firsts);
        assert!((med - 0.80).abs() < 0.03, "median ≈ 80%, got {med}");
    }

    #[test]
    fn syncs_per_object_median_matches_paper() {
        let mut ratios: Vec<f64> = MACRO_BENCHMARKS
            .iter()
            .map(|p| p.syncs_per_object())
            .collect();
        let med = median(&mut ratios);
        assert!(
            (med - 22.7).abs() < 8.0,
            "median syncs/object ≈ 22.7, got {med:.1}"
        );
        // Extremes from the paper.
        let hash = BenchmarkProfile::by_name("HashJava").unwrap();
        assert!(hash.syncs_per_object() > 1000.0);
        let cup = BenchmarkProfile::by_name("javacup").unwrap();
        assert!(cup.syncs_per_object() < 10.0);
    }

    #[test]
    fn synced_objects_are_minority() {
        for p in &MACRO_BENCHMARKS {
            assert!(
                (p.synchronized_objects as f64) < 0.3 * p.objects_created as f64,
                "{}: synced objects are a small minority",
                p.name
            );
        }
    }

    #[test]
    fn figure5_aggregates_hold() {
        let mut thin: Vec<f64> = MACRO_BENCHMARKS
            .iter()
            .map(|p| p.paper_speedup_thin)
            .collect();
        let mut ibm: Vec<f64> = MACRO_BENCHMARKS
            .iter()
            .map(|p| p.paper_speedup_ibm112)
            .collect();
        assert!((median(&mut thin) - 1.22).abs() < 0.05);
        let max = MACRO_BENCHMARKS
            .iter()
            .map(|p| p.paper_speedup_thin)
            .fold(0.0f64, f64::max);
        assert!((max - 1.7).abs() < 1e-9);
        assert!((median(&mut ibm) - 1.04).abs() < 0.02);
        assert!(
            MACRO_BENCHMARKS
                .iter()
                .any(|p| p.paper_speedup_ibm112 < 1.0),
            "some programs slowed down under IBM112"
        );
    }

    #[test]
    fn lookup_and_display() {
        let p = BenchmarkProfile::by_name("javalex").unwrap();
        assert!(p.to_string().contains("javalex"));
        assert!(BenchmarkProfile::by_name("no-such").is_none());
    }

    #[test]
    fn median_helper() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [1.0, 2.0, 3.0, 4.0]), 2.5);
    }
}
