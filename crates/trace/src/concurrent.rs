//! Multithreaded trace replay — the paper's "server" scenario.
//!
//! The macro-benchmarks of Figure 5 are single-threaded, which is the
//! paper's point (the tax without concurrency). Its *design target*,
//! however, is "a Java server or a client that is running windowing or
//! network code that is likely to involve multiple threads of control".
//! This module produces that workload: the same Table 1 distributions,
//! split across `threads` workers, with the hottest objects *shared* so a
//! controlled fraction of operations contend, and the rest private per
//! thread so the thin fast path still carries most of the load — the
//! "locality of contention" regime the protocols were designed for.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use thinlock_runtime::error::SyncResult;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::prng::Prng;
use thinlock_runtime::protocol::SyncProtocol;

use crate::generator::TraceConfig;
use crate::replay::spin_work;
use crate::table1::BenchmarkProfile;

/// One event of a per-thread sequence. Objects are indices into a shared,
/// pre-allocated arena (no `Alloc` events: allocation is not the variable
/// under test here and pre-allocation keeps threads symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadOp {
    /// Acquire the monitor of an arena object.
    Lock(u32),
    /// Release the monitor of an arena object.
    Unlock(u32),
    /// Perform non-locking application work.
    Work(u32),
}

/// Configuration of a concurrent trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcurrentConfig {
    /// Worker thread count.
    pub threads: u32,
    /// Fraction of synchronized objects shared by *all* threads (the
    /// hottest ones, per the locality-of-contention assumption); the rest
    /// are partitioned privately.
    pub shared_fraction: f64,
    /// Base scaling/distribution parameters.
    pub base: TraceConfig,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            threads: 4,
            shared_fraction: 0.05,
            base: TraceConfig::default(),
        }
    }
}

/// A generated concurrent workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcurrentTrace {
    name: String,
    total_objects: u32,
    shared_objects: u32,
    per_thread: Vec<Vec<ThreadOp>>,
    lock_ops: u64,
}

impl ConcurrentTrace {
    /// The profile this trace was generated from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arena size a replay must pre-allocate.
    pub fn total_objects(&self) -> u32 {
        self.total_objects
    }

    /// Number of objects visible to every thread.
    pub fn shared_objects(&self) -> u32 {
        self.shared_objects
    }

    /// Per-thread event sequences.
    pub fn per_thread(&self) -> &[Vec<ThreadOp>] {
        &self.per_thread
    }

    /// Total lock operations across all threads.
    pub fn lock_ops(&self) -> u64 {
        self.lock_ops
    }

    /// Checks that every thread's sequence is balanced and LIFO (so a
    /// replay can never deadlock on lock ordering: each thread holds at
    /// most a properly nested chain on one object at a time).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (tid, ops) in self.per_thread.iter().enumerate() {
            let mut stack: Vec<u32> = Vec::new();
            for (i, op) in ops.iter().enumerate() {
                match *op {
                    ThreadOp::Lock(o) => {
                        if o >= self.total_objects {
                            return Err(format!("thread {tid} op {i}: object {o} out of range"));
                        }
                        if let Some(&top) = stack.last() {
                            if top != o {
                                return Err(format!(
                                    "thread {tid} op {i}: holds {top}, locking {o} (lock-order hazard)"
                                ));
                            }
                        }
                        stack.push(o);
                    }
                    ThreadOp::Unlock(o) => match stack.pop() {
                        Some(top) if top == o => {}
                        _ => return Err(format!("thread {tid} op {i}: unbalanced unlock of {o}")),
                    },
                    ThreadOp::Work(_) => {}
                }
            }
            if !stack.is_empty() {
                return Err(format!("thread {tid}: locks still held at end"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ConcurrentTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "concurrent trace {}: {} threads, {} objects ({} shared), {} lock ops",
            self.name,
            self.per_thread.len(),
            self.total_objects,
            self.shared_objects,
            self.lock_ops
        )
    }
}

/// Generates a concurrent workload from a Table 1 profile. Deterministic
/// in `(profile, config)`.
pub fn generate_concurrent(
    profile: &BenchmarkProfile,
    config: &ConcurrentConfig,
) -> ConcurrentTrace {
    let threads = config.threads.max(1);
    let scale = config.base.scale.max(1);
    let sync_objects = ((profile.synchronized_objects / scale).max(u64::from(threads)) as u32)
        .min(config.base.max_objects.max(threads));
    let target_lock_ops = (profile.sync_operations / scale)
        .max(u64::from(sync_objects))
        .min(config.base.max_lock_ops.max(1));
    let per_thread_ops = (target_lock_ops / u64::from(threads)).max(1);

    let shared =
        ((f64::from(sync_objects) * config.shared_fraction).ceil() as u32).clamp(1, sync_objects);
    // Objects 0..shared are shared; the rest are dealt round-robin.
    let mut private: Vec<Vec<u32>> = vec![Vec::new(); threads as usize];
    for o in shared..sync_objects {
        private[(o % threads) as usize].push(o);
    }

    let mut per_thread = Vec::with_capacity(threads as usize);
    let mut lock_ops = 0u64;
    for tid in 0..threads {
        let mut rng = Prng::seed_from_u64(
            config.base.seed ^ (u64::from(tid) << 32) ^ profile.name.len() as u64,
        );
        let mine = &private[tid as usize];
        let mut ops = Vec::new();
        let mut emitted = 0u64;
        while emitted < per_thread_ops {
            // Hot shared object with the shared fraction's probability,
            // otherwise a private object (if this thread has any).
            let obj = if mine.is_empty() || rng.gen_bool(config.shared_fraction.clamp(0.01, 1.0)) {
                rng.range_u32(0, shared)
            } else {
                mine[rng.range_usize(0, mine.len())]
            };
            let depth = sample_depth(&profile.depth_fractions, &mut rng)
                .min(u32::try_from(per_thread_ops - emitted).unwrap_or(u32::MAX))
                .max(1);
            for _ in 0..depth {
                ops.push(ThreadOp::Lock(obj));
            }
            if config.base.work_per_sync > 0 {
                ops.push(ThreadOp::Work(
                    config.base.work_per_sync.saturating_mul(depth),
                ));
            }
            for _ in 0..depth {
                ops.push(ThreadOp::Unlock(obj));
            }
            emitted += u64::from(depth);
        }
        lock_ops += emitted;
        per_thread.push(ops);
    }

    ConcurrentTrace {
        name: profile.name.to_string(),
        total_objects: sync_objects,
        shared_objects: shared,
        per_thread,
        lock_ops,
    }
}

/// Burst-depth sampling identical to the single-threaded generator.
fn sample_depth(fractions: &[f64; 4], rng: &mut Prng) -> u32 {
    let f1 = fractions[0].max(f64::MIN_POSITIVE);
    let x: f64 = rng.next_f64();
    let mut d = 1;
    for k in 2..=4 {
        if x < fractions[k - 1] / f1 {
            d = k as u32;
        } else {
            break;
        }
    }
    d
}

/// Result of a concurrent replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConcurrentOutcome {
    /// Wall-clock time from first thread start to last thread exit.
    pub elapsed: Duration,
    /// Total lock operations performed.
    pub lock_ops: u64,
    /// True if the per-object guarded counters matched the per-object
    /// lock counts — i.e., no mutual-exclusion violation was observed.
    pub exclusion_verified: bool,
}

/// Replays a concurrent trace: pre-allocates the arena, spawns one OS
/// thread per sequence, and verifies mutual exclusion via a guarded
/// read-modify-write per lock operation.
///
/// # Errors
///
/// Propagates protocol errors (heap exhaustion, registry exhaustion).
///
/// # Panics
///
/// Panics if a worker thread panics (a protocol bug).
pub fn replay_concurrent<P: SyncProtocol + ?Sized>(
    protocol: &P,
    trace: &ConcurrentTrace,
) -> SyncResult<ConcurrentOutcome> {
    let heap = protocol.heap();
    let arena: Vec<ObjRef> = (0..trace.total_objects())
        .map(|_| heap.alloc())
        .collect::<SyncResult<_>>()?;
    // One guarded (deliberately non-atomic-looking) counter per object.
    let counters: Vec<AtomicU64> = (0..trace.total_objects())
        .map(|_| AtomicU64::new(0))
        .collect();
    let expected: Vec<u64> = {
        let mut v = vec![0u64; trace.total_objects() as usize];
        for ops in trace.per_thread() {
            for op in ops {
                if let ThreadOp::Lock(o) = *op {
                    v[o as usize] += 1;
                }
            }
        }
        v
    };

    let start = Instant::now();
    std::thread::scope(|scope| {
        for ops in trace.per_thread() {
            let arena = &arena;
            let counters = &counters;
            scope.spawn(move || {
                let registration = protocol
                    .registry()
                    .register()
                    .expect("registry sized for worker count");
                let token = registration.token();
                for op in ops {
                    match *op {
                        ThreadOp::Lock(o) => {
                            protocol.lock(arena[o as usize], token).expect("lock");
                            // Racy-looking RMW, serialized by the monitor:
                            // a mutual-exclusion failure loses updates.
                            let c = &counters[o as usize];
                            let v = c.load(Ordering::Relaxed);
                            std::hint::spin_loop();
                            c.store(v + 1, Ordering::Relaxed);
                        }
                        ThreadOp::Unlock(o) => {
                            protocol.unlock(arena[o as usize], token).expect("unlock");
                        }
                        ThreadOp::Work(units) => spin_work(units),
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    let exclusion_verified = counters
        .iter()
        .zip(&expected)
        .all(|(c, &e)| c.load(Ordering::Relaxed) == e);
    Ok(ConcurrentOutcome {
        elapsed,
        lock_ops: trace.lock_ops(),
        exclusion_verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::quick_config;
    use crate::table1::{BenchmarkProfile, MACRO_BENCHMARKS};
    use thinlock::{TasukiLocks, ThinLocks};
    use thinlock_baselines::MonitorCache;

    fn small_config(threads: u32) -> ConcurrentConfig {
        ConcurrentConfig {
            threads,
            shared_fraction: 0.2,
            base: TraceConfig {
                max_lock_ops: 2_000,
                max_objects: 200,
                work_per_sync: 5,
                ..quick_config()
            },
        }
    }

    #[test]
    fn generated_concurrent_traces_validate() {
        for p in MACRO_BENCHMARKS.iter().take(6) {
            let t = generate_concurrent(p, &small_config(4));
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
            assert_eq!(t.per_thread().len(), 4);
            assert!(t.shared_objects() >= 1);
            assert!(t.lock_ops() > 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = BenchmarkProfile::by_name("javac").unwrap();
        let a = generate_concurrent(p, &small_config(3));
        let b = generate_concurrent(p, &small_config(3));
        assert_eq!(a, b);
    }

    #[test]
    fn replay_verifies_exclusion_under_thin_locks() {
        let p = BenchmarkProfile::by_name("jacorb").unwrap();
        let trace = generate_concurrent(p, &small_config(4));
        let locks = ThinLocks::with_capacity(trace.total_objects() as usize);
        let out = replay_concurrent(&locks, &trace).unwrap();
        assert!(out.exclusion_verified, "no lost updates");
        assert_eq!(out.lock_ops, trace.lock_ops());
    }

    #[test]
    fn replay_verifies_exclusion_under_monitor_cache_and_tasuki() {
        let p = BenchmarkProfile::by_name("javalex").unwrap();
        let trace = generate_concurrent(p, &small_config(3));
        let jdk = MonitorCache::with_capacity(trace.total_objects() as usize);
        assert!(replay_concurrent(&jdk, &trace).unwrap().exclusion_verified);
        let tasuki = TasukiLocks::with_capacity(trace.total_objects() as usize);
        assert!(
            replay_concurrent(&tasuki, &trace)
                .unwrap()
                .exclusion_verified
        );
    }

    #[test]
    fn single_thread_config_degenerates_gracefully() {
        let p = BenchmarkProfile::by_name("javacup").unwrap();
        let trace = generate_concurrent(p, &small_config(1));
        assert_eq!(trace.per_thread().len(), 1);
        trace.validate().unwrap();
        let locks = ThinLocks::with_capacity(trace.total_objects() as usize);
        let out = replay_concurrent(&locks, &trace).unwrap();
        assert!(out.exclusion_verified);
        // Single-threaded: thin locks never inflate.
        assert_eq!(locks.inflated_count(), 0);
    }

    #[test]
    fn display_mentions_shape() {
        let p = BenchmarkProfile::by_name("javac").unwrap();
        let t = generate_concurrent(p, &small_config(2));
        let s = t.to_string();
        assert!(s.contains("2 threads"));
        assert!(s.contains("shared"));
    }
}
