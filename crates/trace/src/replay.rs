//! Replaying a lock trace against a locking protocol.
//!
//! This is the engine behind the Figure 5 reproduction: the same trace,
//! replayed over `ThinLocks`, `MonitorCache`, and `HotLocks`, isolates the
//! cost of the locking discipline, exactly as the paper's single-threaded
//! macro-benchmarks isolate the "performance tax that Java levies on
//! single-threaded applications".

use std::fmt;
use std::time::{Duration, Instant};

use thinlock_runtime::error::SyncResult;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadToken;

use crate::generator::{LockTrace, TraceOp};

/// Result of replaying a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Objects allocated during the replay.
    pub allocs: u64,
    /// Lock operations performed.
    pub lock_ops: u64,
    /// Unlock operations performed.
    pub unlock_ops: u64,
    /// Synthetic application-work units executed.
    pub work_units: u64,
    /// Wall-clock time of the replay loop.
    pub elapsed: Duration,
}

/// Executes `units` of synthetic application work: an arithmetic chain
/// the optimizer cannot remove, each unit costing on the order of a
/// nanosecond. This is the non-locking computation of the paper's
/// macro-benchmarks; see
/// [`TraceOp::Work`] for why it matters to Figure 5.
#[inline]
pub fn spin_work(units: u32) {
    let mut x = units;
    for _ in 0..units {
        x = std::hint::black_box(x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223));
    }
    std::hint::black_box(x);
}

impl ReplayOutcome {
    /// Nanoseconds per lock/unlock pair — the headline unit of Figure 5.
    pub fn ns_per_sync(&self) -> f64 {
        if self.lock_ops == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.lock_ops as f64
    }
}

impl fmt::Display for ReplayOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} allocs, {} syncs in {:?} ({:.0} ns/sync)",
            self.allocs,
            self.lock_ops,
            self.elapsed,
            self.ns_per_sync()
        )
    }
}

/// Replays `trace` on the calling thread against `protocol`.
///
/// The protocol's heap must have room for
/// [`required_heap_capacity`](LockTrace::required_heap_capacity) more
/// objects.
///
/// # Errors
///
/// Propagates any protocol error ([`SyncResult`]); on a well-formed trace
/// (see [`LockTrace::validate`]) and a correct protocol this cannot occur.
///
/// # Example
///
/// ```
/// use thinlock::ThinLocks;
/// use thinlock_runtime::protocol::SyncProtocol;
/// use thinlock_trace::{generator, replay, table1::BenchmarkProfile};
///
/// let profile = BenchmarkProfile::by_name("javacup").unwrap();
/// let trace = generator::generate(profile, &generator::quick_config());
/// let locks = ThinLocks::with_capacity(trace.required_heap_capacity());
/// let reg = locks.registry().register()?;
/// let outcome = replay::replay(&locks, &trace, reg.token())?;
/// assert_eq!(outcome.lock_ops, trace.lock_ops());
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub fn replay<P: SyncProtocol + ?Sized>(
    protocol: &P,
    trace: &LockTrace,
    token: ThreadToken,
) -> SyncResult<ReplayOutcome> {
    let mut objects: Vec<ObjRef> = Vec::with_capacity(trace.required_heap_capacity());
    let mut outcome = ReplayOutcome {
        allocs: 0,
        lock_ops: 0,
        unlock_ops: 0,
        work_units: 0,
        elapsed: Duration::ZERO,
    };
    let heap = protocol.heap();
    let start = Instant::now();
    for op in trace.ops() {
        match *op {
            TraceOp::Alloc => {
                objects.push(heap.alloc()?);
                outcome.allocs += 1;
            }
            TraceOp::Lock(o) => {
                protocol.lock(objects[o as usize], token)?;
                outcome.lock_ops += 1;
            }
            TraceOp::Unlock(o) => {
                protocol.unlock(objects[o as usize], token)?;
                outcome.unlock_ops += 1;
            }
            TraceOp::Work(units) => {
                spin_work(units);
                outcome.work_units += u64::from(units);
            }
        }
    }
    outcome.elapsed = start.elapsed();
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, quick_config};
    use crate::table1::{BenchmarkProfile, MACRO_BENCHMARKS};
    use std::sync::Arc;
    use thinlock::ThinLocks;
    use thinlock_baselines::{HotLocks, MonitorCache};
    use thinlock_runtime::heap::Heap;
    use thinlock_runtime::registry::ThreadRegistry;

    #[test]
    fn replay_executes_every_operation() {
        let p = BenchmarkProfile::by_name("javac").unwrap();
        let trace = generate(p, &quick_config());
        let locks = ThinLocks::with_capacity(trace.required_heap_capacity());
        let reg = locks.registry().register().unwrap();
        let out = replay(&locks, &trace, reg.token()).unwrap();
        assert_eq!(out.lock_ops, trace.lock_ops());
        assert_eq!(out.unlock_ops, trace.lock_ops());
        assert_eq!(out.allocs, u64::from(trace.total_objects()));
        // Single-threaded: nothing should have inflated.
        assert_eq!(locks.inflated_count(), 0);
    }

    #[test]
    fn all_protocols_replay_all_benchmarks_identically() {
        let cfg = crate::generator::TraceConfig {
            scale: 50_000,
            max_lock_ops: 3_000,
            max_objects: 1_500,
            ..quick_config()
        };
        for p in MACRO_BENCHMARKS.iter().take(6) {
            let trace = generate(p, &cfg);
            let cap = trace.required_heap_capacity();

            let thin = ThinLocks::with_capacity(cap);
            let rt = thin.registry().register().unwrap();
            let a = replay(&thin, &trace, rt.token()).unwrap();

            let jdk = MonitorCache::with_capacity(cap);
            let rj = jdk.registry().register().unwrap();
            let b = replay(&jdk, &trace, rj.token()).unwrap();

            let ibm = HotLocks::with_capacity(cap);
            let ri = ibm.registry().register().unwrap();
            let c = replay(&ibm, &trace, ri.token()).unwrap();

            assert_eq!(a.lock_ops, b.lock_ops);
            assert_eq!(b.lock_ops, c.lock_ops);
            assert_eq!(a.allocs, c.allocs, "{}", p.name);
        }
    }

    #[test]
    fn ns_per_sync_is_positive_after_real_work() {
        let p = BenchmarkProfile::by_name("javalex").unwrap();
        let trace = generate(p, &quick_config());
        let locks = ThinLocks::with_capacity(trace.required_heap_capacity());
        let reg = locks.registry().register().unwrap();
        let out = replay(&locks, &trace, reg.token()).unwrap();
        assert!(out.ns_per_sync() > 0.0);
        assert!(out.to_string().contains("ns/sync"));
    }

    #[test]
    fn replay_leaves_every_lock_released() {
        let p = BenchmarkProfile::by_name("mocha").unwrap();
        let trace = generate(p, &quick_config());
        let heap = Arc::new(Heap::with_capacity(trace.required_heap_capacity()));
        let locks = ThinLocks::new(Arc::clone(&heap), ThreadRegistry::new());
        let reg = locks.registry().register().unwrap();
        replay(&locks, &trace, reg.token()).unwrap();
        for obj in heap.iter() {
            assert!(
                heap.header(obj).lock_word().load_relaxed().is_unlocked(),
                "{obj} still locked"
            );
        }
    }

    #[test]
    fn zero_outcome_display() {
        let out = ReplayOutcome {
            allocs: 0,
            lock_ops: 0,
            unlock_ops: 0,
            work_units: 0,
            elapsed: Duration::ZERO,
        };
        assert_eq!(out.ns_per_sync(), 0.0);
    }
}
