//! Baseline Java monitor implementations the paper compares against.
//!
//! Section 3 evaluates thin locks against two real systems, both rebuilt
//! here from the paper's descriptions:
//!
//! * [`cache::MonitorCache`] ("**JDK111**") — Sun's JDK 1.1.1 scheme:
//!   monitors live *outside* objects in a global monitor cache that "must
//!   be locked during lookups to prevent race conditions with concurrent
//!   modifiers", with a free list that thrashes once the working set of
//!   monitors exceeds the cache size.
//! * [`hot::HotLocks`] ("**IBM112**") — IBM's JDK 1.1.2 optimization: 32
//!   pre-allocated "hot locks"; fat locks record locking frequency, and a
//!   lock detected to be hot gets a pointer placed directly in the object
//!   header (the displaced header data moves into the hot-lock structure).
//!   Fast when a few locks dominate; collapses when the working set
//!   exceeds 32.
//!
//! Both implement [`SyncProtocol`](thinlock_runtime::protocol::SyncProtocol)
//! over the same heap/registry/fat-lock substrate as the thin-lock
//! protocol, so every benchmark compares only the locking discipline.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod hot;

pub use cache::MonitorCache;
pub use hot::HotLocks;
