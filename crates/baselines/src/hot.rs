//! The IBM JDK 1.1.2 "hot locks" ("IBM112").
//!
//! From Section 3 of the paper: "The IBM112 implementation assumes that
//! most applications will have a small number of heavily used locks. It
//! therefore pre-allocates a small number (32) of *hot locks*. The system
//! begins by using the default fat locks, slightly modified to record
//! locking frequency. When a fat lock is detected to be hot, a pointer to
//! the hot lock is placed in the header of the object. Because a full
//! 32-bit pointer is used, the displaced header information is moved into
//! the hot lock structure. One bit in the header word indicates whether
//! the word is a hot lock pointer or regular header data."
//!
//! The scheme's strength and weakness both reproduce here:
//!
//! * a hot lock's fast path is "following a pointer, comparing a thread
//!   identifier, and incrementing a memory location" — no monitor-cache
//!   lookup, so `NestedSync` is nearly as fast as a thin lock and
//!   contended locking is faster than JDK111;
//! * once more than 32 locks are hot candidates, everything else stays on
//!   the slow monitor-cache path ("the Achilles heel of the hot lock
//!   approach", visible as the MultiSync cliff in Figure 4).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thinlock_monitor::FatLock;
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::{LockWord, ThreadIndex};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};

/// Number of pre-allocated hot locks, fixed at 32 as in the paper.
pub const HOT_LOCK_COUNT: usize = 32;

/// Lock operations on one object before its monitor is considered "hot"
/// and promoted (the paper does not publish IBM's threshold; any small
/// value reproduces the qualitative behaviour, since promotion is a
/// one-time cost amortized over the object's remaining accesses).
pub const DEFAULT_HOT_THRESHOLD: u32 = 8;

/// Bit 0 of the header word marks it as a hot-lock pointer. The heap
/// guarantees real header words keep bit 0 clear.
const HOT_MARKER_BIT: u32 = 1;

/// Sentinel for "hot slot not bound to any object".
const UNBOUND: u32 = u32::MAX;

#[derive(Debug)]
struct HotSlot {
    lock: FatLock,
    /// The displaced header word of the bound object.
    displaced: AtomicU32,
    /// Object index bound to this slot, or [`UNBOUND`].
    bound: AtomicU32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// Cold: pool slot in the monitor cache.
    Cold(usize),
    /// Promoted to a hot slot; permanent.
    Hot(usize),
}

#[derive(Debug)]
struct ColdEntry {
    lock: Arc<FatLock>,
    freq: u32,
}

#[derive(Debug)]
struct ColdInner {
    map: HashMap<usize, Binding>,
    pool: Vec<ColdEntry>,
    free: Vec<usize>,
    capacity: usize,
    evictions: u64,
    hot_free: Vec<usize>,
    promotions: u64,
    threshold: u32,
}

/// Resolution of an object to its monitor, remembering which kind it was.
enum Resolved {
    Hot(usize),
    Cold(Arc<FatLock>),
}

/// The IBM 1.1.2 baseline: frequency-promoted hot locks over a monitor
/// cache.
///
/// # Example
///
/// ```
/// use thinlock_baselines::HotLocks;
/// use thinlock_runtime::protocol::SyncProtocol;
///
/// let p = HotLocks::with_capacity(16);
/// let reg = p.registry().register()?;
/// let obj = p.heap().alloc()?;
/// for _ in 0..20 {
///     p.lock(obj, reg.token())?;
///     p.unlock(obj, reg.token())?;
/// }
/// assert!(p.is_hot(obj), "a heavily used lock gets promoted");
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct HotLocks {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    cold: Mutex<ColdInner>,
    hot: Box<[HotSlot]>,
}

impl HotLocks {
    /// Creates the baseline over a fresh heap of `heap_capacity` objects.
    pub fn with_capacity(heap_capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(heap_capacity)),
            ThreadRegistry::new(),
            crate::cache::DEFAULT_CACHE_CAPACITY,
            DEFAULT_HOT_THRESHOLD,
        )
    }

    /// Creates the baseline with explicit cold-cache capacity and hot
    /// promotion threshold.
    pub fn new(
        heap: Arc<Heap>,
        registry: ThreadRegistry,
        cache_capacity: usize,
        threshold: u32,
    ) -> Self {
        let hot: Box<[HotSlot]> = (0..HOT_LOCK_COUNT)
            .map(|_| HotSlot {
                lock: FatLock::new(),
                displaced: AtomicU32::new(0),
                bound: AtomicU32::new(UNBOUND),
            })
            .collect();
        HotLocks {
            heap,
            registry,
            cold: Mutex::new(ColdInner {
                map: HashMap::new(),
                pool: Vec::new(),
                free: Vec::new(),
                capacity: cache_capacity.max(1),
                evictions: 0,
                hot_free: (0..HOT_LOCK_COUNT).rev().collect(),
                promotions: 0,
                threshold: threshold.max(1),
            }),
            hot,
        }
    }

    /// The hot-path test: one load of the header word and a bit test.
    #[inline]
    fn hot_slot_of(&self, obj: ObjRef) -> Option<usize> {
        let word = self.heap.header(obj).lock_word().load_acquire().bits();
        (word & HOT_MARKER_BIT != 0).then_some((word >> 1) as usize)
    }

    /// Cold path: locked cache lookup with frequency accounting and
    /// possible promotion.
    fn resolve_for_lock(&self, obj: ObjRef) -> Resolved {
        let mut inner = self.cold.lock().expect("hot-lock cache poisoned");
        let inner = &mut *inner;
        match inner.map.get(&obj.index()).copied() {
            Some(Binding::Hot(slot)) => Resolved::Hot(slot),
            Some(Binding::Cold(slot)) => {
                inner.pool[slot].freq += 1;
                if inner.pool[slot].freq >= inner.threshold {
                    if let Some(hot) = self.try_promote(inner, obj, slot) {
                        return Resolved::Hot(hot);
                    }
                }
                Resolved::Cold(Arc::clone(&inner.pool[slot].lock))
            }
            None => {
                let slot = Self::take_free_slot(inner);
                inner.pool[slot].freq = 1;
                inner.map.insert(obj.index(), Binding::Cold(slot));
                Resolved::Cold(Arc::clone(&inner.pool[slot].lock))
            }
        }
    }

    /// Resolution for unlock/wait/notify: no frequency bump, no install.
    fn resolve_existing(&self, obj: ObjRef) -> Option<Resolved> {
        if let Some(slot) = self.hot_slot_of(obj) {
            return Some(Resolved::Hot(slot));
        }
        let inner = self.cold.lock().expect("hot-lock cache poisoned");
        match inner.map.get(&obj.index()).copied()? {
            Binding::Hot(slot) => Some(Resolved::Hot(slot)),
            Binding::Cold(slot) => Some(Resolved::Cold(Arc::clone(&inner.pool[slot].lock))),
        }
    }

    /// Promotes `obj`'s cold monitor to a free hot slot if the monitor is
    /// idle right now (so no state needs migrating). Called with the cache
    /// mutex held.
    fn try_promote(&self, inner: &mut ColdInner, obj: ObjRef, cold_slot: usize) -> Option<usize> {
        let entry = &inner.pool[cold_slot];
        let idle = entry.lock.owner().is_none()
            && entry.lock.entry_queue_len() == 0
            && entry.lock.wait_set_len() == 0
            && Arc::strong_count(&entry.lock) == 1;
        if !idle {
            return None;
        }
        let hot_slot = inner.hot_free.pop()?;
        // Displace the header: save the original word in the hot lock
        // structure, install the marked pointer.
        let cell = self.heap.header(obj).lock_word();
        let original = cell.load_relaxed().bits();
        debug_assert_eq!(original & HOT_MARKER_BIT, 0);
        self.hot[hot_slot]
            .displaced
            .store(original, Ordering::Relaxed);
        self.hot[hot_slot]
            .bound
            .store(obj.index() as u32, Ordering::Relaxed);
        cell.store_release(LockWord::from_bits(
            ((hot_slot as u32) << 1) | HOT_MARKER_BIT,
        ));
        inner.map.insert(obj.index(), Binding::Hot(hot_slot));
        inner.free.push(cold_slot);
        inner.promotions += 1;
        Some(hot_slot)
    }

    fn take_free_slot(inner: &mut ColdInner) -> usize {
        if let Some(slot) = inner.free.pop() {
            return slot;
        }
        if inner.pool.len() < inner.capacity {
            inner.pool.push(ColdEntry {
                lock: Arc::new(FatLock::new()),
                freq: 0,
            });
            return inner.pool.len() - 1;
        }
        inner.evictions += 1;
        let victim = inner.map.iter().find_map(|(&obj, &binding)| match binding {
            Binding::Cold(slot) => {
                let m = &inner.pool[slot].lock;
                let idle = m.owner().is_none()
                    && m.entry_queue_len() == 0
                    && m.wait_set_len() == 0
                    && Arc::strong_count(m) == 1;
                idle.then_some((obj, slot))
            }
            Binding::Hot(_) => None,
        });
        match victim {
            Some((obj, slot)) => {
                inner.map.remove(&obj);
                inner.pool[slot].freq = 0;
                slot
            }
            None => {
                inner.pool.push(ColdEntry {
                    lock: Arc::new(FatLock::new()),
                    freq: 0,
                });
                inner.pool.len() - 1
            }
        }
    }

    /// True if `obj`'s lock has been promoted to a hot slot.
    pub fn is_hot(&self, obj: ObjRef) -> bool {
        self.hot_slot_of(obj).is_some()
    }

    /// Number of promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.cold
            .lock()
            .expect("hot-lock cache poisoned")
            .promotions
    }

    /// Number of free hot slots remaining.
    pub fn free_hot_slots(&self) -> usize {
        self.cold
            .lock()
            .expect("hot-lock cache poisoned")
            .hot_free
            .len()
    }

    /// Number of cold free-list reclaim scans so far.
    pub fn evictions(&self) -> u64 {
        self.cold.lock().expect("hot-lock cache poisoned").evictions
    }

    /// The displaced header word of a promoted object.
    pub fn displaced_header(&self, obj: ObjRef) -> Option<u32> {
        let slot = self.hot_slot_of(obj)?;
        Some(self.hot[slot].displaced.load(Ordering::Relaxed))
    }
}

impl SyncProtocol for HotLocks {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        // Hot fast path: follow the pointer, let the monitor compare the
        // thread identifier and bump its count.
        if let Some(slot) = self.hot_slot_of(obj) {
            return self.hot[slot].lock.lock(t, &self.registry);
        }
        match self.resolve_for_lock(obj) {
            Resolved::Hot(slot) => self.hot[slot].lock.lock(t, &self.registry),
            Resolved::Cold(monitor) => monitor.lock(t, &self.registry),
        }
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        match self.resolve_existing(obj) {
            Some(Resolved::Hot(slot)) => self.hot[slot].lock.unlock(t, &self.registry),
            Some(Resolved::Cold(monitor)) => monitor.unlock(t, &self.registry),
            None => Err(SyncError::NotLocked),
        }
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        match self.resolve_existing(obj) {
            Some(Resolved::Hot(slot)) => self.hot[slot].lock.wait(t, &self.registry, timeout),
            Some(Resolved::Cold(monitor)) => monitor.wait(t, &self.registry, timeout),
            None => Err(SyncError::NotLocked),
        }
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        match self.resolve_existing(obj) {
            Some(Resolved::Hot(slot)) => self.hot[slot].lock.notify(t),
            Some(Resolved::Cold(monitor)) => monitor.notify(t),
            None => Err(SyncError::NotLocked),
        }
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        match self.resolve_existing(obj) {
            Some(Resolved::Hot(slot)) => self.hot[slot].lock.notify_all(t),
            Some(Resolved::Cold(monitor)) => monitor.notify_all(t),
            None => Err(SyncError::NotLocked),
        }
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        match self.resolve_existing(obj) {
            Some(Resolved::Hot(slot)) => self.hot[slot].lock.holds(t),
            Some(Resolved::Cold(monitor)) => monitor.holds(t),
            None => false,
        }
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "IBM112"
    }
}

impl HotLocks {
    /// Runs `f` against the monitor currently backing `obj`, hot or
    /// cold, if any.
    fn with_monitor<R>(&self, obj: ObjRef, f: impl FnOnce(&FatLock) -> R) -> Option<R> {
        match self.resolve_existing(obj)? {
            Resolved::Hot(slot) => Some(f(&self.hot[slot].lock)),
            Resolved::Cold(monitor) => Some(f(&monitor)),
        }
    }
}

impl SyncBackend for HotLocks {
    // The header word is either real header data or a hot-lock pointer,
    // never thin-lock state — probes must resolve through the monitor,
    // like the JDK111 baseline.
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        self.with_monitor(obj, |m| {
            (m.owner().is_some() || m.wait_set_len() > 0).then(|| MonitorProbe {
                owner: m.owner(),
                count: m.count(),
                entry_queue_len: m.entry_queue_len(),
                wait_set_len: m.wait_set_len(),
            })
        })
        .flatten()
    }

    fn owner_of(&self, obj: ObjRef) -> Option<ThreadIndex> {
        self.with_monitor(obj, FatLock::owner).flatten()
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.with_monitor(obj, |m| m.is_waiting(t)).unwrap_or(false)
    }

    // Cold-cache eviction recycles monitors; hot promotion is one-way.
    fn deflation_capable(&self) -> bool {
        true
    }

    fn inflation_count(&self) -> u64 {
        self.promotions()
    }

    fn deflation_count(&self) -> u64 {
        self.evictions()
    }

    fn monitors_live(&self) -> usize {
        self.cold.lock().expect("hot-lock cache poisoned").map.len()
    }

    fn monitors_peak(&self) -> usize {
        let cold = self
            .cold
            .lock()
            .expect("hot-lock cache poisoned")
            .pool
            .len();
        cold + (HOT_LOCK_COUNT - self.free_hot_slots())
    }

    fn monitors_allocated(&self) -> u64 {
        self.monitors_peak() as u64
    }
}

impl fmt::Debug for HotLocks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HotLocks")
            .field("heap", &self.heap)
            .field("promotions", &self.promotions())
            .field("free_hot_slots", &self.free_hot_slots())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn hot_after(p: &HotLocks, obj: ObjRef, t: ThreadToken, ops: u32) {
        for _ in 0..ops {
            p.lock(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
        }
    }

    #[test]
    fn basic_lock_unlock() {
        let p = HotLocks::with_capacity(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(!p.holds_lock(obj, t));
        assert_eq!(p.unlock(obj, t), Err(SyncError::NotLocked));
    }

    #[test]
    fn frequent_lock_promotes_and_displaces_header() {
        let p = HotLocks::with_capacity(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        let original = p.heap().header(obj).lock_word().load_relaxed().bits();
        assert!(!p.is_hot(obj));
        hot_after(&p, obj, t, DEFAULT_HOT_THRESHOLD + 1);
        assert!(p.is_hot(obj));
        assert_eq!(p.promotions(), 1);
        assert_eq!(
            p.displaced_header(obj),
            Some(original),
            "displaced header preserved in hot-lock structure"
        );
        // Header word now carries the marked pointer.
        let word = p.heap().header(obj).lock_word().load_relaxed().bits();
        assert_eq!(word & 1, 1);
        // And the lock still works, now through the hot path.
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
    }

    #[test]
    fn rare_locks_stay_cold() {
        let p = HotLocks::with_capacity(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        hot_after(&p, obj, t, DEFAULT_HOT_THRESHOLD - 2);
        assert!(!p.is_hot(obj));
        assert_eq!(p.promotions(), 0);
    }

    #[test]
    fn only_32_hot_slots_exist() {
        let p = HotLocks::with_capacity(64);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let objs: Vec<_> = (0..40).map(|_| p.heap().alloc().unwrap()).collect();
        for &o in &objs {
            hot_after(&p, o, t, DEFAULT_HOT_THRESHOLD + 4);
        }
        let hot_count = objs.iter().filter(|&&o| p.is_hot(o)).count();
        assert_eq!(hot_count, HOT_LOCK_COUNT, "exactly 32 promotions");
        assert_eq!(p.free_hot_slots(), 0);
        // The remaining 8 objects keep working through the cold path.
        for &o in &objs {
            p.lock(o, t).unwrap();
            p.unlock(o, t).unwrap();
        }
    }

    #[test]
    fn promotion_is_permanent() {
        let p = HotLocks::with_capacity(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        hot_after(&p, obj, t, DEFAULT_HOT_THRESHOLD + 1);
        assert!(p.is_hot(obj));
        // Long idle period: still hot.
        hot_after(&p, obj, t, 100);
        assert!(p.is_hot(obj));
        assert_eq!(p.promotions(), 1);
    }

    #[test]
    fn mutual_exclusion_mixed_hot_and_cold() {
        let p = Arc::new(HotLocks::with_capacity(8));
        let hot_obj = p.heap().alloc().unwrap();
        let cold_obj = p.heap().alloc().unwrap();
        {
            let r = p.registry().register().unwrap();
            hot_after(&p, hot_obj, r.token(), DEFAULT_HOT_THRESHOLD + 1);
            assert!(p.is_hot(hot_obj));
        }
        let counters = Arc::new([
            std::sync::atomic::AtomicU64::new(0),
            std::sync::atomic::AtomicU64::new(0),
        ]);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let p = Arc::clone(&p);
            let counters = Arc::clone(&counters);
            handles.push(thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                for i in 0..200u64 {
                    let (obj, c) = if i % 2 == 0 {
                        (hot_obj, &counters[0])
                    } else {
                        (cold_obj, &counters[1])
                    };
                    p.lock(obj, t).unwrap();
                    let v = c.load(Ordering::Relaxed);
                    thread::yield_now();
                    c.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counters[0].load(Ordering::Relaxed), 300);
        assert_eq!(counters[1].load(Ordering::Relaxed), 300);
    }

    #[test]
    fn wait_notify_on_hot_lock() {
        let p = Arc::new(HotLocks::with_capacity(8));
        let obj = p.heap().alloc().unwrap();
        {
            let r = p.registry().register().unwrap();
            hot_after(&p, obj, r.token(), DEFAULT_HOT_THRESHOLD + 1);
        }
        assert!(p.is_hot(obj));
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                let out = p.wait(obj, t, None).unwrap();
                p.unlock(obj, t).unwrap();
                out
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        loop {
            p.lock(obj, t).unwrap();
            let slot = p.hot_slot_of(obj).unwrap();
            if p.hot[slot].lock.wait_set_len() > 0 {
                p.notify(obj, t).unwrap();
                p.unlock(obj, t).unwrap();
                break;
            }
            p.unlock(obj, t).unwrap();
            thread::yield_now();
        }
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn promotion_deferred_while_monitor_busy() {
        let p = Arc::new(HotLocks::with_capacity(8));
        let obj = p.heap().alloc().unwrap();
        let r = p.registry().register().unwrap();
        let t = r.token();
        // Reach the threshold while *holding* the lock: each nested lock
        // bumps the frequency but the monitor is never idle, so promotion
        // must wait.
        p.lock(obj, t).unwrap();
        for _ in 0..(DEFAULT_HOT_THRESHOLD * 2) {
            p.lock(obj, t).unwrap();
            p.unlock(obj, t).unwrap();
        }
        assert!(!p.is_hot(obj), "no promotion while held");
        p.unlock(obj, t).unwrap();
        // Next acquisition finds it idle and promotes.
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert!(p.is_hot(obj));
    }

    #[test]
    fn debug_and_name() {
        let p = HotLocks::with_capacity(2);
        assert_eq!(p.name(), "IBM112");
        assert!(format!("{p:?}").contains("HotLocks"));
        assert_eq!(p.free_hot_slots(), HOT_LOCK_COUNT);
    }
}
