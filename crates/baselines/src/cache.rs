//! The Sun JDK 1.1.1 monitor cache ("JDK111").
//!
//! From Section 1 of the paper: "The current Sun JDK favors space over
//! time. Monitors are kept outside of the objects to avoid the space cost,
//! and are looked up in a monitor cache. Unfortunately this is not only
//! inefficient, it does not scale because the monitor cache itself must be
//! locked during lookups to prevent race conditions with concurrent
//! modifiers."
//!
//! And from Section 3.3: "the JDK111 implementation also slows down as the
//! number of locked objects increases. This is due to the fact that the
//! monitor cache thrashes its free list when the working set of monitors
//! exceeds the size of the monitor cache."
//!
//! Accordingly, this implementation has:
//!
//! * a global table mapping object → monitor, guarded by one mutex that
//!   **every** lock, unlock, wait, and notify must take to translate the
//!   object to its monitor (the scalability bottleneck);
//! * a bounded pool of monitor structures with a free list; when the pool
//!   is exhausted the cache reclaims a monitor from some idle object by
//!   scanning the table (the thrash: an O(cached) operation that runs on
//!   nearly every lookup once the working set exceeds the pool);
//! * monitors left installed with count zero after unlock — the
//!   Krall-and-Probst-style optimization the paper describes — so
//!   re-locking a recently used object skips allocation until eviction.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thinlock_monitor::FatLock;
use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::ThreadIndex;
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};

/// Default number of monitors in the cache pool before the free list
/// starts thrashing. The Sun JDK's monitor cache was similarly a small
/// fixed structure; the exact figure only moves the knee of the MultiSync
/// curve.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

#[derive(Debug)]
struct PoolEntry {
    lock: Arc<FatLock>,
    /// Object currently bound to this monitor, if any.
    bound_to: Option<usize>,
}

#[derive(Debug)]
struct CacheInner {
    /// object index -> pool slot
    map: HashMap<usize, usize>,
    pool: Vec<PoolEntry>,
    free: Vec<usize>,
    capacity: usize,
    /// Number of reclaim scans performed (diagnostics: the thrash).
    evictions: u64,
}

impl CacheInner {
    /// Finds the monitor for `obj`, installing one if needed.
    fn lookup_or_install(&mut self, obj: usize) -> Arc<FatLock> {
        if let Some(&slot) = self.map.get(&obj) {
            return Arc::clone(&self.pool[slot].lock);
        }
        let slot = self.take_free_slot();
        self.pool[slot].bound_to = Some(obj);
        self.map.insert(obj, slot);
        Arc::clone(&self.pool[slot].lock)
    }

    /// Pops a free slot, reclaiming an idle monitor if the free list is
    /// empty, growing the pool as a last resort (a real VM would GC
    /// monitors; growth keeps us deadlock-free when every monitor is
    /// busy).
    fn take_free_slot(&mut self) -> usize {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        if self.pool.len() < self.capacity {
            self.pool.push(PoolEntry {
                lock: Arc::new(FatLock::new()),
                bound_to: None,
            });
            return self.pool.len() - 1;
        }
        // Thrash: scan the whole table for a reclaimable monitor. This
        // linear scan is the "free list thrashing" cost of Section 3.3.
        self.evictions += 1;
        let victim = self.map.iter().find_map(|(&obj, &slot)| {
            let m = &self.pool[slot].lock;
            let idle = m.owner().is_none()
                && m.entry_queue_len() == 0
                && m.wait_set_len() == 0
                && Arc::strong_count(&self.pool[slot].lock) == 1;
            idle.then_some((obj, slot))
        });
        match victim {
            Some((obj, slot)) => {
                self.map.remove(&obj);
                self.pool[slot].bound_to = None;
                slot
            }
            None => {
                // Every monitor busy: grow beyond capacity.
                self.pool.push(PoolEntry {
                    lock: Arc::new(FatLock::new()),
                    bound_to: None,
                });
                self.pool.len() - 1
            }
        }
    }
}

/// The JDK 1.1.1 baseline: an external monitor cache under a global lock.
///
/// # Example
///
/// ```
/// use thinlock_baselines::MonitorCache;
/// use thinlock_runtime::protocol::SyncProtocol;
///
/// let p = MonitorCache::with_capacity(16);
/// let reg = p.registry().register()?;
/// let obj = p.heap().alloc()?;
/// p.lock(obj, reg.token())?;
/// p.unlock(obj, reg.token())?;
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct MonitorCache {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
    cache: Mutex<CacheInner>,
}

impl MonitorCache {
    /// Creates the baseline over a fresh heap of `heap_capacity` objects
    /// with the default monitor-cache size.
    pub fn with_capacity(heap_capacity: usize) -> Self {
        Self::new(
            Arc::new(Heap::with_capacity(heap_capacity)),
            ThreadRegistry::new(),
            DEFAULT_CACHE_CAPACITY,
        )
    }

    /// Creates the baseline over an existing heap and registry with a
    /// given monitor-cache pool size.
    pub fn new(heap: Arc<Heap>, registry: ThreadRegistry, cache_capacity: usize) -> Self {
        MonitorCache {
            heap,
            registry,
            cache: Mutex::new(CacheInner {
                map: HashMap::new(),
                pool: Vec::new(),
                free: Vec::new(),
                capacity: cache_capacity.max(1),
                evictions: 0,
            }),
        }
    }

    /// The monitor-cache lookup every operation pays: take the global
    /// cache lock, hash the object, follow the indirection.
    fn monitor_for(&self, obj: ObjRef) -> Arc<FatLock> {
        let mut inner = self.cache.lock().expect("monitor cache poisoned");
        inner.lookup_or_install(obj.index())
    }

    /// Like [`monitor_for`](Self::monitor_for) but without installing — for
    /// operations that are errors on never-synchronized objects.
    fn monitor_if_present(&self, obj: ObjRef) -> Option<Arc<FatLock>> {
        let inner = self.cache.lock().expect("monitor cache poisoned");
        inner
            .map
            .get(&obj.index())
            .map(|&slot| Arc::clone(&inner.pool[slot].lock))
    }

    /// Number of free-list reclaim scans so far — the thrash counter.
    pub fn evictions(&self) -> u64 {
        self.cache.lock().expect("monitor cache poisoned").evictions
    }

    /// Number of monitors currently bound to objects.
    pub fn cached_monitors(&self) -> usize {
        self.cache.lock().expect("monitor cache poisoned").map.len()
    }

    /// The configured pool capacity.
    pub fn cache_capacity(&self) -> usize {
        self.cache.lock().expect("monitor cache poisoned").capacity
    }
}

impl SyncProtocol for MonitorCache {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        let monitor = self.monitor_for(obj);
        monitor.lock(t, &self.registry)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        // The unlock, too, must translate object -> monitor through the
        // locked cache; this is half of what thin locks eliminate.
        match self.monitor_if_present(obj) {
            Some(monitor) => monitor.unlock(t, &self.registry),
            None => Err(SyncError::NotLocked),
        }
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        match self.monitor_if_present(obj) {
            Some(monitor) => monitor.wait(t, &self.registry, timeout),
            None => Err(SyncError::NotLocked),
        }
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        match self.monitor_if_present(obj) {
            Some(monitor) => monitor.notify(t),
            None => Err(SyncError::NotLocked),
        }
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        match self.monitor_if_present(obj) {
            Some(monitor) => monitor.notify_all(t),
            None => Err(SyncError::NotLocked),
        }
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.monitor_if_present(obj).is_some_and(|m| m.holds(t))
    }

    fn heap(&self) -> &Heap {
        &self.heap
    }

    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }

    fn name(&self) -> &'static str {
        "JDK111"
    }
}

impl SyncBackend for MonitorCache {
    // The header word carries no lock state in this baseline — every
    // probe goes through the cached monitor, and the default
    // word-decoding `owner_of` would always answer `None`.
    fn monitor_probe(&self, obj: ObjRef) -> Option<MonitorProbe> {
        let monitor = self.monitor_if_present(obj)?;
        (monitor.owner().is_some() || monitor.wait_set_len() > 0).then(|| MonitorProbe {
            owner: monitor.owner(),
            count: monitor.count(),
            entry_queue_len: monitor.entry_queue_len(),
            wait_set_len: monitor.wait_set_len(),
        })
    }

    fn owner_of(&self, obj: ObjRef) -> Option<ThreadIndex> {
        self.monitor_if_present(obj).and_then(|m| m.owner())
    }

    fn in_wait_set(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.monitor_if_present(obj)
            .is_some_and(|m| m.is_waiting(t))
    }

    // Eviction recycles monitor structures, which is this baseline's
    // (coarse) analogue of deflation.
    fn deflation_capable(&self) -> bool {
        true
    }

    fn deflation_count(&self) -> u64 {
        self.evictions()
    }

    fn monitors_live(&self) -> usize {
        self.cached_monitors()
    }

    fn monitors_peak(&self) -> usize {
        self.cache
            .lock()
            .expect("monitor cache poisoned")
            .pool
            .len()
    }

    fn monitors_allocated(&self) -> u64 {
        self.cache
            .lock()
            .expect("monitor cache poisoned")
            .pool
            .len() as u64
    }
}

impl fmt::Debug for MonitorCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorCache")
            .field("heap", &self.heap)
            .field("cached", &self.cached_monitors())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn lock_unlock_roundtrip() {
        let p = MonitorCache::with_capacity(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        assert!(!p.holds_lock(obj, t));
        p.lock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.lock(obj, t).unwrap(); // reentrant
        p.unlock(obj, t).unwrap();
        assert!(p.holds_lock(obj, t));
        p.unlock(obj, t).unwrap();
        assert!(!p.holds_lock(obj, t));
    }

    #[test]
    fn unlock_without_monitor_is_not_locked() {
        let p = MonitorCache::with_capacity(8);
        let r = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        assert_eq!(p.unlock(obj, r.token()), Err(SyncError::NotLocked));
        assert_eq!(p.notify(obj, r.token()), Err(SyncError::NotLocked));
    }

    #[test]
    fn monitor_stays_cached_after_unlock() {
        let p = MonitorCache::with_capacity(8);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, t).unwrap();
        p.unlock(obj, t).unwrap();
        assert_eq!(p.cached_monitors(), 1, "monitor left installed at count 0");
    }

    #[test]
    fn free_list_thrashes_beyond_capacity() {
        let p = MonitorCache::new(
            Arc::new(Heap::with_capacity(64)),
            ThreadRegistry::new(),
            8, // tiny cache
        );
        let r = p.registry().register().unwrap();
        let t = r.token();
        let objs: Vec<_> = (0..32).map(|_| p.heap().alloc().unwrap()).collect();
        // Two passes over a working set 4x the cache: second pass must
        // re-install and therefore evict each time.
        for _pass in 0..2 {
            for &o in &objs {
                p.lock(o, t).unwrap();
                p.unlock(o, t).unwrap();
            }
        }
        assert!(
            p.evictions() >= 32,
            "working set > cache must thrash (got {} evictions)",
            p.evictions()
        );
        assert!(p.cached_monitors() <= 8);
    }

    #[test]
    fn small_working_set_never_evicts() {
        let p = MonitorCache::new(Arc::new(Heap::with_capacity(8)), ThreadRegistry::new(), 16);
        let r = p.registry().register().unwrap();
        let t = r.token();
        let objs: Vec<_> = (0..4).map(|_| p.heap().alloc().unwrap()).collect();
        for _ in 0..100 {
            for &o in &objs {
                p.lock(o, t).unwrap();
                p.unlock(o, t).unwrap();
            }
        }
        assert_eq!(p.evictions(), 0);
    }

    #[test]
    fn eviction_never_reclaims_busy_monitor() {
        let p = Arc::new(MonitorCache::new(
            Arc::new(Heap::with_capacity(16)),
            ThreadRegistry::new(),
            2,
        ));
        let r = p.registry().register().unwrap();
        let t = r.token();
        let held = p.heap().alloc().unwrap();
        p.lock(held, t).unwrap(); // keeps one monitor busy
        for _ in 0..8 {
            let o = p.heap().alloc().unwrap();
            p.lock(o, t).unwrap();
            p.unlock(o, t).unwrap();
        }
        // The held object's monitor must still be ours.
        assert!(p.holds_lock(held, t));
        p.unlock(held, t).unwrap();
    }

    #[test]
    fn mutual_exclusion_across_threads() {
        let p = Arc::new(MonitorCache::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let total = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            let total = Arc::clone(&total);
            handles.push(thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                for _ in 0..200 {
                    p.lock(obj, t).unwrap();
                    let v = total.load(Ordering::Relaxed);
                    thread::yield_now();
                    total.store(v + 1, Ordering::Relaxed);
                    p.unlock(obj, t).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn wait_notify_through_cache() {
        let p = Arc::new(MonitorCache::with_capacity(4));
        let obj = p.heap().alloc().unwrap();
        let waiter = {
            let p = Arc::clone(&p);
            thread::spawn(move || {
                let r = p.registry().register().unwrap();
                let t = r.token();
                p.lock(obj, t).unwrap();
                let out = p.wait(obj, t, None).unwrap();
                p.unlock(obj, t).unwrap();
                out
            })
        };
        let r = p.registry().register().unwrap();
        let t = r.token();
        loop {
            p.lock(obj, t).unwrap();
            let had_waiter = p
                .monitor_if_present(obj)
                .is_some_and(|m| m.wait_set_len() > 0);
            if had_waiter {
                p.notify(obj, t).unwrap();
                p.unlock(obj, t).unwrap();
                break;
            }
            p.unlock(obj, t).unwrap();
            thread::yield_now();
        }
        assert_eq!(waiter.join().unwrap(), WaitOutcome::Notified);
    }

    #[test]
    fn debug_output() {
        let p = MonitorCache::with_capacity(1);
        assert!(format!("{p:?}").contains("MonitorCache"));
        assert_eq!(p.name(), "JDK111");
        assert_eq!(p.cache_capacity(), DEFAULT_CACHE_CAPACITY);
    }
}
