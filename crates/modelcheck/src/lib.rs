//! Exhaustive protocol model checking for the thin-lock reproduction.
//!
//! The paper's correctness argument is informal: the lock word encoding
//! plus the one-way inflation discipline are claimed to preserve mutual
//! exclusion across every interleaving of the fast path, the spin/CAS
//! slow path, and the fat monitor hand-off. This crate checks that
//! claim mechanically against the *real* `thinlock-runtime`
//! implementation — not a model of it — by running small thread
//! programs under a cooperative scheduler that serializes execution at
//! the protocol's schedule points
//! ([`SchedPoint`](thinlock_runtime::schedule::SchedPoint), the seam
//! added next to the fault-injection hooks) and exploring every
//! interleaving with stateless DFS plus Flanagan–Godefroid dynamic
//! partial-order reduction and sleep sets.
//!
//! * [`sched`] — the [`CoopScheduler`]: workers block at each schedule
//!   point; a controller observes quiescent states and grants one step
//!   at a time, so the schedule *is* the interleaving.
//! * [`program`] — the [`McProgram`] op language (lock / unlock /
//!   rogue-unlock / wait / notify-set), worker bodies, enabledness, and
//!   [`run_execution`], one controlled run.
//! * [`invariant`] — the per-quiescent-state invariant suite: mutual
//!   exclusion, lock-word well-formedness and model conformance,
//!   balanced acquire/release, no lost wakeups, and a shape-transition
//!   invariant keyed to the backend — one-way inflation for the thin
//!   protocol, deflation safety for deflation-capable backends
//!   (`lockmc --backend cjm`).
//! * [`mod@explore`] — DFS + DPOR [`explore()`], schedule [`replay`],
//!   and counterexample [`shrink`]ing.
//! * [`mutate`] — seeded protocol bugs ([`MutationKind`]) the checker
//!   must catch, wrapped as a [`MutantProtocol`].
//! * [`suite`] — the `lockmc` verify and mutation suites with their
//!   program catalog and report types.
//!
//! See DESIGN.md §14 for the scheduler seam, the reduction argument,
//! and the mutation-testing contract.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod explore;
pub mod invariant;
pub mod mutate;
pub mod program;
pub mod sched;
pub mod suite;

pub use explore::{
    explore, explore_with, replay, shrink, Decision, ExploreOutcome, ExploreStats, FoundViolation,
    Limits, Mode,
};
pub use invariant::InvariantState;
pub use mutate::{MutantProtocol, MutationKind};
pub use program::{run_bodies, run_execution, McOp, McProgram, Pick, Violation};
pub use sched::{run_worker, CoopScheduler, Label, WorkerExit, WorkerStatus, WorkerView};
pub use suite::{
    mutation_programs, reduction_factor, run_mutations, run_verify, verify_programs,
    Counterexample, MutationReport, VerifyReport,
};
