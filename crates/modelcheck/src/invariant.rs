//! The pluggable invariant suite checked at every quiescent state.
//!
//! Each check compares the physical lock words (and fat monitors)
//! against the ground-truth model the worker bodies maintain
//! ([`DriverState`]): a worker's model depth for an object counts its
//! completed `lock`s minus completed `unlock`s, and is exempt from
//! physical-state checks while the worker is inside a `wait` (it
//! logically holds the lock but has physically released it — exactly
//! Java's wait semantics).
//!
//! Checks are *forward-only*: every schedule point sits before its
//! step's effect, and the model updates only after an op returns, so at
//! a quiescent state the model never runs ahead of the physical words
//! in a correct protocol. Any divergence is a protocol bug (or a seeded
//! mutation — the mutation suite demands these checks catch every one).

use thinlock::ThinLocks;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::registry::ThreadToken;

use crate::program::{DriverState, Violation};

/// Per-execution sticky state for the invariant suite: each object's
/// header byte at birth (locking must never disturb it) and whether the
/// object has ever been observed fat (inflation is one-way).
#[derive(Debug)]
pub struct InvariantState {
    birth_header: Vec<u8>,
    fat_seen: Vec<bool>,
}

impl InvariantState {
    /// Captures the birth state of the program objects.
    pub fn new(thin: &ThinLocks, objs: &[ObjRef]) -> Self {
        InvariantState {
            birth_header: objs
                .iter()
                .map(|&o| thin.lock_word(o).header_bits())
                .collect(),
            fat_seen: vec![false; objs.len()],
        }
    }

    /// Checks every state invariant against the current quiescent
    /// state, returning the first violation.
    pub fn check_state(
        &mut self,
        thin: &ThinLocks,
        objs: &[ObjRef],
        tokens: &[ThreadToken],
        driver: &DriverState,
    ) -> Option<Violation> {
        let (depth, waiting_on) = driver.model();
        for (oi, &obj) in objs.iter().enumerate() {
            let word = thin.lock_word(obj);

            // Lock-word well-formedness: the low header byte survives
            // every protocol step, a fat word's monitor index resolves,
            // and an ownerless thin word cannot carry a nest count.
            if word.header_bits() != self.birth_header[oi] {
                return Some((
                    "well-formed-word",
                    format!(
                        "obj{oi}: header byte stomped ({:#04x} -> {:#04x})",
                        self.birth_header[oi],
                        word.header_bits()
                    ),
                ));
            }
            if word.is_fat() && thin.monitor_for(obj).is_none() {
                return Some((
                    "well-formed-word",
                    format!("obj{oi}: fat word's monitor index resolves to no monitor"),
                ));
            }
            if word.is_thin_shape() && word.thin_owner().is_none() && word.thin_count() != 0 {
                return Some((
                    "well-formed-word",
                    format!(
                        "obj{oi}: thin word with no owner carries nest count {}",
                        word.thin_count()
                    ),
                ));
            }

            // One-way inflation: the shape bit never goes fat -> thin.
            if self.fat_seen[oi] && !word.is_fat() {
                return Some((
                    "one-way-inflation",
                    format!(
                        "obj{oi}: deflated after inflation (word {:#010x})",
                        word.bits()
                    ),
                ));
            }
            if word.is_fat() {
                self.fat_seen[oi] = true;
            }

            // Mutual exclusion over the model: workers whose completed
            // ops say they hold the lock (and are not parked in a wait).
            let holders: Vec<usize> = (0..depth.len())
                .filter(|&w| depth[w][oi] > 0 && waiting_on[w] != Some(oi))
                .collect();
            if holders.len() > 1 {
                return Some((
                    "mutual-exclusion",
                    format!("obj{oi}: workers {holders:?} hold the lock simultaneously"),
                ));
            }

            // Word conformance: a model holder must be visible in the
            // physical state with the same owner and nesting depth.
            if let [w] = holders[..] {
                let d = depth[w][oi];
                let me = tokens[w].index();
                let conforms = if word.is_fat() {
                    thin.monitor_for(obj)
                        .map(|m| m.owner() == Some(me) && m.count() == d)
                        .unwrap_or(false)
                } else {
                    word.thin_owner() == Some(me) && u32::from(word.thin_count()) + 1 == d
                };
                if !conforms {
                    return Some((
                        "word-conformance",
                        format!(
                            "obj{oi}: model says worker {w} holds at depth {d}, word is {:#010x}",
                            word.bits()
                        ),
                    ));
                }
            }
        }
        None
    }

    /// End-of-execution checks once every worker completed: all locks
    /// released physically and in the model.
    pub fn check_end(
        &mut self,
        thin: &ThinLocks,
        objs: &[ObjRef],
        tokens: &[ThreadToken],
        driver: &DriverState,
    ) -> Option<Violation> {
        if let Some(v) = self.check_state(thin, objs, tokens, driver) {
            return Some(v);
        }
        let (depth, _) = driver.model();
        for (oi, &obj) in objs.iter().enumerate() {
            let word = thin.lock_word(obj);
            let released = if word.is_fat() {
                thin.monitor_for(obj)
                    .map(|m| m.owner().is_none() && m.wait_set_len() == 0)
                    .unwrap_or(false)
            } else {
                word.is_unlocked()
            };
            if !released {
                return Some((
                    "unreleased-at-exit",
                    format!(
                        "obj{oi}: still held after all workers finished (word {:#010x})",
                        word.bits()
                    ),
                ));
            }
            for (w, d) in depth.iter().enumerate() {
                if d[oi] != 0 {
                    return Some((
                        "unreleased-at-exit",
                        format!("obj{oi}: worker {w} model depth {} at exit", d[oi]),
                    ));
                }
            }
        }
        None
    }
}
