//! The pluggable invariant suite checked at every quiescent state.
//!
//! Each check compares the physical lock words (and fat monitors)
//! against the ground-truth model the worker bodies maintain
//! ([`DriverState`]): a worker's model depth for an object counts its
//! completed `lock`s minus completed `unlock`s, and is exempt from
//! physical-state checks while the worker is inside a `wait` (it
//! logically holds the lock but has physically released it — exactly
//! Java's wait semantics).
//!
//! Checks are *forward-only*: every schedule point sits before its
//! step's effect, and the model updates only after an op returns, so at
//! a quiescent state the model never runs ahead of the physical words
//! in a correct protocol. Any divergence is a protocol bug (or a seeded
//! mutation — the mutation suite demands these checks catch every one).
//!
//! The suite is backend-parameterized through [`SyncBackend`]: the
//! physical state is read through [`SyncBackend::probe_word`] and
//! [`SyncBackend::monitor_probe`], and the shape-transition invariant
//! adapts to [`SyncBackend::deflation_capable`]:
//!
//! * **one-way-inflation** (thin backend): the shape bit never goes
//!   fat → thin, period.
//! * **deflation-safety** (CJM, Tasuki): a fat → thin transition is
//!   legal only from a quiescent monitor. The previous quiescent state's
//!   probe must have shown nest count ≤ 1 and an empty wait set —
//!   schedule points are dense enough that a correct protocol can never
//!   jump from a deeper or waited-on monitor to a neutral word within
//!   one granted step. (A non-empty *entry* queue is allowed: a
//!   contender that enqueued after the deflater's quiescence snapshot
//!   revalidates and retries, which is the deflate-vs-acquire race the
//!   protocol is designed to lose gracefully.)

use thinlock_runtime::backend::{MonitorProbe, SyncBackend};
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::registry::ThreadToken;

use crate::program::{DriverState, Violation};

/// Per-execution sticky state for the invariant suite: each object's
/// header byte at birth (locking must never disturb it), whether the
/// object has ever been observed fat, and — for deflation-capable
/// backends — the monitor probe from the most recent quiescent state in
/// which the object was fat, which decides whether an observed
/// deflation was safe.
#[derive(Debug)]
pub struct InvariantState {
    birth_header: Vec<u8>,
    fat_seen: Vec<bool>,
    last_fat_probe: Vec<Option<MonitorProbe>>,
}

impl InvariantState {
    /// Captures the birth state of the program objects.
    pub fn new(backend: &dyn SyncBackend, objs: &[ObjRef]) -> Self {
        InvariantState {
            birth_header: objs
                .iter()
                .map(|&o| backend.probe_word(o).header_bits())
                .collect(),
            fat_seen: vec![false; objs.len()],
            last_fat_probe: vec![None; objs.len()],
        }
    }

    /// Checks every state invariant against the current quiescent
    /// state, returning the first violation.
    pub fn check_state(
        &mut self,
        backend: &dyn SyncBackend,
        objs: &[ObjRef],
        tokens: &[ThreadToken],
        driver: &DriverState,
    ) -> Option<Violation> {
        let (depth, waiting_on) = driver.model();
        for (oi, &obj) in objs.iter().enumerate() {
            let word = backend.probe_word(obj);
            let probe = backend.monitor_probe(obj);

            // Lock-word well-formedness: the low header byte survives
            // every protocol step, a fat word's monitor index resolves,
            // and an ownerless thin word cannot carry a nest count.
            if word.header_bits() != self.birth_header[oi] {
                return Some((
                    "well-formed-word",
                    format!(
                        "obj{oi}: header byte stomped ({:#04x} -> {:#04x})",
                        self.birth_header[oi],
                        word.header_bits()
                    ),
                ));
            }
            if word.is_fat() && probe.is_none() {
                return Some((
                    "well-formed-word",
                    format!("obj{oi}: fat word's monitor index resolves to no monitor"),
                ));
            }
            if word.is_thin_shape() && word.thin_owner().is_none() && word.thin_count() != 0 {
                return Some((
                    "well-formed-word",
                    format!(
                        "obj{oi}: thin word with no owner carries nest count {}",
                        word.thin_count()
                    ),
                ));
            }

            // Shape-transition invariant, keyed by backend capability.
            if self.fat_seen[oi] && !word.is_fat() {
                if !backend.deflation_capable() {
                    return Some((
                        "one-way-inflation",
                        format!(
                            "obj{oi}: deflated after inflation (word {:#010x})",
                            word.bits()
                        ),
                    ));
                }
                let last = self.last_fat_probe[oi]
                    .take()
                    .expect("fat_seen implies a recorded probe");
                if last.count > 1 || last.wait_set_len > 0 {
                    return Some((
                        "deflation-safety",
                        format!(
                            "obj{oi}: deflated from a non-quiescent monitor \
                             (last fat probe: count {}, wait set {})",
                            last.count, last.wait_set_len
                        ),
                    ));
                }
                self.fat_seen[oi] = false;
            }
            if word.is_fat() {
                self.fat_seen[oi] = true;
                self.last_fat_probe[oi] = probe;
            }

            // Mutual exclusion over the model: workers whose completed
            // ops say they hold the lock (and are not parked in a wait).
            let holders: Vec<usize> = (0..depth.len())
                .filter(|&w| depth[w][oi] > 0 && waiting_on[w] != Some(oi))
                .collect();
            if holders.len() > 1 {
                return Some((
                    "mutual-exclusion",
                    format!("obj{oi}: workers {holders:?} hold the lock simultaneously"),
                ));
            }

            // Word conformance: a model holder must be visible in the
            // physical state with the same owner and nesting depth.
            if let [w] = holders[..] {
                let d = depth[w][oi];
                let me = tokens[w].index();
                let conforms = if word.is_fat() {
                    backend
                        .monitor_probe(obj)
                        .map(|m| m.owner == Some(me) && m.count == d)
                        .unwrap_or(false)
                } else {
                    word.thin_owner() == Some(me) && u32::from(word.thin_count()) + 1 == d
                };
                if !conforms {
                    return Some((
                        "word-conformance",
                        format!(
                            "obj{oi}: model says worker {w} holds at depth {d}, word is {:#010x}",
                            word.bits()
                        ),
                    ));
                }
            }
        }
        None
    }

    /// End-of-execution checks once every worker completed: all locks
    /// released physically and in the model.
    pub fn check_end(
        &mut self,
        backend: &dyn SyncBackend,
        objs: &[ObjRef],
        tokens: &[ThreadToken],
        driver: &DriverState,
    ) -> Option<Violation> {
        if let Some(v) = self.check_state(backend, objs, tokens, driver) {
            return Some(v);
        }
        let (depth, _) = driver.model();
        for (oi, &obj) in objs.iter().enumerate() {
            let word = backend.probe_word(obj);
            let released = if word.is_fat() {
                backend
                    .monitor_probe(obj)
                    .map(|m| m.owner.is_none() && m.wait_set_len == 0)
                    .unwrap_or(false)
            } else {
                word.is_unlocked()
            };
            if !released {
                return Some((
                    "unreleased-at-exit",
                    format!(
                        "obj{oi}: still held after all workers finished (word {:#010x})",
                        word.bits()
                    ),
                ));
            }
            for (w, d) in depth.iter().enumerate() {
                if d[oi] != 0 {
                    return Some((
                        "unreleased-at-exit",
                        format!("obj{oi}: worker {w} model depth {} at exit", d[oi]),
                    ));
                }
            }
        }
        None
    }
}
