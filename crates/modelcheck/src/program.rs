//! Small thread programs over the real protocol, and the controlled
//! execution harness that runs them one schedule decision at a time.
//!
//! A [`McProgram`] gives each worker a straight-line list of [`McOp`]s
//! against a shared set of heap objects. [`run_execution`] builds a
//! fresh backend instance chosen by the program's [`BackendChoice`]
//! (optionally wrapped in a protocol mutant), spawns one OS thread per
//! worker under the [`CoopScheduler`], and drives the execution by
//! repeatedly asking a `pick` callback which enabled worker takes the
//! next step. After every step the invariant suite inspects the
//! quiescent state; the first violation ends the execution with the
//! offending decision sequence attached.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use thinlock::{BackendChoice, BackendSeams};
use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::events::TraceSink;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadToken;
use thinlock_runtime::schedule::{SchedPoint, Schedule};

use crate::invariant::InvariantState;
use crate::mutate::{MutantProtocol, MutationKind};
use crate::sched::{CoopScheduler, Label, WorkerStatus, WorkerView};

/// One statement of a worker's straight-line program. Object operands
/// are indices into the program's object list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McOp {
    /// Acquire the object's lock (recursively if already held).
    Lock(usize),
    /// Release one level of the object's lock; must balance a `Lock`.
    Unlock(usize),
    /// Release attempted by a thread that does *not* hold the lock; the
    /// protocol must reject it. Its success is a balanced-ops violation.
    RogueUnlock(usize),
    /// `while !flag: wait(obj)` — waits until the object's condition
    /// flag is set. Must hold the object's lock.
    Wait(usize),
    /// Set the object's condition flag, then `notify(obj)`. Must hold
    /// the object's lock.
    NotifySet(usize),
}

/// A bounded multi-threaded program for the checker to explore.
#[derive(Debug, Clone)]
pub struct McProgram {
    /// Program name, used in reports.
    pub name: &'static str,
    /// One op list per worker.
    pub threads: Vec<Vec<McOp>>,
    /// Number of shared objects the ops index into.
    pub objects: usize,
    /// Padding objects allocated before the program objects, so program
    /// objects land at nonzero heap indices and carry nonzero header
    /// hash bits (making header-stomping bugs observable).
    pub pad_objects: usize,
    /// Program objects to inflate during set-up, before any worker
    /// runs; exercises the fat-lock entry-queue paths under contention.
    pub pre_inflate: Vec<usize>,
    /// Protocol mutation to run under, if any ([`MutationKind`]).
    pub mutation: Option<MutationKind>,
    /// Backend the execution instantiates; must be
    /// [`BackendChoice::schedulable`]. Picks the invariant set too:
    /// one-way inflation for the thin backend, deflation safety for
    /// deflation-capable ones.
    pub backend: BackendChoice,
}

impl McProgram {
    /// A correct-protocol program with one padding object and no
    /// pre-inflation.
    pub fn new(name: &'static str, objects: usize, threads: Vec<Vec<McOp>>) -> Self {
        McProgram {
            name,
            threads,
            objects,
            pad_objects: 1,
            pre_inflate: Vec::new(),
            mutation: None,
            backend: BackendChoice::Thin,
        }
    }

    /// The same program retargeted at another backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendChoice) -> Self {
        assert!(
            backend.schedulable(),
            "backend {backend} has no schedule seam and cannot be model checked"
        );
        self.backend = backend;
        self
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }
}

#[derive(Debug)]
struct DriverInner {
    /// Model lock depth per worker per object: incremented after a
    /// `lock` returns, decremented after an `unlock` returns, so at
    /// every quiescent state it reflects exactly the completed ops.
    depth: Vec<Vec<u32>>,
    /// The object a worker is inside a `Wait` op for, if any. Such a
    /// worker logically holds the lock but has physically released it.
    waiting_on: Vec<Option<usize>>,
    /// First observed divergence between an op's expected and actual
    /// outcome.
    violation: Option<String>,
}

/// Shared ground-truth model the worker bodies maintain as their ops
/// complete; the invariant suite compares it against the physical lock
/// words at every quiescent state.
#[derive(Debug)]
pub struct DriverState {
    inner: Mutex<DriverInner>,
    /// Condition flags, one per object, for `Wait`/`NotifySet`. Read and
    /// written only while holding the object's lock.
    flags: Vec<AtomicBool>,
}

impl DriverState {
    fn new(workers: usize, objects: usize) -> Self {
        DriverState {
            inner: Mutex::new(DriverInner {
                depth: vec![vec![0; objects]; workers],
                waiting_on: vec![None; workers],
                violation: None,
            }),
            flags: (0..objects).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    fn record_violation(&self, msg: String) {
        let mut inner = self.inner.lock().unwrap();
        if inner.violation.is_none() {
            inner.violation = Some(msg);
        }
    }

    fn bump_depth(&self, w: usize, o: usize, delta: i64) {
        let mut inner = self.inner.lock().unwrap();
        let d = &mut inner.depth[w][o];
        *d = (i64::from(*d) + delta) as u32;
    }

    fn set_waiting(&self, w: usize, o: Option<usize>) {
        self.inner.lock().unwrap().waiting_on[w] = o;
    }

    /// Takes the first recorded outcome mismatch, if any.
    pub fn take_violation(&self) -> Option<String> {
        self.inner.lock().unwrap().violation.take()
    }

    /// Snapshot of (depths, waiting_on) for the invariant suite.
    pub fn model(&self) -> (Vec<Vec<u32>>, Vec<Option<usize>>) {
        let inner = self.inner.lock().unwrap();
        (inner.depth.clone(), inner.waiting_on.clone())
    }
}

/// Runs one worker's op list against the protocol, keeping the model in
/// `driver` in sync. Stops at the first op whose outcome diverges from
/// the model's expectation (recording the divergence).
fn worker_body(
    proto: &dyn SyncProtocol,
    sched: &CoopScheduler,
    driver: &DriverState,
    objs: &[ObjRef],
    t: ThreadToken,
    w: usize,
    ops: &[McOp],
) {
    for (i, op) in ops.iter().enumerate() {
        match *op {
            McOp::Lock(o) => match proto.lock(objs[o], t) {
                Ok(()) => driver.bump_depth(w, o, 1),
                Err(e) => {
                    driver.record_violation(format!("worker {w} op {i}: lock(obj{o}) failed: {e}"));
                    return;
                }
            },
            McOp::Unlock(o) => match proto.unlock(objs[o], t) {
                Ok(()) => driver.bump_depth(w, o, -1),
                Err(e) => {
                    driver
                        .record_violation(format!("worker {w} op {i}: unlock(obj{o}) failed: {e}"));
                    return;
                }
            },
            McOp::RogueUnlock(o) => {
                // The rejected-release path inside the protocol passes
                // no schedule point (it fails before any store), which
                // would leave this op unlabeled and let DPOR commute it
                // past everything. Block at an explicit release-labeled
                // point first so the explorer interleaves the rogue
                // attempt against genuine ops on the same object.
                let _ = sched.reached(SchedPoint::UnlockThin, Some(objs[o]));
                if proto.unlock(objs[o], t).is_ok() {
                    driver.record_violation(format!(
                        "worker {w} op {i}: unlock(obj{o}) by a non-owner succeeded"
                    ));
                    return;
                }
            }
            McOp::Wait(o) => {
                driver.set_waiting(w, Some(o));
                while !driver.flags[o].load(Ordering::Acquire) {
                    if let Err(e) = proto.wait(objs[o], t, None) {
                        driver.record_violation(format!(
                            "worker {w} op {i}: wait(obj{o}) failed: {e}"
                        ));
                        driver.set_waiting(w, None);
                        return;
                    }
                }
                driver.set_waiting(w, None);
            }
            McOp::NotifySet(o) => {
                driver.flags[o].store(true, Ordering::Release);
                if let Err(e) = proto.notify(objs[o], t) {
                    driver
                        .record_violation(format!("worker {w} op {i}: notify(obj{o}) failed: {e}"));
                    return;
                }
            }
        }
    }
}

/// Whether the step a worker is blocked at can make progress if granted.
/// Always-true points simply execute; the three gated points are the
/// spin round (progresses only once the word is acquirable), the entry
/// park (only once the monitor is unowned — barging is allowed), and
/// the wait park (only once a notify moved the waiter out of the wait
/// set).
fn label_enabled(backend: &(impl SyncBackend + ?Sized), token: ThreadToken, label: Label) -> bool {
    let (point, obj) = label;
    let Some(obj) = obj else { return true };
    match point {
        SchedPoint::LockSpin => backend.spin_enabled(obj, token),
        SchedPoint::FatPark => backend
            .monitor_probe(obj)
            .map(|m| m.owner.is_none())
            .unwrap_or(true),
        SchedPoint::WaitPark => !backend.in_wait_set(obj, token),
        _ => true,
    }
}

/// One granted step: who moved, from which labeled point, and the full
/// pre-step context (every worker's pending label and the enabled set),
/// which the DPOR engine needs for backtrack-point computation.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// Worker granted the step.
    pub worker: usize,
    /// The labeled point the worker was blocked at.
    pub label: Label,
    /// Workers that were enabled in the pre-step state.
    pub enabled: Vec<usize>,
    /// Every worker's pending label in the pre-step state (`None` for
    /// finished workers).
    pub labels: Vec<Option<Label>>,
}

/// An invariant violation: the invariant's stable name plus a
/// human-readable detail line.
pub type Violation = (&'static str, String);

/// The outcome of one controlled execution.
#[derive(Debug, Default)]
pub struct ExecutionRecord {
    /// The granted steps, in order. This *is* the schedule.
    pub steps: Vec<StepRecord>,
    /// First invariant violation observed, if any.
    pub violation: Option<Violation>,
    /// True if the `pick` callback stopped the execution early (a
    /// redundant sleep-set branch or an infeasible replay).
    pub aborted: bool,
    /// True if the step budget ran out before the program finished.
    pub truncated: bool,
}

/// The `pick` callback's decision at a quiescent state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pick {
    /// Grant this worker (must be in the enabled set).
    Grant(usize),
    /// Abandon the execution (workers are aborted and drained).
    Stop,
}

/// Runs `program` once under the scheduler, granting steps as `pick`
/// directs. `pick` receives the step index, every worker's view, and
/// the enabled set; it is only called when at least one worker is
/// enabled. `sink` is attached to the protocol for counterexample
/// replay. Panics from worker bodies (other than controlled aborts)
/// propagate.
pub fn run_execution(
    program: &McProgram,
    sched: &Arc<CoopScheduler>,
    sink: Option<Arc<dyn TraceSink>>,
    max_steps: usize,
    mut pick: impl FnMut(usize, &[WorkerView], &[usize]) -> Pick,
) -> ExecutionRecord {
    let n = program.workers();
    let backend = program.backend.build_with(
        program.pad_objects + program.objects,
        BackendSeams {
            schedule: Some(Arc::clone(sched) as Arc<dyn Schedule>),
            trace_sink: sink,
            ..BackendSeams::default()
        },
    );

    for _ in 0..program.pad_objects {
        backend.heap().alloc().expect("padding object fits");
    }
    let objs: Vec<ObjRef> = (0..program.objects)
        .map(|_| backend.heap().alloc().expect("program object fits"))
        .collect();
    for &o in &program.pre_inflate {
        assert!(
            backend.pre_inflate_hint(objs[o]),
            "pre-inflation succeeds on a fresh object"
        );
    }

    let regs: Vec<_> = (0..n)
        .map(|_| backend.registry().register().expect("worker registers"))
        .collect();
    let tokens: Vec<ThreadToken> = regs.iter().map(|r| r.token()).collect();

    let mutant = program
        .mutation
        .map(|kind| MutantProtocol::new(Arc::clone(&backend), kind, Arc::clone(sched)));
    let proto: &dyn SyncProtocol = match &mutant {
        Some(m) => m,
        None => backend.as_ref(),
    };

    let driver = DriverState::new(n, program.objects);
    let mut invariants = InvariantState::new(backend.as_ref(), &objs);
    sched.reset(n);

    std::thread::scope(|s| {
        for (w, &token) in tokens.iter().enumerate() {
            let sched = Arc::clone(sched);
            let driver = &driver;
            let objs = &objs;
            let ops = &program.threads[w];
            s.spawn(move || {
                crate::sched::run_worker(&sched, w, || {
                    worker_body(proto, &sched, driver, objs, token, w, ops);
                });
            });
        }

        let mut rec = ExecutionRecord::default();
        loop {
            let views = sched.wait_quiescent();
            if let Some(msg) = driver.take_violation() {
                rec.violation = Some(("balanced-ops", msg));
            } else if let Some(v) =
                invariants.check_state(backend.as_ref(), &objs, &tokens, &driver)
            {
                rec.violation = Some(v);
            }
            let all_finished = views.iter().all(|v| v.status == WorkerStatus::Finished);
            if rec.violation.is_some() {
                if !all_finished {
                    sched.abort_all();
                    sched.wait_all_finished();
                }
                break;
            }
            if all_finished {
                rec.violation = invariants.check_end(backend.as_ref(), &objs, &tokens, &driver);
                break;
            }
            let enabled: Vec<usize> = views
                .iter()
                .enumerate()
                .filter(|(w, v)| {
                    v.status == WorkerStatus::Blocked
                        && v.pending
                            .map(|l| label_enabled(backend.as_ref(), tokens[*w], l))
                            .unwrap_or(false)
                })
                .map(|(w, _)| w)
                .collect();
            if enabled.is_empty() {
                let stuck: Vec<String> = views
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.status == WorkerStatus::Blocked)
                    .map(|(w, v)| {
                        let (p, o) = v.pending.expect("blocked worker has a label");
                        format!(
                            "worker {w} stuck at {p}{}",
                            o.map(|o| format!("(heap#{})", o.index()))
                                .unwrap_or_default()
                        )
                    })
                    .collect();
                rec.violation = Some((
                    "no-lost-wakeup",
                    format!("quiescent deadlock: {}", stuck.join(", ")),
                ));
                sched.abort_all();
                sched.wait_all_finished();
                break;
            }
            if rec.steps.len() >= max_steps {
                rec.truncated = true;
                sched.abort_all();
                sched.wait_all_finished();
                break;
            }
            match pick(rec.steps.len(), &views, &enabled) {
                Pick::Grant(w) => {
                    assert!(enabled.contains(&w), "picked worker {w} is not enabled");
                    rec.steps.push(StepRecord {
                        worker: w,
                        label: views[w].pending.expect("enabled worker has a label"),
                        enabled: enabled.clone(),
                        labels: views.iter().map(|v| v.pending).collect(),
                    });
                    sched.grant(w);
                }
                Pick::Stop => {
                    rec.aborted = true;
                    sched.abort_all();
                    sched.wait_all_finished();
                    break;
                }
            }
        }
        drop(regs);
        rec
    })
}

/// Runs arbitrary worker bodies under the scheduler against a caller-
/// built protocol instance — the custom-harness sibling of
/// [`run_execution`] for workloads the [`McOp`] language cannot express
/// (e.g. exhaustive exploration of VM bytecode programs). The caller
/// constructs the backend with the scheduler attached (e.g.
/// `ThinLocks::with_schedule`) plus any trace sink, registers one
/// token per body (used for enabledness of the gated park/spin points),
/// and supplies one closure per worker. No invariant suite or op model
/// runs; the only violation this harness itself reports is a quiescent
/// deadlock. Bodies that panic propagate after the worker is drained.
pub fn run_bodies<'a, B: SyncBackend + ?Sized>(
    backend: &Arc<B>,
    sched: &Arc<CoopScheduler>,
    tokens: &[ThreadToken],
    bodies: Vec<Box<dyn FnOnce() + Send + 'a>>,
    max_steps: usize,
    mut pick: impl FnMut(usize, &[WorkerView], &[usize]) -> Pick,
) -> ExecutionRecord {
    let n = bodies.len();
    assert_eq!(tokens.len(), n, "one token per body");
    sched.reset(n);

    std::thread::scope(|s| {
        for (w, body) in bodies.into_iter().enumerate() {
            let sched = Arc::clone(sched);
            s.spawn(move || {
                crate::sched::run_worker(&sched, w, body);
            });
        }

        let mut rec = ExecutionRecord::default();
        loop {
            let views = sched.wait_quiescent();
            if views.iter().all(|v| v.status == WorkerStatus::Finished) {
                break;
            }
            let enabled: Vec<usize> = views
                .iter()
                .enumerate()
                .filter(|(w, v)| {
                    v.status == WorkerStatus::Blocked
                        && v.pending
                            .map(|l| label_enabled(backend.as_ref(), tokens[*w], l))
                            .unwrap_or(false)
                })
                .map(|(w, _)| w)
                .collect();
            if enabled.is_empty() {
                rec.violation = Some((
                    "no-lost-wakeup",
                    "quiescent deadlock in custom-body execution".to_string(),
                ));
                sched.abort_all();
                sched.wait_all_finished();
                break;
            }
            if rec.steps.len() >= max_steps {
                rec.truncated = true;
                sched.abort_all();
                sched.wait_all_finished();
                break;
            }
            match pick(rec.steps.len(), &views, &enabled) {
                Pick::Grant(w) => {
                    assert!(enabled.contains(&w), "picked worker {w} is not enabled");
                    rec.steps.push(StepRecord {
                        worker: w,
                        label: views[w].pending.expect("enabled worker has a label"),
                        enabled: enabled.clone(),
                        labels: views.iter().map(|v| v.pending).collect(),
                    });
                    sched.grant(w);
                }
                Pick::Stop => {
                    rec.aborted = true;
                    sched.abort_all();
                    sched.wait_all_finished();
                    break;
                }
            }
        }
        rec
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Default free-run policy: prefer the previously granted worker,
    /// else the lowest-numbered enabled one.
    fn default_pick() -> impl FnMut(usize, &[WorkerView], &[usize]) -> Pick {
        let mut last: Option<usize> = None;
        move |_, _, enabled| {
            let w = match last {
                Some(p) if enabled.contains(&p) => p,
                _ => enabled[0],
            };
            last = Some(w);
            Pick::Grant(w)
        }
    }

    #[test]
    fn thin_nest_program_runs_clean() {
        let program = McProgram::new(
            "thin-nest",
            1,
            vec![
                vec![
                    McOp::Lock(0),
                    McOp::Lock(0),
                    McOp::Unlock(0),
                    McOp::Unlock(0),
                ];
                2
            ],
        );
        let sched = Arc::new(CoopScheduler::new());
        let rec = run_execution(&program, &sched, None, 10_000, default_pick());
        assert_eq!(rec.violation, None);
        assert!(!rec.truncated);
        assert!(rec.steps.len() >= 2, "at least the two boundary steps ran");
    }

    #[test]
    fn wait_notify_program_runs_clean() {
        let program = McProgram::new(
            "wait-notify",
            1,
            vec![
                vec![McOp::Lock(0), McOp::Wait(0), McOp::Unlock(0)],
                vec![McOp::Lock(0), McOp::NotifySet(0), McOp::Unlock(0)],
            ],
        );
        let sched = Arc::new(CoopScheduler::new());
        let rec = run_execution(&program, &sched, None, 10_000, default_pick());
        assert_eq!(rec.violation, None, "steps: {:?}", rec.steps.len());
    }

    #[test]
    fn rogue_unlock_is_rejected_by_correct_protocol() {
        let program = McProgram::new(
            "rogue",
            1,
            vec![
                vec![McOp::Lock(0), McOp::Unlock(0)],
                vec![McOp::RogueUnlock(0)],
            ],
        );
        let sched = Arc::new(CoopScheduler::new());
        let rec = run_execution(&program, &sched, None, 10_000, default_pick());
        assert_eq!(rec.violation, None);
    }

    #[test]
    fn pre_inflated_contention_runs_clean() {
        let mut program = McProgram::new(
            "contended-fat",
            1,
            vec![vec![McOp::Lock(0), McOp::Unlock(0)]; 3],
        );
        program.pre_inflate = vec![0];
        let sched = Arc::new(CoopScheduler::new());
        let rec = run_execution(&program, &sched, None, 10_000, default_pick());
        assert_eq!(rec.violation, None);
    }
}
