//! The cooperative scheduler: serializes managed worker threads so a
//! controller can grant protocol steps one at a time.
//!
//! [`CoopScheduler`] implements the runtime's [`Schedule`] seam. Worker
//! threads attach themselves by OS thread id; every schedule point they
//! pass through blocks inside [`Schedule::reached`] until the controller
//! grants them one step. Between two grants exactly one worker runs, so
//! the controller observes a sequence of *quiescent states* — every
//! worker blocked at a labeled point or finished — and the interleaving
//! is exactly the controller's sequence of grant decisions, which makes
//! executions replayable bit-for-bit.
//!
//! Threads that never attached (the controller itself, setup code) pass
//! through every point with [`SchedAction::Proceed`], so attaching a
//! scheduler never stalls harness code.

use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::ThreadId;

use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::schedule::{SchedAction, SchedPoint, Schedule};

/// A schedule-point label: the point a worker is blocked at, plus the
/// object it is operating on when known. Monitor-layer points (the two
/// park points) do not know their object; the scheduler substitutes the
/// last object the worker touched at a thin-layer point, which is the
/// object whose monitor it entered.
pub type Label = (SchedPoint, Option<ObjRef>);

/// Where a managed worker currently is, as seen by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Between grants: executing one step, not yet re-blocked.
    Running,
    /// Blocked inside [`Schedule::reached`] awaiting a grant.
    Blocked,
    /// Its body returned (or the execution was aborted).
    Finished,
}

/// Controller-side snapshot of one worker.
#[derive(Debug, Clone)]
pub struct WorkerView {
    /// Current status.
    pub status: WorkerStatus,
    /// The labeled point the worker is blocked at (`None` unless
    /// [`WorkerStatus::Blocked`]).
    pub pending: Option<Label>,
}

#[derive(Debug, Default)]
struct Slot {
    status: Option<WorkerStatus>,
    pending: Option<Label>,
    last_obj: Option<ObjRef>,
}

#[derive(Debug, Default)]
struct State {
    slots: Vec<Slot>,
    by_thread: HashMap<ThreadId, usize>,
    granted: Option<usize>,
    abort: bool,
}

/// Panic payload thrown through a worker when the controller aborts an
/// execution (after a violation, or to drain a redundant branch). The
/// worker wrapper catches it; it never escapes [`run_worker`].
#[derive(Debug)]
struct ExecutionAborted;

/// Installs (once per process) a panic hook that stays silent for the
/// scheduler's own [`ExecutionAborted`] unwinds — they are routine
/// control flow, and the default hook's backtrace spam would drown the
/// explorer's real output. Every other panic still reaches the previous
/// hook untouched.
fn install_abort_quiet_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ExecutionAborted>().is_none() {
                prev(info);
            }
        }));
    });
}

/// The serializing scheduler. One instance is shared by the protocol
/// (through [`Schedule`]), the workers, and the controller; [`reset`]
/// recycles it across executions.
///
/// [`reset`]: CoopScheduler::reset
#[derive(Debug, Default)]
pub struct CoopScheduler {
    state: Mutex<State>,
    worker_cv: Condvar,
    control_cv: Condvar,
}

impl CoopScheduler {
    /// Creates a scheduler managing no workers yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares for a fresh execution with `n` workers (indices
    /// `0..n`). Clears thread attachments, grants, and the abort flag.
    pub fn reset(&self, n: usize) {
        let mut st = self.state.lock().unwrap();
        st.slots = (0..n).map(|_| Slot::default()).collect();
        st.by_thread.clear();
        st.granted = None;
        st.abort = false;
    }

    /// Attaches the calling OS thread as worker `index`. Called by
    /// [`run_worker`]; a thread that never attaches passes through every
    /// schedule point unmanaged.
    fn attach(&self, index: usize) {
        let mut st = self.state.lock().unwrap();
        st.slots[index].status = Some(WorkerStatus::Running);
        st.by_thread.insert(std::thread::current().id(), index);
    }

    /// Marks worker `index` finished and wakes the controller.
    fn finish(&self, index: usize) {
        let mut st = self.state.lock().unwrap();
        st.slots[index].status = Some(WorkerStatus::Finished);
        st.slots[index].pending = None;
        self.control_cv.notify_all();
    }

    /// Grants worker `index` its next step. The worker must currently be
    /// blocked at a schedule point.
    ///
    /// # Panics
    ///
    /// If the worker is not blocked — granting a running or finished
    /// worker is a controller bug.
    pub fn grant(&self, index: usize) {
        let mut st = self.state.lock().unwrap();
        assert_eq!(
            st.slots[index].status,
            Some(WorkerStatus::Blocked),
            "granted worker {index} is not blocked"
        );
        // Flip to Running *before* waking so a concurrent quiescence
        // check cannot observe an all-blocked state mid-grant.
        st.slots[index].status = Some(WorkerStatus::Running);
        st.granted = Some(index);
        self.worker_cv.notify_all();
    }

    /// Blocks the controller until every worker is blocked at a point or
    /// finished, then returns the snapshot.
    pub fn wait_quiescent(&self) -> Vec<WorkerView> {
        let mut st = self.state.lock().unwrap();
        loop {
            let quiescent = st.granted.is_none()
                && st.slots.iter().all(|s| {
                    matches!(
                        s.status,
                        Some(WorkerStatus::Blocked) | Some(WorkerStatus::Finished)
                    )
                });
            if quiescent {
                return st
                    .slots
                    .iter()
                    .map(|s| WorkerView {
                        status: s.status.expect("quiescent slot has status"),
                        pending: s.pending,
                    })
                    .collect();
            }
            st = self.control_cv.wait(st).unwrap();
        }
    }

    /// Aborts the current execution: every worker blocked at (or later
    /// reaching) a schedule point unwinds out of the protocol with a
    /// panic that [`run_worker`] catches. Used to drain workers that can
    /// make no further progress (after a violation, a detected deadlock,
    /// or a redundant sleep-set branch).
    pub fn abort_all(&self) {
        let mut st = self.state.lock().unwrap();
        st.abort = true;
        self.worker_cv.notify_all();
    }

    /// Blocks until every worker has finished. Call after
    /// [`abort_all`](CoopScheduler::abort_all).
    pub fn wait_all_finished(&self) {
        let mut st = self.state.lock().unwrap();
        while !st
            .slots
            .iter()
            .all(|s| s.status == Some(WorkerStatus::Finished))
        {
            st = self.control_cv.wait(st).unwrap();
        }
    }
}

impl Schedule for CoopScheduler {
    fn reached(&self, point: SchedPoint, obj: Option<ObjRef>) -> SchedAction {
        let tid = std::thread::current().id();
        let mut st = self.state.lock().unwrap();
        let Some(&me) = st.by_thread.get(&tid) else {
            // Unmanaged thread (controller / setup code): pass through.
            return SchedAction::Proceed;
        };
        if st.abort {
            drop(st);
            panic::panic_any(ExecutionAborted);
        }
        {
            let slot = &mut st.slots[me];
            if let Some(o) = obj {
                slot.last_obj = Some(o);
            }
            let label_obj = obj.or(slot.last_obj);
            slot.pending = Some((point, label_obj));
            slot.status = Some(WorkerStatus::Blocked);
        }
        self.control_cv.notify_all();
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(ExecutionAborted);
            }
            if st.granted == Some(me) {
                break;
            }
            st = self.worker_cv.wait(st).unwrap();
        }
        st.granted = None;
        st.slots[me].pending = None;
        // The two park points never actually park under a serializing
        // scheduler: the granted step re-runs the acquire/notified check
        // instead, which is observably a spurious wakeup.
        if point.is_park() {
            SchedAction::SkipPark
        } else {
            SchedAction::Proceed
        }
    }
}

/// How a worker body ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// The body ran to completion.
    Completed,
    /// The controller aborted the execution while this worker was still
    /// inside the protocol.
    Aborted,
}

/// Runs a worker body under the scheduler: attaches the current thread
/// as worker `index`, blocks at an initial [`SchedPoint::Boundary`]
/// checkpoint (so the controller sees every worker parked at its start
/// line before stepping), runs `body`, and marks the worker finished.
///
/// Abort panics injected by [`CoopScheduler::abort_all`] are caught and
/// reported as [`WorkerExit::Aborted`]; any other panic is re-raised
/// after the worker is marked finished, so the controller cannot
/// deadlock on a buggy body.
pub fn run_worker<F>(sched: &Arc<CoopScheduler>, index: usize, body: F) -> WorkerExit
where
    F: FnOnce(),
{
    install_abort_quiet_hook();
    sched.attach(index);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        sched.reached(SchedPoint::Boundary, None);
        body();
    }));
    sched.finish(index);
    match result {
        Ok(()) => WorkerExit::Completed,
        Err(payload) if payload.is::<ExecutionAborted>() => WorkerExit::Aborted,
        Err(payload) => panic::resume_unwind(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unattached_threads_pass_through() {
        let sched = CoopScheduler::new();
        sched.reset(1);
        assert_eq!(
            sched.reached(SchedPoint::LockFast, None),
            SchedAction::Proceed
        );
    }

    #[test]
    fn serializes_two_workers_and_skips_parks() {
        let sched = Arc::new(CoopScheduler::new());
        sched.reset(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for w in 0..2usize {
                let sched = Arc::clone(&sched);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    run_worker(&sched, w, || {
                        let act = sched.reached(SchedPoint::FatPark, None);
                        assert_eq!(act, SchedAction::SkipPark);
                        order.lock().unwrap().push(w);
                    })
                });
            }
            // Both workers block at their Boundary checkpoint first.
            let views = sched.wait_quiescent();
            assert!(views
                .iter()
                .all(|v| v.pending == Some((SchedPoint::Boundary, None))));
            // Step worker 1 fully, then worker 0: the recorded order must
            // follow the grants, not spawn order.
            for w in [1usize, 0] {
                loop {
                    let views = sched.wait_quiescent();
                    if views[w].status == WorkerStatus::Finished {
                        break;
                    }
                    sched.grant(w);
                }
            }
            sched.wait_all_finished();
        });
        assert_eq!(*order.lock().unwrap(), vec![1, 0]);
    }

    #[test]
    fn abort_drains_blocked_workers() {
        let sched = Arc::new(CoopScheduler::new());
        sched.reset(1);
        std::thread::scope(|s| {
            let sched2 = Arc::clone(&sched);
            let handle = s.spawn(move || {
                run_worker(&sched2, 0, || {
                    // Never granted: the controller aborts instead.
                    sched2.reached(SchedPoint::LockSpin, None);
                    unreachable!("aborted worker must not pass its point");
                })
            });
            sched.wait_quiescent();
            sched.abort_all();
            sched.wait_all_finished();
            assert_eq!(handle.join().unwrap(), WorkerExit::Aborted);
        });
    }

    #[test]
    fn park_label_inherits_last_object() {
        let sched = Arc::new(CoopScheduler::new());
        sched.reset(1);
        let obj = ObjRef::from_index(3);
        std::thread::scope(|s| {
            let sched2 = Arc::clone(&sched);
            s.spawn(move || {
                run_worker(&sched2, 0, || {
                    sched2.reached(SchedPoint::LockFast, Some(obj));
                    sched2.reached(SchedPoint::FatPark, None);
                })
            });
            let views = sched.wait_quiescent();
            assert_eq!(views[0].pending, Some((SchedPoint::Boundary, None)));
            sched.grant(0);
            let views = sched.wait_quiescent();
            assert_eq!(views[0].pending, Some((SchedPoint::LockFast, Some(obj))));
            sched.grant(0);
            let views = sched.wait_quiescent();
            assert_eq!(views[0].pending, Some((SchedPoint::FatPark, Some(obj))));
            sched.grant(0);
            sched.wait_all_finished();
        });
    }
}
