//! The verification and mutation suites behind `lockmc`.
//!
//! The verify suite explores a fixed catalog of small programs that
//! jointly cover every protocol path the checker instruments: the thin
//! recursive path, thin contention (spin + slow CAS), fat contention
//! (pre-inflated entry queue), wait/notify (inflation on wait), rogue
//! release rejection, and a two-object crossing whose independent ops
//! are where DPOR earns its reduction factor. Each program runs under
//! naive exhaustive DFS and under DPOR; both must complete with zero
//! violations and identical verdicts, and the aggregate
//! naive-to-DPOR execution ratio is the reported reduction factor.
//!
//! The mutation suite re-runs selected programs against each seeded
//! [`MutationKind`]; the checker must find a violation, which is then
//! shrunk to a minimal schedule and replayed through the
//! `thinlock-obs` trace machinery into a deterministic timeline.

use std::sync::Arc;

use thinlock::BackendChoice;
use thinlock_obs::CounterexampleLog;

use crate::explore::{
    context_switches, explore, replay, shrink, Decision, ExploreStats, Limits, Mode,
};
use crate::mutate::MutationKind;
use crate::program::{McOp, McProgram};
use crate::sched::CoopScheduler;

/// The verify-suite program catalog.
pub fn verify_programs() -> Vec<McProgram> {
    let mut contended_fat = McProgram::new(
        "contended-fat-3",
        1,
        vec![vec![McOp::Lock(0), McOp::Unlock(0)]; 3],
    );
    contended_fat.pre_inflate = vec![0];
    vec![
        // 2 threads x 2 recursive lock/unlock pairs on 1 object: the
        // thin fast, nest, and contention paths.
        McProgram::new(
            "thin-nest-2x2",
            1,
            vec![
                vec![
                    McOp::Lock(0),
                    McOp::Lock(0),
                    McOp::Unlock(0),
                    McOp::Unlock(0),
                ];
                2
            ],
        ),
        // 3 threads contending on 1 thin object: spin and slow-CAS
        // interleavings.
        McProgram::new(
            "contended-thin-3",
            1,
            vec![vec![McOp::Lock(0), McOp::Unlock(0)]; 3],
        ),
        // Same contention against a pre-inflated object: fat entry
        // queue, barging, FIFO hand-off.
        contended_fat,
        // Wait/notify pair: inflation on wait, wait-set hand-off, and
        // the no-lost-wakeup invariant.
        McProgram::new(
            "wait-notify",
            1,
            vec![
                vec![McOp::Lock(0), McOp::Wait(0), McOp::Unlock(0)],
                vec![McOp::Lock(0), McOp::NotifySet(0), McOp::Unlock(0)],
            ],
        ),
        // Two objects crossed in opposite order: plenty of independent
        // steps for DPOR to commute (and no deadlock — the locks do
        // not nest).
        McProgram::new(
            "two-object-crossing",
            2,
            vec![
                vec![
                    McOp::Lock(0),
                    McOp::Unlock(0),
                    McOp::Lock(1),
                    McOp::Unlock(1),
                ],
                vec![
                    McOp::Lock(1),
                    McOp::Unlock(1),
                    McOp::Lock(0),
                    McOp::Unlock(0),
                ],
            ],
        ),
        // A non-owner tries to release: every interleaving must reject
        // it.
        McProgram::new(
            "rogue-unlock",
            1,
            vec![
                vec![McOp::Lock(0), McOp::Unlock(0)],
                vec![McOp::RogueUnlock(0)],
            ],
        ),
    ]
}

/// One verify-suite program's outcome.
#[derive(Debug)]
pub struct VerifyReport {
    /// Program name.
    pub name: &'static str,
    /// Naive exhaustive-DFS counters (absent in `--quick` mode).
    pub naive: Option<ExploreStats>,
    /// DPOR counters.
    pub dpor: ExploreStats,
    /// Violation found, if any (a verify failure), with its shrunk
    /// schedule rendered.
    pub violation: Option<Counterexample>,
}

/// A minimal violating schedule plus its deterministic replay timeline.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Invariant that failed.
    pub invariant: &'static str,
    /// Detail line from the invariant check.
    pub detail: String,
    /// Minimal decision schedule reproducing the violation.
    pub schedule: Vec<Decision>,
    /// Context switches in the minimal schedule.
    pub switches: usize,
    /// The obs-rendered event timeline of the replay.
    pub timeline: String,
}

/// Shrinks a violating schedule and renders its replay timeline.
pub fn build_counterexample(
    program: &McProgram,
    sched: &Arc<CoopScheduler>,
    invariant: &'static str,
    detail: String,
    schedule: Vec<Decision>,
    limits: &Limits,
) -> Counterexample {
    let minimal = shrink(program, sched, invariant, schedule, limits.max_steps);
    let timeline = render_replay(program, sched, &minimal, limits.max_steps);
    Counterexample {
        invariant,
        detail,
        switches: context_switches(&minimal),
        schedule: minimal,
        timeline,
    }
}

/// Replays a schedule with a [`CounterexampleLog`] attached and renders
/// the decision list plus the recorded event timeline.
pub fn render_replay(
    program: &McProgram,
    sched: &Arc<CoopScheduler>,
    schedule: &[Decision],
    max_steps: usize,
) -> String {
    let log = Arc::new(CounterexampleLog::new());
    let rec = replay(program, sched, schedule, Some(log.clone()), max_steps);
    let mut out = String::new();
    out.push_str("schedule:\n");
    for (i, d) in rec.steps.iter().enumerate() {
        let obj = d
            .label
            .1
            .map(|o| format!(" heap#{}", o.index()))
            .unwrap_or_default();
        out.push_str(&format!(
            "  step {i:<3} worker {} at {}{obj}\n",
            d.worker, d.label.0
        ));
    }
    match &rec.violation {
        Some((inv, detail)) => out.push_str(&format!("violation: {inv}: {detail}\n")),
        None => out.push_str("violation: none (schedule no longer reproduces)\n"),
    }
    out.push_str("events:\n");
    out.push_str(&log.render());
    out
}

/// Runs the verify suite against `backend`. With `with_naive`, each
/// program also runs under exhaustive DFS for the reduction-factor
/// baseline. The invariant suite adapts to the backend: the thin
/// backend is checked for one-way inflation, deflation-capable backends
/// for deflation safety.
pub fn run_verify(limits: &Limits, with_naive: bool, backend: BackendChoice) -> Vec<VerifyReport> {
    let sched = Arc::new(CoopScheduler::new());
    verify_programs()
        .into_iter()
        .map(|program| program.with_backend(backend))
        .map(|program| {
            let naive = with_naive.then(|| explore(&program, &sched, Mode::Naive, limits));
            let dpor = explore(&program, &sched, Mode::Dpor, limits);
            let violation = naive
                .as_ref()
                .and_then(|n| n.violation.clone())
                .or_else(|| dpor.violation.clone())
                .map(|v| {
                    build_counterexample(
                        &program,
                        &sched,
                        v.invariant,
                        v.detail,
                        v.schedule,
                        limits,
                    )
                });
            VerifyReport {
                name: program.name,
                naive: naive.map(|n| n.stats),
                dpor: dpor.stats,
                violation,
            }
        })
        .collect()
}

/// Aggregate naive-to-DPOR execution ratio across a verify run.
/// Returns `None` unless naive baselines were collected.
pub fn reduction_factor(reports: &[VerifyReport]) -> Option<f64> {
    let naive: u64 = reports
        .iter()
        .map(|r| r.naive.map(|n| n.executions))
        .sum::<Option<u64>>()?;
    let dpor: u64 = reports.iter().map(|r| r.dpor.executions).sum();
    (dpor > 0).then(|| naive as f64 / dpor as f64)
}

/// One mutation's outcome.
#[derive(Debug)]
pub struct MutationReport {
    /// The seeded bug.
    pub kind: MutationKind,
    /// Program it ran under.
    pub program: &'static str,
    /// DPOR counters for the hunt.
    pub stats: ExploreStats,
    /// The violation that caught it — `None` means the mutation
    /// SURVIVED, which is a checker failure.
    pub caught: Option<Counterexample>,
}

/// The program each mutation is hunted under: the smallest catalog
/// program whose ops exercise the mutated path.
pub fn mutation_programs() -> Vec<(MutationKind, McProgram)> {
    MutationKind::ALL
        .iter()
        .map(|&kind| {
            let mut program = match kind {
                // Needs a non-owner release racing an owner's critical
                // section.
                MutationKind::BlindRelease => McProgram::new(
                    "rogue-unlock",
                    1,
                    vec![
                        vec![McOp::Lock(0), McOp::Unlock(0)],
                        vec![McOp::RogueUnlock(0)],
                    ],
                ),
                // Needs re-entrant locking.
                MutationKind::SkipNestCount | MutationKind::StompHeader => McProgram::new(
                    "thin-nest-2x2",
                    1,
                    vec![
                        vec![
                            McOp::Lock(0),
                            McOp::Lock(0),
                            McOp::Unlock(0),
                            McOp::Unlock(0),
                        ];
                        2
                    ],
                ),
                // Need an inflated lock and a waiter, respectively.
                MutationKind::DeflateOnRelease | MutationKind::LostNotify => McProgram::new(
                    "wait-notify",
                    1,
                    vec![
                        vec![McOp::Lock(0), McOp::Wait(0), McOp::Unlock(0)],
                        vec![McOp::Lock(0), McOp::NotifySet(0), McOp::Unlock(0)],
                    ],
                ),
            };
            program.mutation = Some(kind);
            (kind, program)
        })
        .collect()
}

/// Hunts every seeded mutation with DPOR exploration under `backend`;
/// each must be caught and its counterexample shrunk.
pub fn run_mutations(limits: &Limits, backend: BackendChoice) -> Vec<MutationReport> {
    let sched = Arc::new(CoopScheduler::new());
    mutation_programs()
        .into_iter()
        .map(|(kind, program)| (kind, program.with_backend(backend)))
        .map(|(kind, program)| {
            let out = explore(&program, &sched, Mode::Dpor, limits);
            let caught = out.violation.map(|v| {
                build_counterexample(&program, &sched, v.invariant, v.detail, v.schedule, limits)
            });
            MutationReport {
                kind,
                program: program.name,
                stats: out.stats,
                caught,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = verify_programs().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), verify_programs().len());
    }

    #[test]
    fn every_mutation_has_a_program() {
        let programs = mutation_programs();
        assert_eq!(programs.len(), MutationKind::ALL.len());
        for (kind, program) in &programs {
            assert_eq!(program.mutation, Some(*kind));
        }
    }
}
