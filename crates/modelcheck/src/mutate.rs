//! Seeded protocol mutations: deliberately broken variants of the
//! thin-lock protocol that the checker must catch.
//!
//! Each [`MutationKind`] is a single, surgically small deviation from
//! the protocol — the kind of bug a real implementation could ship
//! with. [`MutantProtocol`] wraps a genuine backend instance (thin or
//! any other [`SyncBackend`]) and overrides exactly one operation;
//! everything else delegates, so a caught mutation demonstrates the
//! invariant suite noticed *that* deviation, not some unrelated
//! breakage. The mutation suite (`lockmc --mutate`) fails if any
//! mutation survives exploration — under the thin backend the deflating
//! mutation trips one-way inflation, under a deflation-capable backend
//! it must trip deflation safety instead.

use std::sync::Arc;
use std::time::Duration;

use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::error::SyncResult;
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::lockword::LockWord;
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::{SchedPoint, Schedule};

use crate::sched::CoopScheduler;

/// The catalog of seeded protocol bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// `unlock` clears the lock field without checking the caller owns
    /// it: a rogue release by a non-owner succeeds and breaks mutual
    /// exclusion.
    BlindRelease,
    /// Re-entrant `lock` skips the nest-count increment: the word
    /// under-counts and the lock is released one level early.
    SkipNestCount,
    /// `unlock` of a fat lock also writes the word back to its thin
    /// unlocked shape: inflation is no longer one-way and parked
    /// threads race an orphaned monitor.
    DeflateOnRelease,
    /// `notify` while holding the lock is silently swallowed: the
    /// waiter sleeps forever.
    LostNotify,
    /// The thin release stores an all-zero word, stomping the header
    /// hash bits the lock field must preserve.
    StompHeader,
}

impl MutationKind {
    /// Every mutation, in catalog order.
    pub const ALL: [MutationKind; 5] = [
        MutationKind::BlindRelease,
        MutationKind::SkipNestCount,
        MutationKind::DeflateOnRelease,
        MutationKind::LostNotify,
        MutationKind::StompHeader,
    ];

    /// Stable short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            MutationKind::BlindRelease => "blind-release",
            MutationKind::SkipNestCount => "skip-nest-count",
            MutationKind::DeflateOnRelease => "deflate-on-release",
            MutationKind::LostNotify => "lost-notify",
            MutationKind::StompHeader => "stomp-header",
        }
    }
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The real protocol with exactly one seeded bug.
pub struct MutantProtocol {
    inner: Arc<dyn SyncBackend + Send + Sync>,
    kind: MutationKind,
    sched: Arc<CoopScheduler>,
}

impl MutantProtocol {
    /// Wraps `inner` with the seeded bug `kind`. The scheduler handle
    /// lets the mutated step block at a schedule point of its own, so
    /// the explorer can interleave other workers around the buggy
    /// write.
    pub fn new(
        inner: Arc<dyn SyncBackend + Send + Sync>,
        kind: MutationKind,
        sched: Arc<CoopScheduler>,
    ) -> Self {
        MutantProtocol { inner, kind, sched }
    }

    fn reach(&self, point: SchedPoint, obj: ObjRef) {
        let _ = self.sched.reached(point, Some(obj));
    }

    fn word(&self, obj: ObjRef) -> LockWord {
        self.inner.probe_word(obj)
    }

    fn store(&self, obj: ObjRef, word: LockWord) {
        self.inner
            .heap()
            .header(obj)
            .lock_word()
            .store_relaxed(word);
    }
}

impl std::fmt::Debug for MutantProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutantProtocol")
            .field("inner", &self.inner.name())
            .field("kind", &self.kind)
            .finish()
    }
}

impl SyncProtocol for MutantProtocol {
    fn lock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if self.kind == MutationKind::SkipNestCount {
            let word = self.word(obj);
            if word.is_thin_owned_by(t.shifted()) {
                // Bug: the re-entrant path "succeeds" without bumping
                // the count.
                self.reach(SchedPoint::LockNest, obj);
                return Ok(());
            }
        }
        self.inner.lock(obj, t)
    }

    fn unlock(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        match self.kind {
            MutationKind::BlindRelease => {
                let word = self.word(obj);
                if word.is_thin_shape() && !word.is_unlocked() {
                    // Bug: no owner check before clearing the field.
                    self.reach(SchedPoint::UnlockThin, obj);
                    self.store(obj, word.with_lock_field_clear());
                    return Ok(());
                }
                self.inner.unlock(obj, t)
            }
            MutationKind::StompHeader => {
                let word = self.word(obj);
                if word.is_locked_once_by(t.shifted()) {
                    // Bug: release by zeroing the whole word, hash
                    // bits included.
                    self.reach(SchedPoint::UnlockThin, obj);
                    self.store(obj, LockWord::from_bits(0));
                    return Ok(());
                }
                self.inner.unlock(obj, t)
            }
            MutationKind::DeflateOnRelease => {
                let word = self.word(obj);
                let r = self.inner.unlock(obj, t);
                if word.is_fat() && r.is_ok() {
                    // Bug: write the word back to thin after a fat
                    // release, orphaning the monitor.
                    self.reach(SchedPoint::UnlockThin, obj);
                    self.store(obj, LockWord::new_unlocked(word.header_bits()));
                }
                r
            }
            _ => self.inner.unlock(obj, t),
        }
    }

    fn wait(
        &self,
        obj: ObjRef,
        t: ThreadToken,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        self.inner.wait(obj, t, timeout)
    }

    fn notify(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if self.kind == MutationKind::LostNotify && self.inner.holds_lock(obj, t) {
            // Bug: swallow the notification.
            self.reach(SchedPoint::Notify, obj);
            return Ok(());
        }
        self.inner.notify(obj, t)
    }

    fn notify_all(&self, obj: ObjRef, t: ThreadToken) -> SyncResult<()> {
        if self.kind == MutationKind::LostNotify && self.inner.holds_lock(obj, t) {
            self.reach(SchedPoint::Notify, obj);
            return Ok(());
        }
        self.inner.notify_all(obj, t)
    }

    fn holds_lock(&self, obj: ObjRef, t: ThreadToken) -> bool {
        self.inner.holds_lock(obj, t)
    }

    fn heap(&self) -> &Heap {
        self.inner.heap()
    }

    fn registry(&self) -> &ThreadRegistry {
        self.inner.registry()
    }

    fn name(&self) -> &'static str {
        "thin-locks-mutant"
    }
}
