//! `lockmc` — exhaustive model checking of the sync-protocol backends.
//!
//! ```text
//! lockmc verify            full exploration: naive DFS baseline + DPOR
//!                          per catalog program; fails on any violation,
//!                          incomplete exploration, or an aggregate
//!                          DPOR reduction factor of 2x or less
//! lockmc verify --quick    DPOR only, bounded budget (CI smoke)
//! lockmc --mutate          hunt every seeded protocol mutation; fails
//!                          if any survives; prints each minimal
//!                          counterexample timeline
//! ```
//!
//! Both commands take `--backend <thin|cjm|fissile|hapax|adaptive>`
//! (default `thin`). The invariant suite adapts: the thin backend is
//! held to one-way inflation, the deflating CJM backend to deflation
//! safety (a fat → thin transition is legal only from a quiescent
//! monitor), and the ticket-queue backends (fissile, hapax, adaptive)
//! additionally walk their FIFO arrival orders — the schedule point
//! precedes the ticket draw, so the checker owns admission order.
//!
//! Exit status: 0 on success, 1 on a failed contract, 2 on bad usage.

use std::process::ExitCode;

use thinlock::BackendChoice;
use thinlock_modelcheck::{
    reduction_factor, run_mutations, run_verify, Limits, MutationReport, VerifyReport,
};

const USAGE: &str =
    "usage: lockmc <verify [--quick] | --mutate [--quick]> [--backend <thin|cjm|fissile|hapax|adaptive>]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut command: Option<&str> = None;
    let mut backend = BackendChoice::Thin;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "verify" if command.is_none() => command = Some("verify"),
            "--mutate" if command.is_none() => command = Some("mutate"),
            "--backend" => {
                let Some(name) = iter.next() else {
                    eprintln!("lockmc: --backend needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match BackendChoice::from_name(name) {
                    Some(choice) if choice.schedulable() => backend = choice,
                    Some(choice) => {
                        eprintln!(
                            "lockmc: backend `{choice}` has no schedule seam and cannot be \
                             model checked\n{USAGE}"
                        );
                        return ExitCode::from(2);
                    }
                    None => {
                        eprintln!("lockmc: unknown backend `{name}`\n{USAGE}");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("lockmc: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let limits = if quick {
        Limits::quick()
    } else {
        Limits::exhaustive()
    };
    match command {
        Some("verify") => verify(&limits, !quick, backend),
        Some("mutate") => mutate(&limits, backend),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn verify(limits: &Limits, with_naive: bool, backend: BackendChoice) -> ExitCode {
    println!(
        "lockmc verify: exploring {} catalog programs on backend `{backend}` ({})",
        thinlock_modelcheck::verify_programs().len(),
        if with_naive {
            "naive DFS + DPOR"
        } else {
            "DPOR only, quick budget"
        }
    );
    let reports = run_verify(limits, with_naive, backend);
    let mut failed = false;
    for r in &reports {
        print_verify_report(r);
        if r.violation.is_some() || !r.dpor.complete {
            failed = true;
        }
        if let Some(n) = &r.naive {
            if !n.complete {
                failed = true;
            }
        }
    }
    if let Some(factor) = reduction_factor(&reports) {
        let naive: u64 = reports
            .iter()
            .filter_map(|r| r.naive.map(|n| n.executions))
            .sum();
        let dpor: u64 = reports.iter().map(|r| r.dpor.executions).sum();
        println!(
            "aggregate: naive {naive} executions, dpor {dpor} executions, reduction {factor:.1}x"
        );
        if factor <= 2.0 {
            eprintln!("lockmc: FAIL — DPOR reduction factor {factor:.1}x is not > 2x");
            failed = true;
        }
    }
    if failed {
        eprintln!("lockmc: verify FAILED");
        return ExitCode::FAILURE;
    }
    println!("lockmc: verify OK — no `{backend}` interleaving violates the invariant suite");
    ExitCode::SUCCESS
}

fn print_verify_report(r: &VerifyReport) {
    match &r.naive {
        Some(n) => println!(
            "  {:<22} naive: {:>6} execs {:>7} steps | dpor: {:>5} execs {:>6} steps \
             ({} sleep-blocked, depth {}){}",
            r.name,
            n.executions,
            n.transitions,
            r.dpor.executions,
            r.dpor.transitions,
            r.dpor.sleep_blocked,
            r.dpor.max_depth,
            if n.complete && r.dpor.complete {
                ""
            } else {
                " INCOMPLETE"
            }
        ),
        None => println!(
            "  {:<22} dpor: {:>5} execs {:>6} steps ({} sleep-blocked, depth {}){}",
            r.name,
            r.dpor.executions,
            r.dpor.transitions,
            r.dpor.sleep_blocked,
            r.dpor.max_depth,
            if r.dpor.complete { "" } else { " INCOMPLETE" }
        ),
    }
    if let Some(cx) = &r.violation {
        eprintln!(
            "  {}: VIOLATION of `{}`: {}\n  minimal schedule ({} decisions, {} switches):\n{}",
            r.name,
            cx.invariant,
            cx.detail,
            cx.schedule.len(),
            cx.switches,
            indent(&cx.timeline)
        );
    }
}

fn mutate(limits: &Limits, backend: BackendChoice) -> ExitCode {
    println!("lockmc --mutate: hunting seeded protocol bugs on backend `{backend}` with DPOR");
    let reports = run_mutations(limits, backend);
    let mut failed = false;
    for r in &reports {
        print_mutation_report(r, &mut failed);
    }
    if failed {
        eprintln!("lockmc: mutation suite FAILED — a seeded bug survived");
        return ExitCode::FAILURE;
    }
    println!(
        "lockmc: mutation suite OK — all {} seeded bugs caught with minimal counterexamples",
        reports.len()
    );
    ExitCode::SUCCESS
}

fn print_mutation_report(r: &MutationReport, failed: &mut bool) {
    match &r.caught {
        Some(cx) => {
            println!(
                "  {:<20} CAUGHT by `{}` under {} after {} execs — minimal schedule: \
                 {} decisions, {} context switches",
                r.kind.name(),
                cx.invariant,
                r.program,
                r.stats.executions,
                cx.schedule.len(),
                cx.switches,
            );
            println!("{}", indent(&cx.timeline));
        }
        None => {
            eprintln!(
                "  {:<20} SURVIVED {} executions under {} — checker failure",
                r.kind.name(),
                r.stats.executions,
                r.program
            );
            *failed = true;
        }
    }
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
