//! Stateless DFS over schedule decisions with dynamic partial-order
//! reduction and sleep sets.
//!
//! The explorer repeatedly re-executes the program under the
//! cooperative scheduler, replaying a decision prefix and extending it
//! with a free run (prefer the previously running worker). Each
//! decision point is a stack node holding the enabled set, every
//! worker's pending label, and the DPOR bookkeeping:
//!
//! * **backtrack** — workers that must eventually be tried from this
//!   state. Naive mode seeds it with the full enabled set (exhaustive
//!   DFS); DPOR mode seeds it with just the chosen worker and grows it
//!   from observed conflicts (Flanagan–Godefroid): after each
//!   execution, for every step `i` by worker `p`, the latest earlier
//!   step `j` by a different worker whose label is *dependent* with
//!   `i`'s adds `p` (or, if `p` was not enabled there, everyone
//!   enabled) to `j`'s backtrack set.
//! * **sleep** — workers whose exploration from this state is already
//!   covered by an earlier sibling branch. A child inherits the
//!   parent's sleep set plus the parent's completed choices, filtered
//!   to workers whose pending labels are independent of the executed
//!   step. Branches whose every enabled worker sleeps are abandoned.
//!
//! Two labels are dependent unless they are boundary checkpoints
//! (pure local no-ops), touch different objects, or are both spin
//! probes (read-only) on the same object. Unknown objects are
//! conservatively dependent with everything.

use std::collections::BTreeSet;
use std::sync::Arc;

use thinlock_runtime::schedule::SchedPoint;

use crate::program::{run_execution, ExecutionRecord, McProgram, Pick};
use crate::sched::{CoopScheduler, Label};

/// Exploration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exhaustive DFS: every enabled worker is tried at every state.
    Naive,
    /// DFS with dynamic partial-order reduction and sleep sets.
    Dpor,
}

/// Exploration budget.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum executions before giving up (`complete` turns false).
    pub max_executions: u64,
    /// Maximum granted steps within one execution.
    pub max_steps: usize,
}

impl Limits {
    /// A budget far beyond any bounded verify-suite program: hitting it
    /// means the state space is not what the suite intended.
    pub fn exhaustive() -> Self {
        Limits {
            max_executions: 2_000_000,
            max_steps: 10_000,
        }
    }

    /// A time-bounded smoke budget for CI (`lockmc --quick`).
    pub fn quick() -> Self {
        Limits {
            max_executions: 2_000,
            max_steps: 2_000,
        }
    }
}

/// Counters from one exploration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExploreStats {
    /// Distinct executions (complete schedules) run.
    pub executions: u64,
    /// Total granted steps across all executions (includes prefix
    /// replays — the real serialized work performed).
    pub transitions: u64,
    /// Executions abandoned because every enabled worker slept.
    pub sleep_blocked: u64,
    /// Deepest decision stack observed.
    pub max_depth: usize,
    /// True if the state space was exhausted within the limits.
    pub complete: bool,
}

/// Exploration result: counters plus the first violation found (with
/// the decision schedule that reaches it).
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Counters.
    pub stats: ExploreStats,
    /// First invariant violation, if any.
    pub violation: Option<FoundViolation>,
}

/// A violation plus the schedule that triggers it.
#[derive(Debug, Clone)]
pub struct FoundViolation {
    /// Invariant name.
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
    /// The decision schedule (granted worker per step) reaching the
    /// violation.
    pub schedule: Vec<Decision>,
}

/// One schedule decision, for replay and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Worker granted the step.
    pub worker: usize,
    /// The labeled point it was granted from.
    pub label: Label,
}

/// True if the two labeled steps can be freely commuted.
fn independent(a: Label, b: Label) -> bool {
    if a.0 == SchedPoint::Boundary || b.0 == SchedPoint::Boundary {
        return true;
    }
    match (a.1, b.1) {
        (Some(x), Some(y)) if x != y => true,
        (Some(_), Some(_)) => a.0 == SchedPoint::LockSpin && b.0 == SchedPoint::LockSpin,
        _ => false,
    }
}

#[derive(Debug)]
struct Node {
    enabled: Vec<usize>,
    labels: Vec<Option<Label>>,
    sleep: BTreeSet<usize>,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    chosen: usize,
    chosen_label: Label,
}

/// Explores every interleaving of `program` within `limits`, stopping
/// at the first invariant violation.
pub fn explore(
    program: &McProgram,
    sched: &Arc<CoopScheduler>,
    mode: Mode,
    limits: &Limits,
) -> ExploreOutcome {
    explore_with(mode, limits, |pick| {
        run_execution(program, sched, None, limits.max_steps, pick)
    })
}

/// The DFS + DPOR engine over an arbitrary execution runner: `run` must
/// perform one fresh execution, driving its schedule decisions through
/// the provided `pick` callback (see [`run_execution`]'s contract —
/// `pick` is called once per quiescent state with at least one enabled
/// worker). [`explore`] instantiates it with the [`McProgram`] harness;
/// other harnesses (e.g. exhaustive VM-program replays) supply their
/// own environment per execution and reuse the same exploration.
pub fn explore_with<R>(mode: Mode, limits: &Limits, mut run: R) -> ExploreOutcome
where
    R: FnMut(
        &mut dyn FnMut(usize, &[crate::sched::WorkerView], &[usize]) -> Pick,
    ) -> ExecutionRecord,
{
    let mut stack: Vec<Node> = Vec::new();
    let mut prefix_len = 0usize;
    let mut stats = ExploreStats::default();

    loop {
        if stats.executions >= limits.max_executions {
            return ExploreOutcome {
                stats,
                violation: None,
            };
        }
        stats.executions += 1;

        let record = {
            let stack = &mut stack;
            run(&mut |k, views, enabled| {
                if k < prefix_len {
                    return Pick::Grant(stack[k].chosen);
                }
                // New node: inherit the sleep set from the parent, keep
                // only workers whose pending step is independent of the
                // step the parent executed.
                let sleep: BTreeSet<usize> = match k.checked_sub(1).map(|i| &stack[i]) {
                    None => BTreeSet::new(),
                    Some(parent) => parent
                        .sleep
                        .iter()
                        .chain(parent.done.iter())
                        .copied()
                        .filter(|&t| t != parent.chosen)
                        .filter(|&t| match parent.labels[t] {
                            Some(l) => independent(l, parent.chosen_label),
                            None => false,
                        })
                        .collect(),
                };
                let free: Vec<usize> = enabled
                    .iter()
                    .copied()
                    .filter(|w| !sleep.contains(w))
                    .collect();
                if free.is_empty() {
                    return Pick::Stop;
                }
                let prev = k.checked_sub(1).map(|i| stack[i].chosen);
                let chosen = match prev {
                    Some(p) if free.contains(&p) => p,
                    _ => free[0],
                };
                let backtrack: BTreeSet<usize> = match mode {
                    Mode::Naive => enabled.iter().copied().collect(),
                    Mode::Dpor => [chosen].into_iter().collect(),
                };
                stack.push(Node {
                    enabled: enabled.to_vec(),
                    labels: views.iter().map(|v| v.pending).collect(),
                    sleep,
                    backtrack,
                    done: BTreeSet::new(),
                    chosen,
                    chosen_label: views[chosen].pending.expect("enabled worker has a label"),
                });
                Pick::Grant(chosen)
            })
        };

        stats.transitions += record.steps.len() as u64;
        stats.max_depth = stats.max_depth.max(record.steps.len());
        if record.aborted {
            stats.sleep_blocked += 1;
        }
        assert!(
            !record.truncated,
            "execution exceeded {} steps — raise Limits::max_steps",
            limits.max_steps
        );

        if let Some((invariant, detail)) = record.violation.clone() {
            return ExploreOutcome {
                stats,
                violation: Some(FoundViolation {
                    invariant,
                    detail,
                    schedule: decisions_of(&record),
                }),
            };
        }

        if mode == Mode::Dpor {
            add_backtrack_points(&mut stack, prefix_len);
        }

        // Pick the next branch: deepest node with an untried backtrack
        // choice outside its sleep set; prune fully explored nodes.
        let next = loop {
            let Some(top) = stack.last_mut() else {
                break None;
            };
            let chosen = top.chosen;
            top.done.insert(chosen);
            let candidate = top
                .backtrack
                .iter()
                .copied()
                .find(|w| !top.done.contains(w) && !top.sleep.contains(w));
            match candidate {
                Some(w) => {
                    top.chosen = w;
                    top.chosen_label = top.labels[w].expect("backtrack choice has a label");
                    break Some(());
                }
                None => {
                    stack.pop();
                }
            }
        };
        match next {
            Some(()) => prefix_len = stack.len(),
            None => {
                stats.complete = true;
                return ExploreOutcome {
                    stats,
                    violation: None,
                };
            }
        }
    }
}

fn decisions_of(record: &ExecutionRecord) -> Vec<Decision> {
    record
        .steps
        .iter()
        .map(|s| Decision {
            worker: s.worker,
            label: s.label,
        })
        .collect()
}

/// The Flanagan–Godefroid backtrack-point update over the freshly
/// executed suffix.
fn add_backtrack_points(stack: &mut [Node], prefix_len: usize) {
    for i in prefix_len.max(1)..stack.len() {
        let p = stack[i].chosen;
        let l_i = stack[i].chosen_label;
        let conflict = (0..i)
            .rev()
            .find(|&j| stack[j].chosen != p && !independent(stack[j].chosen_label, l_i));
        if let Some(j) = conflict {
            if stack[j].enabled.contains(&p) {
                stack[j].backtrack.insert(p);
            } else {
                let everyone: Vec<usize> = stack[j].enabled.clone();
                stack[j].backtrack.extend(everyone);
            }
        }
    }
}

/// Replays an explicit decision schedule, completing any tail with the
/// default free policy (prefer the previous worker). Returns the
/// execution record; an infeasible decision (worker not enabled at that
/// step) aborts the replay with `aborted = true`.
pub fn replay(
    program: &McProgram,
    sched: &Arc<CoopScheduler>,
    decisions: &[Decision],
    sink: Option<Arc<dyn thinlock_runtime::events::TraceSink>>,
    max_steps: usize,
) -> ExecutionRecord {
    let mut last: Option<usize> = None;
    run_execution(program, sched, sink, max_steps, |k, _views, enabled| {
        let w = if k < decisions.len() {
            let w = decisions[k].worker;
            if !enabled.contains(&w) {
                return Pick::Stop;
            }
            w
        } else {
            match last {
                Some(p) if enabled.contains(&p) => p,
                _ => enabled[0],
            }
        };
        last = Some(w);
        Pick::Grant(w)
    })
}

/// Counts context switches in a schedule (changes of granted worker).
pub fn context_switches(decisions: &[Decision]) -> usize {
    decisions
        .windows(2)
        .filter(|w| w[0].worker != w[1].worker)
        .count()
}

/// Greedily shrinks a violating schedule: repeatedly tries dropping
/// single decisions (and truncating the tail), keeping any candidate
/// that still reproduces a violation of the same invariant under
/// replay-plus-default-completion. The result is minimal in the sense
/// that no single decision can be removed.
pub fn shrink(
    program: &McProgram,
    sched: &Arc<CoopScheduler>,
    invariant: &'static str,
    schedule: Vec<Decision>,
    max_steps: usize,
) -> Vec<Decision> {
    let reproduce = |candidate: &[Decision]| -> Option<Vec<Decision>> {
        let rec = replay(program, sched, candidate, None, max_steps);
        match rec.violation {
            Some((inv, _)) if inv == invariant => {
                // Keep the decisions actually executed up to the
                // violation — the tail completion may have shortened or
                // extended the schedule.
                Some(
                    rec.steps
                        .iter()
                        .map(|s| Decision {
                            worker: s.worker,
                            label: s.label,
                        })
                        .collect(),
                )
            }
            _ => None,
        }
    };

    let cost = |d: &[Decision]| (d.len(), context_switches(d));
    let mut best = schedule;
    // The violating execution's own decision list already reproduces;
    // normalize it through one replay so the tail is policy-completed.
    if let Some(b) = reproduce(&best) {
        if cost(&b) < cost(&best) {
            best = b;
        }
    }
    loop {
        let mut improved = false;
        // Truncations first: dropping the whole tail is the biggest win.
        let mut cut = 0;
        while cut < best.len() {
            let candidate: Vec<Decision> = best[..cut].to_vec();
            if let Some(b) = reproduce(&candidate) {
                if cost(&b) < cost(&best) {
                    best = b;
                    improved = true;
                    continue;
                }
            }
            cut += 1;
        }
        // Single-decision deletions.
        let mut i = 0;
        while i < best.len() {
            let mut candidate = best.clone();
            candidate.remove(i);
            if let Some(b) = reproduce(&candidate) {
                if cost(&b) < cost(&best) {
                    best = b;
                    improved = true;
                    continue;
                }
            }
            i += 1;
        }
        if !improved {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::McOp;

    #[test]
    fn boundary_steps_are_independent() {
        let b: Label = (SchedPoint::Boundary, None);
        let l: Label = (
            SchedPoint::LockFast,
            Some(thinlock_runtime::heap::ObjRef::from_index(1)),
        );
        assert!(independent(b, l));
        assert!(independent(b, b));
    }

    #[test]
    fn same_object_writes_are_dependent_spins_are_not() {
        let o = Some(thinlock_runtime::heap::ObjRef::from_index(1));
        let p = Some(thinlock_runtime::heap::ObjRef::from_index(2));
        assert!(!independent(
            (SchedPoint::LockFast, o),
            (SchedPoint::UnlockThin, o)
        ));
        assert!(independent(
            (SchedPoint::LockFast, o),
            (SchedPoint::UnlockThin, p)
        ));
        assert!(independent(
            (SchedPoint::LockSpin, o),
            (SchedPoint::LockSpin, o)
        ));
        assert!(!independent(
            (SchedPoint::LockSpin, o),
            (SchedPoint::UnlockThin, None)
        ));
    }

    #[test]
    fn single_worker_program_explores_exactly_one_execution() {
        let program = McProgram::new("solo", 1, vec![vec![McOp::Lock(0), McOp::Unlock(0)]]);
        let sched = Arc::new(CoopScheduler::new());
        let out = explore(&program, &sched, Mode::Naive, &Limits::exhaustive());
        assert!(out.violation.is_none());
        assert!(out.stats.complete);
        assert_eq!(out.stats.executions, 1);
    }

    #[test]
    fn dpor_never_explores_more_than_naive() {
        let program = McProgram::new(
            "two-uncontended",
            2,
            vec![
                vec![McOp::Lock(0), McOp::Unlock(0)],
                vec![McOp::Lock(1), McOp::Unlock(1)],
            ],
        );
        let sched = Arc::new(CoopScheduler::new());
        let naive = explore(&program, &sched, Mode::Naive, &Limits::exhaustive());
        let dpor = explore(&program, &sched, Mode::Dpor, &Limits::exhaustive());
        assert!(naive.violation.is_none());
        assert!(dpor.violation.is_none());
        assert!(naive.stats.complete && dpor.stats.complete);
        assert!(
            dpor.stats.executions <= naive.stats.executions,
            "dpor {} vs naive {}",
            dpor.stats.executions,
            naive.stats.executions
        );
        // Disjoint objects: DPOR should collapse the interleavings
        // dramatically, not marginally.
        assert!(dpor.stats.executions * 2 <= naive.stats.executions);
    }
}
