//! Benchmark harness regenerating every table and figure of the paper.
//!
//! | artifact | function here | bench target | `reproduce` subcommand |
//! |----------|---------------|--------------|------------------------|
//! | Table 1  | [`macro_rows`] | `table1_characterize` | `table1` |
//! | Table 2  | [`thinlock_vm::programs::MicroBench::table2`] | — | `table2` |
//! | Figure 3 | [`figure3_rows`] | `table1_characterize` | `fig3` |
//! | Figure 4 | [`run_micro`], [`run_micro_threads`] | `fig4_micro` | `fig4` |
//! | Figure 5 | [`macro_speedups`] | `fig5_macro` | `fig5` |
//! | Figure 6 | [`run_variant`] | `fig6_variants` | `fig6` |
//!
//! Absolute times are host-dependent; what the harness (and the
//! assertions in `tests/`) check is the paper's *shape*: who wins, by
//! roughly what factor, and where the crossovers fall.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod benchjson;
pub mod gate;
pub mod report;

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use thinlock::config::{DynamicConfig, FastPathConfig, StaticMp, StaticUp};
use thinlock::{AdaptiveLocks, BackendChoice, TasukiLocks, ThinLocks};
use thinlock_baselines::{HotLocks, MonitorCache};
use thinlock_runtime::arch::ArchProfile;
use thinlock_runtime::backend::SyncBackend;
use thinlock_runtime::error::SyncResult;
use thinlock_runtime::heap::{Heap, ObjRef};
use thinlock_runtime::protocol::{SyncProtocol, WaitOutcome};
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};
use thinlock_trace::characterize::{characterize, TraceCharacterization};
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::replay::replay;
use thinlock_trace::table1::{BenchmarkProfile, MACRO_BENCHMARKS};
use thinlock_vm::programs::MicroBench;
use thinlock_vm::{Value, Vm};

/// The three locking implementations of Section 3, plus the Tasuki-style
/// extension used by the ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The paper's contribution (this workspace's `thinlock` crate).
    ThinLock,
    /// Sun JDK 1.1.1 monitor cache.
    Jdk111,
    /// IBM JDK 1.1.2 hot locks.
    Ibm112,
    /// Deflating park-based variant (`thinlock::tasuki`), not part of the
    /// paper's figures; see DESIGN.md §8.
    Tasuki,
    /// Compact Java Monitors (`thinlock::cjm`): deflation plus a bounded
    /// recycling monitor pool; see BACKENDS.md.
    Cjm,
    /// Fissile locks (`thinlock::fissile`): thin fast path that fissions
    /// into FIFO ticket admission under contention and re-coheres when
    /// the queue drains; see BACKENDS.md.
    Fissile,
    /// Hapax locks (`thinlock::hapax`): every blocking acquisition takes
    /// a FIFO ticket — constant-time arrival, strict admission order;
    /// see BACKENDS.md.
    Hapax,
}

impl ProtocolKind {
    /// The paper's three protocols, in its presentation order.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::ThinLock,
        ProtocolKind::Jdk111,
        ProtocolKind::Ibm112,
    ];

    /// The paper's protocols plus the Tasuki-style extension.
    pub const ALL_EXTENDED: [ProtocolKind; 4] = [
        ProtocolKind::ThinLock,
        ProtocolKind::Jdk111,
        ProtocolKind::Ibm112,
        ProtocolKind::Tasuki,
    ];

    /// Every protocol the workspace implements — the paper's three, both
    /// deflating extensions, and the contention-adaptive backends. The
    /// observational-equivalence matrix (`tests/cross_protocol.rs`) and
    /// the concurrent macro replay run over this set.
    pub const ALL_BACKENDS: [ProtocolKind; 7] = [
        ProtocolKind::ThinLock,
        ProtocolKind::Jdk111,
        ProtocolKind::Ibm112,
        ProtocolKind::Tasuki,
        ProtocolKind::Cjm,
        ProtocolKind::Fissile,
        ProtocolKind::Hapax,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::ThinLock => "ThinLock",
            ProtocolKind::Jdk111 => "JDK111",
            ProtocolKind::Ibm112 => "IBM112",
            ProtocolKind::Tasuki => "Tasuki",
            ProtocolKind::Cjm => "CJM",
            ProtocolKind::Fissile => "Fissile",
            ProtocolKind::Hapax => "Hapax",
        }
    }

    /// Builds a fresh protocol instance over its own heap.
    pub fn build(self, heap_capacity: usize, fields: usize) -> Box<dyn SyncProtocol> {
        let heap = Arc::new(Heap::with_capacity_and_fields(heap_capacity, fields));
        let registry = ThreadRegistry::new();
        match self {
            ProtocolKind::ThinLock => Box::new(ThinLocks::new(heap, registry)),
            ProtocolKind::Jdk111 => Box::new(MonitorCache::new(
                heap,
                registry,
                thinlock_baselines::cache::DEFAULT_CACHE_CAPACITY,
            )),
            ProtocolKind::Ibm112 => Box::new(HotLocks::new(
                heap,
                registry,
                thinlock_baselines::cache::DEFAULT_CACHE_CAPACITY,
                thinlock_baselines::hot::DEFAULT_HOT_THRESHOLD,
            )),
            ProtocolKind::Tasuki => Box::new(TasukiLocks::new(heap, registry)),
            ProtocolKind::Cjm => Box::new(thinlock::CjmLocks::new(heap, registry)),
            ProtocolKind::Fissile => Box::new(thinlock::FissileLocks::new(heap, registry)),
            ProtocolKind::Hapax => Box::new(thinlock::HapaxLocks::new(heap, registry)),
        }
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed micro-benchmark cell of Figure 4 / Figure 6.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroResult {
    /// Implementation measured ("ThinLock", "JDK111", "IBM112", or a
    /// Figure 6 variant name).
    pub implementation: String,
    /// Benchmark name ("Sync", "MultiSync 64", …).
    pub benchmark: String,
    /// Loop iterations executed.
    pub iters: i32,
    /// Fastest wall-clock time over the repetitions (see [`min_time`]).
    pub elapsed: Duration,
}

impl MicroResult {
    /// Nanoseconds per loop iteration.
    pub fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iters as f64
    }
}

impl fmt::Display for MicroResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<22} {:<16} {:>9.1} ns/iter",
            self.benchmark,
            self.implementation,
            self.ns_per_iter()
        )
    }
}

/// Repetitions used by [`min_time`] / [`median_time`]: enough to shed
/// scheduler noise on a shared host without exploding runtime.
pub const DEFAULT_REPS: usize = 5;

/// Runs `f` `reps` times and returns every repetition's duration, in
/// execution order. [`min_time`] and [`median_time`] summarize this; the
/// benchmark telemetry pipeline ([`benchjson`]) keeps the raw samples
/// for its MAD/bootstrap statistics.
pub fn sample_times(reps: usize, mut f: impl FnMut()) -> Vec<Duration> {
    assert!(reps > 0);
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect()
}

/// Runs `f` `reps` times and returns the median duration.
pub fn median_time(reps: usize, f: impl FnMut()) -> Duration {
    let mut times = sample_times(reps, f);
    times.sort_unstable();
    times[times.len() / 2]
}

/// Runs `f` `reps` times and returns the fastest duration.
///
/// This is the point estimate the benchmark pipeline gates on: on a
/// shared host, CPU-steal windows inflate individual repetitions by
/// integer factors, so the median of a small sample can double between
/// otherwise identical runs. The minimum is reproducible as long as at
/// least one repetition lands in a clean window, and for a deterministic
/// workload it is the best estimate of the true cost (interference only
/// ever adds time). The full sample still reaches the telemetry layer,
/// which records median/MAD/CI alongside.
pub fn min_time(reps: usize, f: impl FnMut()) -> Duration {
    sample_times(reps, f)
        .into_iter()
        .min()
        .expect("reps > 0 is asserted by sample_times")
}

/// Runs one Table 2 micro-benchmark (single-threaded) under a protocol,
/// returning the fastest time of [`DEFAULT_REPS`] runs.
///
/// # Panics
///
/// Panics if the program misbehaves (wrong return value) — a benchmark
/// that does not compute what it claims must not report a time.
pub fn run_micro(kind: ProtocolKind, bench: MicroBench, iters: i32) -> MicroResult {
    run_micro_sampled(kind, bench, iters).0
}

/// [`run_micro`] plus the raw per-repetition samples (ns per iteration,
/// execution order) the telemetry pipeline summarizes.
///
/// Each repetition runs against a freshly built protocol instance. The
/// baseline protocols (monitor cache, hot locks) are sensitive to where
/// their tables land in memory — one unlucky layout can double a cell
/// for the lifetime of the instance — so a single shared instance makes
/// the whole run bimodal. Rebuilding per repetition samples independent
/// layouts and lets the min pick the representative one, the same
/// reasoning as `run_macro`'s fresh heap per replay.
pub fn run_micro_sampled(
    kind: ProtocolKind,
    bench: MicroBench,
    iters: i32,
) -> (MicroResult, Vec<f64>) {
    let times: Vec<Duration> = (0..DEFAULT_REPS)
        .map(|_| {
            let protocol = kind.build(bench.pool_size() as usize + 1, 1);
            time_micro_rep(&*protocol, bench, iters)
        })
        .collect();
    assemble_micro(kind.name(), bench, iters, times)
}

/// Times one repetition of `bench` on a fresh VM over `protocol`: pool
/// allocation, VM construction and thread registration stay outside the
/// timed window; the benchmark's return value is asserted afterwards.
fn time_micro_rep<P: SyncProtocol + ?Sized>(
    protocol: &P,
    bench: MicroBench,
    iters: i32,
) -> Duration {
    let program = bench.program();
    let pool: Vec<ObjRef> = (0..bench.pool_size())
        .map(|_| protocol.heap().alloc().expect("heap sized for the pool"))
        .collect();
    let vm = Vm::new(protocol, &program, pool).expect("generated program is valid");
    let registration = protocol.registry().register().expect("registry has room");
    let start = Instant::now();
    let out = vm
        .run("main", registration.token(), &[Value::Int(iters)])
        .expect("benchmark must execute cleanly")
        .and_then(Value::as_int)
        .expect("main returns the iteration count");
    let elapsed = start.elapsed();
    assert_eq!(out, bench.expected(iters));
    elapsed
}

/// Folds raw repetition times into a [`MicroResult`] (fastest time, see
/// [`min_time`]) plus the ns-per-iteration samples in execution order.
fn assemble_micro(
    implementation: &str,
    bench: MicroBench,
    iters: i32,
    times: Vec<Duration>,
) -> (MicroResult, Vec<f64>) {
    let samples_ns: Vec<f64> = times
        .iter()
        .map(|t| {
            if iters == 0 {
                0.0
            } else {
                t.as_nanos() as f64 / iters as f64
            }
        })
        .collect();
    let elapsed = times.into_iter().min().expect("at least one repetition");
    (
        MicroResult {
            implementation: implementation.to_string(),
            benchmark: bench.to_string(),
            iters,
            elapsed,
        },
        samples_ns,
    )
}

/// [`run_micro`] against a caller-supplied protocol (used by the Figure 6
/// variants, which need concrete `ThinLocks<C>` types so the fast path
/// stays monomorphized).
pub fn run_micro_on<P: SyncProtocol + ?Sized>(
    protocol: &P,
    implementation: &str,
    bench: MicroBench,
    iters: i32,
) -> MicroResult {
    run_micro_on_sampled(protocol, implementation, bench, iters).0
}

/// [`run_micro_on`] plus the raw per-repetition samples (ns per
/// iteration, execution order).
///
/// All repetitions share the caller's protocol instance (the caller
/// controls its construction); prefer [`run_micro_sampled`] /
/// [`run_variant_sampled`] where possible — they rebuild the instance
/// per repetition, which shakes out allocation-layout bimodality.
pub fn run_micro_on_sampled<P: SyncProtocol + ?Sized>(
    protocol: &P,
    implementation: &str,
    bench: MicroBench,
    iters: i32,
) -> (MicroResult, Vec<f64>) {
    let program = bench.program();
    let pool: Vec<ObjRef> = (0..bench.pool_size())
        .map(|_| protocol.heap().alloc().expect("heap sized for the pool"))
        .collect();
    let vm = Vm::new(protocol, &program, pool).expect("generated program is valid");
    let registration = protocol.registry().register().expect("registry has room");
    let token = registration.token();
    let times = sample_times(DEFAULT_REPS, || {
        let out = vm
            .run("main", token, &[Value::Int(iters)])
            .expect("benchmark must execute cleanly")
            .and_then(Value::as_int)
            .expect("main returns the iteration count");
        assert_eq!(out, bench.expected(iters));
    });
    assemble_micro(implementation, bench, iters, times)
}

/// The `Threads n` benchmark: `n` OS threads all running the `Sync` loop
/// on the *same* object. Returns total wall-clock for all threads.
pub fn run_micro_threads(kind: ProtocolKind, threads: u32, iters: i32) -> MicroResult {
    let bench = MicroBench::Threads(threads);
    let program = bench.program();
    // Fresh protocol instance per repetition, as in `run_micro_sampled`.
    let elapsed = (0..3)
        .map(|_| {
            let protocol = kind.build(2, 1);
            let pool: Vec<ObjRef> = vec![protocol.heap().alloc().expect("heap has room")];
            let start = Instant::now();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads.max(1) {
                    let protocol = &*protocol;
                    let program = &program;
                    let pool = pool.clone();
                    handles.push(scope.spawn(move || {
                        let registration =
                            protocol.registry().register().expect("registry has room");
                        let vm = Vm::new(protocol, program, pool).expect("program is valid");
                        let out = vm
                            .run("main", registration.token(), &[Value::Int(iters)])
                            .expect("benchmark must execute cleanly")
                            .and_then(Value::as_int)
                            .expect("main returns the iteration count");
                        assert_eq!(out, iters);
                    }));
                }
                for h in handles {
                    h.join().expect("benchmark thread must not panic");
                }
            });
            start.elapsed()
        })
        .min()
        .expect("three repetitions");
    MicroResult {
        implementation: kind.name().to_string(),
        benchmark: bench.to_string(),
        iters: iters.saturating_mul(threads.max(1) as i32),
        elapsed,
    }
}

/// The fast-path engineering variants of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// All synchronization removed — "the speed of light" within the
    /// interpreter (only the extra bytecodes remain).
    Nop,
    /// Inlined, architecture-specialized fast path (uniprocessor).
    Inline,
    /// Fast path forced through a shared out-of-line function.
    FnCall,
    /// Multiprocessor barriers (`isync`/`sync` analogues) included.
    MpSync,
    /// The shipped configuration: dynamic architecture test per operation.
    ThinLockDynamic,
    /// Unlock performed with compare-and-swap instead of a store.
    UnlkCas,
    /// Compare-and-swap through the simulated POWER kernel trap.
    KernelCas,
}

impl Variant {
    /// All variants in Figure 6's presentation order.
    pub const ALL: [Variant; 7] = [
        Variant::Nop,
        Variant::Inline,
        Variant::FnCall,
        Variant::MpSync,
        Variant::ThinLockDynamic,
        Variant::UnlkCas,
        Variant::KernelCas,
    ];

    /// Figure 6 label.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Nop => "NOP",
            Variant::Inline => "Inline",
            Variant::FnCall => "FnCall",
            Variant::MpSync => "MP Sync",
            Variant::ThinLockDynamic => "ThinLock",
            Variant::UnlkCas => "UnlkC&S",
            Variant::KernelCas => "KernelCAS",
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs one Figure 6 cell: `bench` under the given thin-lock variant.
pub fn run_variant(variant: Variant, bench: MicroBench, iters: i32) -> MicroResult {
    run_variant_sampled(variant, bench, iters).0
}

/// [`run_variant`] plus the raw per-repetition samples (ns per
/// iteration, execution order). As in [`run_micro_sampled`], each
/// repetition gets a freshly built protocol instance.
pub fn run_variant_sampled(
    variant: Variant,
    bench: MicroBench,
    iters: i32,
) -> (MicroResult, Vec<f64>) {
    let cap = bench.pool_size() as usize + 1;
    fn thin<C: FastPathConfig>(cap: usize, config: C) -> ThinLocks<C> {
        ThinLocks::with_config(
            Arc::new(Heap::with_capacity_and_fields(cap, 1)),
            ThreadRegistry::new(),
            config,
        )
    }
    fn sampled<P: SyncProtocol>(
        variant: Variant,
        bench: MicroBench,
        iters: i32,
        make: impl Fn() -> P,
    ) -> (MicroResult, Vec<f64>) {
        let times: Vec<Duration> = (0..DEFAULT_REPS)
            .map(|_| time_micro_rep(&make(), bench, iters))
            .collect();
        assemble_micro(variant.name(), bench, iters, times)
    }
    match variant {
        Variant::Nop => sampled(variant, bench, iters, || NullProtocol::new(cap)),
        Variant::Inline => sampled(variant, bench, iters, || thin(cap, StaticUp)),
        Variant::FnCall => sampled(variant, bench, iters, || {
            thin(
                cap,
                DynamicConfig::new(ArchProfile::PowerPcUp).with_outlined_fast_path(),
            )
        }),
        Variant::MpSync => sampled(variant, bench, iters, || thin(cap, StaticMp)),
        Variant::ThinLockDynamic => sampled(variant, bench, iters, || {
            thin(cap, DynamicConfig::new(ArchProfile::PowerPcMp))
        }),
        Variant::UnlkCas => sampled(variant, bench, iters, || {
            thin(
                cap,
                DynamicConfig::new(ArchProfile::PowerPcMp).with_cas_unlock(),
            )
        }),
        Variant::KernelCas => sampled(variant, bench, iters, || {
            thin(cap, DynamicConfig::new(ArchProfile::PowerKernelCas))
        }),
    }
}

/// One Figure 5 row: replay times per protocol and speedups over JDK111.
#[derive(Debug, Clone, PartialEq)]
pub struct MacroRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Thin-lock replay time.
    pub thin: Duration,
    /// Monitor-cache replay time.
    pub jdk111: Duration,
    /// Hot-locks replay time.
    pub ibm112: Duration,
    /// Lock operations replayed.
    pub lock_ops: u64,
}

impl MacroRow {
    /// Speedup of thin locks over JDK111 (>1 means thin wins).
    pub fn speedup_thin(&self) -> f64 {
        self.jdk111.as_secs_f64() / self.thin.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Speedup of IBM112 over JDK111.
    pub fn speedup_ibm112(&self) -> f64 {
        self.jdk111.as_secs_f64() / self.ibm112.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

impl fmt::Display for MacroRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:>8} syncs  thin {:>8.2?}  jdk {:>8.2?}  ibm {:>8.2?}  speedup(thin) {:>5.2}  speedup(ibm) {:>5.2}",
            self.name,
            self.lock_ops,
            self.thin,
            self.jdk111,
            self.ibm112,
            self.speedup_thin(),
            self.speedup_ibm112()
        )
    }
}

/// Replays one macro-benchmark trace under one protocol with a fresh heap.
///
/// # Errors
///
/// Propagates protocol errors (none occur on valid traces).
pub fn run_macro(
    kind: ProtocolKind,
    profile: &BenchmarkProfile,
    config: &TraceConfig,
) -> SyncResult<Duration> {
    let trace = generate(profile, config);
    let protocol = kind.build(trace.required_heap_capacity(), 0);
    let registration = protocol.registry().register()?;
    let best = (0..3)
        .map(|_| -> SyncResult<Duration> {
            // Fresh heap per repetition: the trace allocates.
            let protocol = kind.build(trace.required_heap_capacity(), 0);
            let registration = protocol.registry().register()?;
            Ok(replay(&*protocol, &trace, registration.token())?.elapsed)
        })
        .collect::<SyncResult<Vec<_>>>()?
        .into_iter()
        .min()
        .expect("three repetitions");
    drop(registration);
    drop(protocol);
    Ok(best)
}

/// Regenerates Figure 5: every macro-benchmark replayed under all three
/// protocols.
///
/// # Errors
///
/// Propagates protocol errors (none occur on valid traces).
pub fn macro_speedups(config: &TraceConfig) -> SyncResult<Vec<MacroRow>> {
    MACRO_BENCHMARKS
        .iter()
        .map(|profile| {
            let trace = generate(profile, config);
            Ok(MacroRow {
                name: profile.name,
                thin: run_macro(ProtocolKind::ThinLock, profile, config)?,
                jdk111: run_macro(ProtocolKind::Jdk111, profile, config)?,
                ibm112: run_macro(ProtocolKind::Ibm112, profile, config)?,
                lock_ops: trace.lock_ops(),
            })
        })
        .collect()
}

/// Regenerates Table 1: characterization of every generated trace.
pub fn macro_rows(config: &TraceConfig) -> Vec<(&'static BenchmarkProfile, TraceCharacterization)> {
    MACRO_BENCHMARKS
        .iter()
        .map(|p| (p, characterize(&generate(p, config))))
        .collect()
}

/// Regenerates Figure 3: per-benchmark nesting-depth fractions
/// (depth 1..=4) of the generated traces.
pub fn figure3_rows(config: &TraceConfig) -> Vec<(&'static str, [f64; 4])> {
    macro_rows(config)
        .into_iter()
        .map(|(p, c)| {
            (
                p.name,
                [
                    c.depth_fraction(1),
                    c.depth_fraction(2),
                    c.depth_fraction(3),
                    c.depth_fraction(4),
                ],
            )
        })
        .collect()
}

/// Result of the phased (contend-then-private) ablation comparing one-way
/// inflation against deflation. See [`phased_ablation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasedAblation {
    /// Time the base protocol (permanently inflated after phase 1) took
    /// for the private phase.
    pub thin_private: Duration,
    /// Time the deflating protocol took for the private phase.
    pub tasuki_private: Duration,
    /// Inflations performed by the deflating protocol.
    pub tasuki_inflations: u64,
    /// Deflations performed by the deflating protocol.
    pub tasuki_deflations: u64,
}

impl PhasedAblation {
    /// How much faster the deflating variant runs the private phase.
    pub fn private_phase_speedup(&self) -> f64 {
        self.thin_private.as_secs_f64() / self.tasuki_private.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// The ablation of the paper's one-way-inflation rule: a lock sees one
/// burst of `wait`-induced inflation (phase 1), then `private_iters` of
/// single-threaded lock/unlock (phase 2).
///
/// Under the paper's design the lock stays fat and phase 2 pays the
/// monitor cost forever; under the Tasuki-style variant it deflates and
/// phase 2 runs at thin-lock speed. The return value quantifies the gap —
/// and `tasuki_inflations` shows the price (re-inflation on each
/// contended episode) that made the paper choose permanence for
/// simplicity.
pub fn phased_ablation(private_iters: u32) -> PhasedAblation {
    fn contend_once<P: SyncProtocol>(p: &P) {
        let reg = p.registry().register().expect("registry");
        let t = reg.token();
        let obj = ObjRef::from_index(0);
        p.lock(obj, t).expect("lock");
        let _ = p.wait(obj, t, Some(Duration::from_millis(1)));
        p.unlock(obj, t).expect("unlock");
    }
    fn private_phase<P: SyncProtocol>(p: &P, iters: u32) -> Duration {
        let reg = p.registry().register().expect("registry");
        let t = reg.token();
        let obj = ObjRef::from_index(0);
        min_time(DEFAULT_REPS, || {
            for _ in 0..iters {
                p.lock(obj, t).expect("lock");
                p.unlock(obj, t).expect("unlock");
            }
        })
    }

    let thin = ThinLocks::with_capacity(2);
    thin.heap().alloc().expect("alloc");
    contend_once(&thin);
    assert!(thin.lock_word(ObjRef::from_index(0)).is_fat());
    let thin_private = private_phase(&thin, private_iters);

    let tasuki = TasukiLocks::with_capacity(2);
    tasuki.heap().alloc().expect("alloc");
    contend_once(&tasuki);
    assert!(tasuki.lock_word(ObjRef::from_index(0)).is_unlocked());
    let tasuki_private = private_phase(&tasuki, private_iters);

    PhasedAblation {
        thin_private,
        tasuki_private,
        tasuki_inflations: tasuki.inflation_count(),
        tasuki_deflations: tasuki.deflation_count(),
    }
}

/// Objects the churn workload rotates over (also the monitor-population
/// ceiling a backend may not exceed during it).
pub const CHURN_OBJECTS: usize = 8;

/// Burst/private rounds the churn workload executes per repetition.
pub const CHURN_ROUNDS: u32 = 64;

/// Result of one monitor-churn run. See [`run_churn`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnRun {
    /// Backend measured.
    pub backend: BackendChoice,
    /// Objects the rounds rotated over.
    pub objects: usize,
    /// Burst/private rounds executed per repetition.
    pub rounds: u32,
    /// Fastest private-phase cost, in ns per lock/unlock pair.
    pub ns_per_op: f64,
    /// Per-repetition ns-per-op samples, execution order.
    pub samples: Vec<f64>,
    /// Inflations one repetition performs (deterministic per backend).
    pub inflations: u64,
    /// Deflations one repetition performs (0 under one-way inflation).
    pub deflations: u64,
    /// Monitors still live when a repetition ends.
    pub monitors_live: usize,
    /// Peak simultaneous monitor population during a repetition.
    pub monitors_peak: usize,
}

/// The monitor-churn workload: the access pattern where permanent
/// inflation loses.
///
/// Each round picks the next object in a rotating set of `objects`,
/// forces one wait-induced inflation burst on it (lock, timed `wait`,
/// unlock — the paper's own inflation trigger), then runs
/// `private_iters` single-threaded lock/unlock pairs on the same object
/// with only the private phases timed. Under one-way inflation every
/// object stays fat after its first burst, so all later private phases
/// pay the monitor price and the monitor population climbs to the full
/// object count. A deflating backend returns each object to its thin
/// word when the burst quiesces: private phases run at thin-lock speed
/// and at most one monitor is ever live.
///
/// Each repetition runs on a freshly built backend (the
/// [`run_micro_sampled`] discipline), so the population counters are
/// per-repetition and deterministic — `reproduce` gates them exactly.
pub fn run_churn(
    choice: BackendChoice,
    objects: usize,
    rounds: u32,
    private_iters: u32,
) -> ChurnRun {
    assert!(objects >= 1 && rounds >= 1 && private_iters >= 1);
    let mut counters = (0u64, 0u64, 0usize, 0usize);
    let samples: Vec<f64> = (0..DEFAULT_REPS)
        .map(|_| {
            let locks = choice.build(objects);
            let objs: Vec<ObjRef> = (0..objects)
                .map(|_| locks.heap().alloc().expect("heap sized for churn set"))
                .collect();
            let reg = locks.registry().register().expect("registry has room");
            let t = reg.token();
            let mut busy = Duration::ZERO;
            for round in 0..rounds {
                let obj = objs[round as usize % objects];
                locks.lock(obj, t).expect("burst lock");
                locks
                    .wait(obj, t, Some(Duration::from_micros(1)))
                    .expect("timed wait");
                locks.unlock(obj, t).expect("burst unlock");
                let start = Instant::now();
                for _ in 0..private_iters {
                    locks.lock(obj, t).expect("private lock");
                    locks.unlock(obj, t).expect("private unlock");
                }
                busy += start.elapsed();
            }
            counters = (
                locks.inflation_count(),
                locks.deflation_count(),
                locks.monitors_live(),
                locks.monitors_peak(),
            );
            busy.as_nanos() as f64 / (u64::from(rounds) * u64::from(private_iters)) as f64
        })
        .collect();
    let ns_per_op = samples.iter().copied().fold(f64::INFINITY, f64::min);
    ChurnRun {
        backend: choice,
        objects,
        rounds,
        ns_per_op,
        samples,
        inflations: counters.0,
        deflations: counters.1,
        monitors_live: counters.2,
        monitors_peak: counters.3,
    }
}

/// Threads the fairness workload contends with — the "≥ 8 threads"
/// regime where FIFO admission visibly beats unfair spinning.
pub const FAIRNESS_THREADS: usize = 8;

/// Acquisitions the fairness workload hands out per repetition.
pub const FAIRNESS_ACQUISITIONS: u64 = 1_600;

/// Jain's fairness index over per-thread acquisition counts:
/// `(Σx)² / (n · Σx²)`. Ranges from `1/n` (one thread took everything)
/// to `1.0` (perfectly even split); an all-zero slice is defined as
/// `1.0` (nobody was treated worse than anybody else).
///
/// ```
/// use thinlock_bench::jain_index;
///
/// assert_eq!(jain_index(&[100, 100, 100, 100]), 1.0);
/// assert_eq!(jain_index(&[400, 0, 0, 0]), 0.25);   // 1/n: total capture
/// assert!(jain_index(&[300, 50, 25, 25]) < 0.6);
/// ```
///
/// # Panics
///
/// Panics on an empty slice.
pub fn jain_index(counts: &[u64]) -> f64 {
    assert!(!counts.is_empty(), "jain_index needs at least one count");
    let n = counts.len() as f64;
    let sum: f64 = counts.iter().map(|&c| c as f64).sum();
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

/// Nearest-rank percentile of an ascending-sorted sample slice.
/// `p` is in percent (`50.0` is the median).
///
/// ```
/// use thinlock_bench::percentile;
///
/// let sorted: Vec<f64> = (1..=100).map(f64::from).collect();
/// assert_eq!(percentile(&sorted, 50.0), 50.0);
/// assert_eq!(percentile(&sorted, 95.0), 95.0);
/// assert_eq!(percentile(&sorted, 99.0), 99.0);
/// assert_eq!(percentile(&sorted, 100.0), 100.0);
/// ```
///
/// # Panics
///
/// Panics on an empty slice or `p` outside `(0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile needs at least one sample");
    assert!(p > 0.0 && p <= 100.0, "percentile wants 0 < p <= 100");
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Result of one fairness run. See [`run_fairness`].
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessRun {
    /// Backend measured.
    pub backend: BackendChoice,
    /// Contending threads.
    pub threads: usize,
    /// Acquisitions handed out per repetition.
    pub acquisitions: u64,
    /// Median per-repetition Jain index — the headline fairness number.
    pub jain: f64,
    /// Per-repetition Jain indices, ascending.
    pub jain_samples: Vec<f64>,
    /// Per-thread acquisition counts of the median-Jain repetition.
    pub per_thread: Vec<u64>,
    /// Median lock-acquisition (hand-off) latency in ns, pooled over
    /// every repetition.
    pub handoff_p50: f64,
    /// 95th-percentile hand-off latency in ns.
    pub handoff_p95: f64,
    /// 99th-percentile hand-off latency in ns — the tail a starved
    /// thread actually experiences.
    pub handoff_p99: f64,
}

/// The fairness workload: `threads` contenders race over one shared
/// object for a fixed pool of `acquisitions`, claimed one per critical
/// section from a counter that only the lock holder touches. The
/// holder yields once inside the critical section — a stand-in for
/// real guarded work, and on a single-CPU host the only thing that
/// lets contenders arrive at all (without it the first scheduled
/// thread drains the whole pool inside one timeslice, under *every*
/// backend).
///
/// The shared pool is what makes admission order *visible*: under a
/// barging acquirer (thin's releaser immediately re-CASes the word it
/// just released and almost always wins) one thread drains most of the
/// pool while the others starve, so its per-thread counts are skewed
/// and the Jain index sinks toward `1/threads`. Under FIFO ticket
/// admission (hapax always, fissile once contention fissions the word)
/// every contender gets served in arrival order and the counts come
/// out nearly even. Per-acquisition `lock()` wall times are pooled
/// across repetitions into hand-off latency percentiles — FIFO trades
/// a longer median hand-off for a bounded tail.
///
/// Each repetition runs on a freshly built backend (the [`run_churn`]
/// discipline); the headline Jain index is the median repetition's.
pub fn run_fairness(choice: BackendChoice, threads: usize, acquisitions: u64) -> FairnessRun {
    assert!(threads >= 1 && acquisitions >= 1);
    let mut reps: Vec<(f64, Vec<u64>)> = Vec::with_capacity(DEFAULT_REPS);
    let mut latencies: Vec<f64> = Vec::new();
    for _ in 0..DEFAULT_REPS {
        let locks = choice.build(2);
        let obj = locks.heap().alloc().expect("heap has room");
        let (counts, lat) = fairness_rep(&locks, obj, threads, acquisitions);
        latencies.extend(lat);
        reps.push((jain_index(&counts), counts));
    }
    reps.sort_by(|a, b| a.0.total_cmp(&b.0));
    let jain_samples: Vec<f64> = reps.iter().map(|r| r.0).collect();
    let (jain, per_thread) = reps.swap_remove(reps.len() / 2);
    latencies.sort_by(f64::total_cmp);
    FairnessRun {
        backend: choice,
        threads,
        acquisitions,
        jain,
        jain_samples,
        per_thread,
        handoff_p50: percentile(&latencies, 50.0),
        handoff_p95: percentile(&latencies, 95.0),
        handoff_p99: percentile(&latencies, 99.0),
    }
}

/// One repetition of the fairness workload on a caller-supplied backend
/// instance and object: returns the per-thread acquisition counts and
/// every per-acquisition `lock()` wall time in ns, in no particular
/// order across threads. [`run_fairness`] wraps this in fresh-instance
/// repetitions; the adaptive pipeline calls it directly — once to
/// record a contention profile on a traced [`AdaptiveLocks`] instance,
/// and again after [`apply_plan`] to re-measure the pinned object.
pub fn fairness_rep(
    locks: &Arc<dyn SyncBackend + Send + Sync>,
    obj: ObjRef,
    threads: usize,
    acquisitions: u64,
) -> (Vec<u64>, Vec<f64>) {
    use std::sync::atomic::{AtomicU64, Ordering};

    assert!(threads >= 1 && acquisitions >= 1);
    // Only ever read or written while holding `obj`'s lock; the atomic
    // type is for cross-thread visibility, not contention.
    let remaining = AtomicU64::new(acquisitions);
    let barrier = std::sync::Barrier::new(threads);
    let mut counts = vec![0u64; threads];
    let mut latencies = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let remaining = &remaining;
                let barrier = &barrier;
                scope.spawn(move || {
                    let reg = locks.registry().register().expect("registry has room");
                    let t = reg.token();
                    let mut mine = 0u64;
                    let mut lat = Vec::new();
                    barrier.wait();
                    loop {
                        let start = Instant::now();
                        locks.lock(obj, t).expect("fairness lock");
                        lat.push(start.elapsed().as_nanos() as f64);
                        let left = remaining.load(Ordering::Relaxed);
                        if left == 0 {
                            locks.unlock(obj, t).expect("fairness unlock");
                            break;
                        }
                        remaining.store(left - 1, Ordering::Relaxed);
                        mine += 1;
                        std::thread::yield_now();
                        locks.unlock(obj, t).expect("fairness unlock");
                    }
                    (mine, lat)
                })
            })
            .collect();
        for (slot, handle) in counts.iter_mut().zip(handles) {
            let (mine, lat) = handle.join().expect("fairness worker");
            *slot = mine;
            latencies.extend(lat);
        }
    });
    (counts, latencies)
}

/// A per-object strategy plan for the adaptive backend: which objects a
/// contention profile says should rest in FIFO mode. See
/// [`plan_from_profile`] and [`apply_plan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptivePlan {
    /// Objects to pin into FIFO admission.
    pub pin: Vec<ObjRef>,
    /// Contended-acquisition threshold the plan was derived with.
    pub threshold: u64,
}

/// Derives an [`AdaptivePlan`] from an observed contention profile: an
/// object is pinned when the profile attributes it at least `threshold`
/// contended acquisitions (spun-on thin acquisitions plus contended fat
/// acquisitions). This is the profile → policy half the core crate
/// deliberately leaves to its consumers (it sits below `thinlock-obs`
/// in the dependency order); the mechanism half is
/// [`AdaptiveLocks::pin_fifo`].
pub fn plan_from_profile(
    profile: &thinlock_obs::ContentionProfile,
    threshold: u64,
) -> AdaptivePlan {
    assert!(threshold >= 1, "a zero threshold would pin every object");
    AdaptivePlan {
        pin: profile
            .objects
            .iter()
            .filter(|o| o.acquire_contended_thin + o.acquire_fat_contended >= threshold)
            .map(|o| o.obj)
            .collect(),
        threshold,
    }
}

/// Applies an [`AdaptivePlan`]: pins every object the plan names and
/// releases any existing pin the plan dropped, so re-planning from a
/// fresh profile converges instead of accumulating stale pins.
///
/// ```
/// use thinlock::AdaptiveLocks;
/// use thinlock_bench::{apply_plan, AdaptivePlan};
/// use thinlock_runtime::protocol::SyncProtocol;
///
/// let locks = AdaptiveLocks::with_capacity(4);
/// let hot = locks.heap().alloc()?;
/// apply_plan(&locks, &AdaptivePlan { pin: vec![hot], threshold: 1 });
/// assert!(locks.pinned(hot));
/// // A later profile disagrees: the stale pin is released.
/// apply_plan(&locks, &AdaptivePlan { pin: vec![], threshold: 1 });
/// assert!(!locks.pinned(hot));
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub fn apply_plan(locks: &AdaptiveLocks, plan: &AdaptivePlan) {
    for index in 0..locks.heap().capacity() {
        let obj = ObjRef::from_index(index);
        if locks.pinned(obj) && !plan.pin.contains(&obj) {
            locks.release_fifo(obj);
        }
    }
    for &obj in &plan.pin {
        locks.pin_fifo(obj);
    }
}

/// One row of the nest-count-width ablation: for each candidate width,
/// the worst-case fraction of lock operations (over all Table 1 traces)
/// that would overflow and force an inflation.
pub fn count_width_ablation(config: &TraceConfig) -> Vec<(u32, f64)> {
    let rows = macro_rows(config);
    (1..=8)
        .map(|bits| {
            let worst = rows
                .iter()
                .map(|(_, c)| c.overflow_fraction(bits))
                .fold(0.0f64, f64::max);
            (bits, worst)
        })
        .collect()
}

/// Times the contended `Threads 2` workload under each spin policy —
/// the ablation of the paper's open "standard back-off techniques" choice.
pub fn spin_policy_ablation(iters: i32) -> Vec<(&'static str, Duration)> {
    use thinlock_runtime::backoff::SpinPolicy;
    let policies = [
        ("spin-then-yield", SpinPolicy::SpinThenYield),
        ("yield-only", SpinPolicy::YieldOnly),
        ("spin-hard", SpinPolicy::SpinHard),
    ];
    policies
        .iter()
        .map(|&(name, policy)| {
            let r = run_threads_on(
                || {
                    ThinLocks::with_config(
                        Arc::new(Heap::with_capacity_and_fields(2, 1)),
                        ThreadRegistry::new(),
                        DynamicConfig::default().with_spin_policy(policy),
                    )
                },
                2,
                iters,
            );
            (name, r)
        })
        .collect()
}

/// Times `threads` concurrent `Sync` loops, min-of-3 repetitions with a
/// freshly built protocol instance each (see [`run_micro_sampled`]).
fn run_threads_on<P: SyncProtocol>(
    make_protocol: impl Fn() -> P,
    threads: u32,
    iters: i32,
) -> Duration {
    let bench = MicroBench::Threads(threads);
    let program = bench.program();
    (0..3)
        .map(|_| {
            let protocol = make_protocol();
            let pool = vec![protocol.heap().alloc().expect("heap has room")];
            let start = Instant::now();
            std::thread::scope(|scope| {
                for _ in 0..threads.max(1) {
                    let protocol = &protocol;
                    let program = &program;
                    let pool = pool.clone();
                    scope.spawn(move || {
                        let registration = protocol.registry().register().expect("registry");
                        let vm = Vm::new(protocol, program, pool).expect("program valid");
                        vm.run("main", registration.token(), &[Value::Int(iters)])
                            .expect("clean run");
                    });
                }
            });
            start.elapsed()
        })
        .min()
        .expect("three repetitions")
}

/// One row of the concurrent macro replay: per-protocol wall time for a
/// multithreaded Table 1 workload. See
/// [`thinlock_trace::concurrent`].
pub fn concurrent_macro(
    profile: &BenchmarkProfile,
    config: &thinlock_trace::concurrent::ConcurrentConfig,
) -> SyncResult<Vec<(&'static str, Duration, bool)>> {
    let trace = thinlock_trace::concurrent::generate_concurrent(profile, config);
    ProtocolKind::ALL_BACKENDS
        .iter()
        .map(|&kind| {
            // Min-of-3 fresh-heap replays, like `run_macro`: a single
            // concurrent replay is one scheduler roll of the dice, far
            // too jittery to gate. Exclusion must hold on every replay,
            // not just the fastest.
            let mut best: Option<Duration> = None;
            let mut verified = true;
            for _ in 0..3 {
                let protocol = kind.build(trace.total_objects() as usize, 0);
                let out = thinlock_trace::concurrent::replay_concurrent(&*protocol, &trace)?;
                verified &= out.exclusion_verified;
                best = Some(best.map_or(out.elapsed, |b| b.min(out.elapsed)));
            }
            Ok((kind.name(), best.expect("three replays"), verified))
        })
        .collect()
}

/// Everything the profiling corpus produced: the aggregated contention
/// profile plus the statistics counters of the same run, so callers can
/// cross-check that the event stream attributes every inflation the
/// counters saw.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Per-object contention profile built from the merged event rings.
    pub profile: thinlock_obs::ContentionProfile,
    /// The run's scenario counters (same run, same protocol instance).
    pub stats: thinlock_runtime::stats::StatsSnapshot,
}

impl ProfiledRun {
    /// True if the event stream attributes exactly the inflations the
    /// statistics counters recorded, cause by cause — the acceptance
    /// check of the `reproduce profile` section.
    pub fn attribution_consistent(&self) -> bool {
        self.profile.inflations_by_cause() == self.stats.inflations
    }
}

/// Runs the profiling corpus: a deterministic workload that exercises
/// every locking scenario and every
/// [`InflationCause`](thinlock_runtime::stats::InflationCause) while a
/// `LockTracer` records the event stream.
///
/// The corpus phases:
///
/// 1. a hot uncontended lock/unlock loop (scenario 1 dominates, as in
///    the paper's Table 1 median),
/// 2. shallow nesting (depths 2–3),
/// 3. deep nesting past the 8-bit count — a `CountOverflow` inflation,
/// 4. two-thread contention on a thin-held lock — a `Contention`
///    inflation after spinning,
/// 5. wait/notify — a `WaitNotify` inflation,
/// 6. a static pre-inflation hint — a `Hint` inflation,
/// 7. the escape analysis running over the `Sync` micro-benchmark,
///    with each provably-elidable operation recorded as an
///    `ElisionHit` through the generic
///    [`SyncProtocol::trace_sink`] seam.
///
/// # Panics
///
/// Panics if any corpus phase fails to drive the protocol into the
/// intended state (these are the same guarantees the unit tests assert).
pub fn run_profile_corpus(config: thinlock_obs::TracerConfig) -> ProfiledRun {
    use thinlock_obs::{ContentionProfile, LockTracer};
    use thinlock_runtime::events::{TraceEventKind, TraceSink};
    use thinlock_runtime::stats::LockStats;

    let tracer = Arc::new(LockTracer::new(config));
    let stats = Arc::new(LockStats::new());
    let protocol = ThinLocks::with_capacity(8)
        .with_stats(Arc::clone(&stats))
        .with_trace_sink(Arc::clone(&tracer) as Arc<dyn TraceSink>);

    let reg = protocol.registry().register().expect("registry has room");
    let t = reg.token();

    // Phase 1: hot uncontended loop (scenario 1).
    let hot = protocol.heap().alloc().expect("heap has room");
    for _ in 0..1_000 {
        protocol.lock(hot, t).expect("lock");
        protocol.unlock(hot, t).expect("unlock");
    }

    // Phase 2: shallow nesting.
    let nested = protocol.heap().alloc().expect("heap has room");
    for _ in 0..3 {
        protocol.lock(nested, t).expect("lock");
    }
    for _ in 0..3 {
        protocol.unlock(nested, t).expect("unlock");
    }

    // Phase 3: nest past the 8-bit count — CountOverflow inflation.
    let deep = protocol.heap().alloc().expect("heap has room");
    for _ in 0..257 {
        protocol.lock(deep, t).expect("lock");
    }
    for _ in 0..257 {
        protocol.unlock(deep, t).expect("unlock");
    }
    assert!(protocol.lock_word(deep).is_fat(), "overflow inflated");

    // Phase 4: contention — the owner holds across a barrier so the
    // contender is guaranteed to spin on a thin-held lock and inflate.
    let contended = protocol.heap().alloc().expect("heap has room");
    let barrier = std::sync::Barrier::new(2);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let reg = protocol.registry().register().expect("registry");
            let t = reg.token();
            protocol.lock(contended, t).expect("lock");
            barrier.wait();
            std::thread::sleep(Duration::from_millis(10));
            protocol.unlock(contended, t).expect("unlock");
        });
        barrier.wait();
        protocol.lock(contended, t).expect("contended lock");
        protocol.unlock(contended, t).expect("unlock");
    });
    assert!(
        protocol.lock_word(contended).is_fat(),
        "contention inflated"
    );

    // Phase 5: wait/notify — inflates with WaitNotify.
    let shared = protocol.heap().alloc().expect("heap has room");
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let reg = protocol.registry().register().expect("registry");
            let t = reg.token();
            protocol.lock(shared, t).expect("lock");
            let out = protocol.wait(shared, t, None).expect("wait");
            assert_eq!(out, WaitOutcome::Notified);
            protocol.unlock(shared, t).expect("unlock");
        });
        while !protocol.lock_word(shared).is_fat() {
            std::thread::yield_now();
        }
        protocol.lock(shared, t).expect("lock");
        protocol.notify(shared, t).expect("notify");
        protocol.unlock(shared, t).expect("unlock");
    });

    // Phase 6: static pre-inflation hint.
    let hinted = protocol.heap().alloc().expect("heap has room");
    assert!(protocol.pre_inflate_hint(hinted), "hint applies");

    // Phase 7: the escape analysis proves the single-threaded Sync
    // micro-benchmark's operations elidable; credit each one as an
    // ElisionHit through the protocol-generic trace seam.
    let program = MicroBench::Sync.program();
    let ctx = thinlock_analysis::escape::EscapeContext::single_threaded();
    let report = thinlock_analysis::analyze_program(&program, &ctx);
    if let Some(sink) = protocol.trace_sink() {
        for _ in &report.escape.elidable_ops {
            sink.record(None, None, TraceEventKind::ElisionHit);
        }
    }

    ProfiledRun {
        profile: ContentionProfile::build(&tracer.snapshot()),
        stats: stats.snapshot(),
    }
}

/// A protocol whose lock operations do nothing — Figure 6's "NOP" case,
/// measuring pure bytecode overhead of the synchronization instructions.
#[derive(Debug)]
pub struct NullProtocol {
    heap: Arc<Heap>,
    registry: ThreadRegistry,
}

impl NullProtocol {
    /// Creates a no-op protocol over a fresh heap.
    pub fn new(heap_capacity: usize) -> Self {
        NullProtocol {
            heap: Arc::new(Heap::with_capacity_and_fields(heap_capacity, 1)),
            registry: ThreadRegistry::new(),
        }
    }
}

impl SyncProtocol for NullProtocol {
    fn lock(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
        Ok(())
    }
    fn unlock(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
        Ok(())
    }
    fn wait(
        &self,
        _obj: ObjRef,
        _t: ThreadToken,
        _timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        Ok(WaitOutcome::TimedOut)
    }
    fn notify(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
        Ok(())
    }
    fn notify_all(&self, _obj: ObjRef, _t: ThreadToken) -> SyncResult<()> {
        Ok(())
    }
    fn holds_lock(&self, _obj: ObjRef, _t: ThreadToken) -> bool {
        false
    }
    fn heap(&self) -> &Heap {
        &self.heap
    }
    fn registry(&self) -> &ThreadRegistry {
        &self.registry
    }
    fn name(&self) -> &'static str {
        "NOP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_trace_config() -> TraceConfig {
        TraceConfig {
            scale: 100_000,
            seed: 7,
            max_objects: 500,
            max_lock_ops: 1_000,
            skew: 0.8,
            work_per_sync: 10,
            work_per_alloc: 20,
        }
    }

    #[test]
    fn protocol_kinds_build_and_name() {
        for kind in ProtocolKind::ALL {
            let p = kind.build(4, 1);
            assert_eq!(p.name(), kind.name());
            assert_eq!(p.heap().capacity(), 4);
        }
    }

    #[test]
    fn micro_benchmarks_run_under_every_protocol() {
        for kind in ProtocolKind::ALL {
            for bench in [MicroBench::NoSync, MicroBench::Sync, MicroBench::NestedSync] {
                let r = run_micro(kind, bench, 50);
                assert_eq!(r.iters, 50);
                assert!(r.ns_per_iter() > 0.0, "{kind} {bench}");
            }
        }
    }

    #[test]
    fn threads_benchmark_runs() {
        let r = run_micro_threads(ProtocolKind::ThinLock, 2, 100);
        assert_eq!(r.iters, 200);
        assert!(r.elapsed > Duration::ZERO);
    }

    #[test]
    fn all_variants_run() {
        for v in Variant::ALL {
            let r = run_variant(v, MicroBench::Sync, 50);
            assert_eq!(r.implementation, v.name());
        }
    }

    #[test]
    fn macro_row_speedups() {
        let row = MacroRow {
            name: "x",
            thin: Duration::from_millis(10),
            jdk111: Duration::from_millis(20),
            ibm112: Duration::from_millis(25),
            lock_ops: 1,
        };
        assert!((row.speedup_thin() - 2.0).abs() < 1e-9);
        assert!((row.speedup_ibm112() - 0.8).abs() < 1e-9);
        assert!(row.to_string().contains("speedup"));
    }

    #[test]
    fn macro_harness_runs_one_benchmark() {
        let cfg = tiny_trace_config();
        let p = BenchmarkProfile::by_name("javacup").unwrap();
        for kind in ProtocolKind::ALL {
            let t = run_macro(kind, p, &cfg).unwrap();
            assert!(t > Duration::ZERO);
        }
    }

    #[test]
    fn table1_and_fig3_rows_cover_all_benchmarks() {
        let cfg = tiny_trace_config();
        let rows = macro_rows(&cfg);
        assert_eq!(rows.len(), 18);
        let f3 = figure3_rows(&cfg);
        assert_eq!(f3.len(), 18);
        for (name, fr) in f3 {
            let sum: f64 = fr.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{name}: fractions sum to 1");
        }
    }

    #[test]
    fn null_protocol_is_a_noop() {
        let p = NullProtocol::new(2);
        let reg = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, reg.token()).unwrap();
        assert!(!p.holds_lock(obj, reg.token()));
        p.unlock(obj, reg.token()).unwrap();
        assert_eq!(p.name(), "NOP");
    }

    #[test]
    fn phased_ablation_shows_deflation_benefit() {
        let r = phased_ablation(2_000);
        assert_eq!(r.tasuki_deflations, 1);
        assert_eq!(r.tasuki_inflations, 1);
        assert!(
            r.private_phase_speedup() > 1.0,
            "deflated private phase must be faster: {r:?}"
        );
    }

    #[test]
    fn churn_population_separates_thin_from_cjm() {
        let thin = run_churn(BackendChoice::Thin, 4, 12, 50);
        assert_eq!(
            thin.monitors_live, 4,
            "one-way inflation keeps every monitor"
        );
        assert_eq!(thin.monitors_peak, 4);
        assert_eq!(
            thin.inflations, 4,
            "each object inflates once, then stays fat"
        );
        assert_eq!(thin.deflations, 0);

        let cjm = run_churn(BackendChoice::Cjm, 4, 12, 50);
        assert_eq!(cjm.monitors_live, 0, "every burst deflates back to neutral");
        assert_eq!(
            cjm.monitors_peak, 1,
            "sequential bursts never stack monitors"
        );
        assert_eq!(cjm.inflations, 12, "every round re-inflates");
        assert_eq!(cjm.deflations, 12);
        assert!(cjm.ns_per_op > 0.0 && thin.ns_per_op > 0.0);
    }

    #[test]
    fn count_width_ablation_confirms_paper_claim() {
        let rows = count_width_ablation(&tiny_trace_config());
        let at = |bits: u32| rows.iter().find(|&&(b, _)| b == bits).unwrap().1;
        assert!(at(1) > 0.0, "1 bit overflows somewhere");
        assert_eq!(at(2), 0.0, "2 bits never overflow (nesting <= 4)");
        assert_eq!(at(8), 0.0);
    }

    #[test]
    fn spin_policies_all_complete() {
        for (name, t) in spin_policy_ablation(200) {
            assert!(t > Duration::ZERO, "{name}");
        }
    }

    #[test]
    fn concurrent_macro_verifies_exclusion() {
        let profile = BenchmarkProfile::by_name("javac").unwrap();
        let cfg = thinlock_trace::concurrent::ConcurrentConfig {
            threads: 2,
            shared_fraction: 0.3,
            base: tiny_trace_config(),
        };
        for (name, elapsed, ok) in concurrent_macro(profile, &cfg).unwrap() {
            assert!(ok, "{name}: exclusion violated");
            assert!(elapsed > Duration::ZERO);
        }
    }

    #[test]
    fn jain_index_on_synthetic_counts() {
        assert_eq!(jain_index(&[1, 1, 1, 1]), 1.0);
        assert_eq!(jain_index(&[4, 0, 0, 0]), 0.25);
        assert_eq!(jain_index(&[0, 0]), 1.0, "all-zero is defined as even");
        let skewed = jain_index(&[100, 10, 10, 10]);
        assert!(skewed > 0.25 && skewed < 1.0, "{skewed}");
        // Scale invariance: only the shape of the split matters.
        assert!((jain_index(&[3, 1]) - jain_index(&[300, 100])).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&sorted, 25.0), 10.0);
        assert_eq!(percentile(&sorted, 50.0), 20.0);
        assert_eq!(percentile(&sorted, 51.0), 30.0);
        assert_eq!(percentile(&sorted, 99.0), 40.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn fairness_run_conserves_the_acquisition_pool() {
        for choice in [BackendChoice::Hapax, BackendChoice::Fissile] {
            let r = run_fairness(choice, 4, 64);
            assert_eq!(r.per_thread.iter().sum::<u64>(), 64, "{choice:?}");
            assert_eq!(r.per_thread.len(), 4);
            assert_eq!(r.jain_samples.len(), DEFAULT_REPS);
            assert!(r.jain > 0.0 && r.jain <= 1.0, "{choice:?}: {}", r.jain);
            assert!(r.handoff_p50 <= r.handoff_p95 && r.handoff_p95 <= r.handoff_p99);
        }
    }

    #[test]
    fn plan_pins_only_contended_objects() {
        use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};
        use thinlock_runtime::events::TraceSink;

        let tracer = Arc::new(LockTracer::new(TracerConfig {
            max_threads: 8,
            ring_capacity: 4096,
        }));
        let locks = AdaptiveLocks::with_capacity(4)
            .with_trace_sink(Arc::clone(&tracer) as Arc<dyn TraceSink>);
        let hot = locks.heap().alloc().unwrap();
        let cold = locks.heap().alloc().unwrap();

        // Contend on `hot` (owner holds across a barrier, so the second
        // thread's acquisition is recorded as contended); leave `cold`
        // uncontended.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let reg = locks.registry().register().unwrap();
                let t = reg.token();
                locks.lock(hot, t).unwrap();
                barrier.wait();
                std::thread::sleep(Duration::from_millis(5));
                locks.unlock(hot, t).unwrap();
            });
            let reg = locks.registry().register().unwrap();
            let t = reg.token();
            barrier.wait();
            locks.lock(hot, t).unwrap();
            locks.unlock(hot, t).unwrap();
            locks.lock(cold, t).unwrap();
            locks.unlock(cold, t).unwrap();
        });

        let profile = ContentionProfile::build(&tracer.snapshot());
        let plan = plan_from_profile(&profile, 1);
        assert!(plan.pin.contains(&hot), "contended object pinned: {plan:?}");
        assert!(
            !plan.pin.contains(&cold),
            "uncontended object left reactive"
        );

        apply_plan(&locks, &plan);
        assert!(locks.pinned(hot) && !locks.pinned(cold));
        // Re-planning with an empty plan releases the stale pin.
        apply_plan(
            &locks,
            &AdaptivePlan {
                pin: Vec::new(),
                threshold: 1,
            },
        );
        assert!(!locks.pinned(hot));
    }

    #[test]
    fn plan_threshold_boundary_is_inclusive() {
        use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};
        use thinlock_runtime::events::{TraceEventKind, TraceSink};

        let tracer = LockTracer::new(TracerConfig {
            max_threads: 2,
            ring_capacity: 4096,
        });
        let at = ObjRef::from_index(0);
        let under = ObjRef::from_index(1);
        // `at` lands exactly on the threshold, split across both
        // contended kinds to pin down the sum in the formula; `under`
        // stops one short.
        for _ in 0..7 {
            tracer.record(
                None,
                Some(at),
                TraceEventKind::AcquireContendedThin { spin_rounds: 1 },
            );
        }
        tracer.record(
            None,
            Some(at),
            TraceEventKind::AcquireFat { contended: true },
        );
        for _ in 0..7 {
            tracer.record(
                None,
                Some(under),
                TraceEventKind::AcquireContendedThin { spin_rounds: 1 },
            );
        }
        let profile = ContentionProfile::build(&tracer.snapshot());

        let plan = plan_from_profile(&profile, 8);
        assert_eq!(
            plan.pin,
            vec![at],
            "count == threshold pins; count == threshold - 1 does not"
        );
        // One notch up neither object qualifies.
        assert!(plan_from_profile(&profile, 9).pin.is_empty());
        // Uncontended fat acquisitions must not count toward the sum.
        tracer.record(
            None,
            Some(under),
            TraceEventKind::AcquireFat { contended: false },
        );
        let profile = ContentionProfile::build(&tracer.snapshot());
        assert_eq!(plan_from_profile(&profile, 8).pin, vec![at]);
    }

    #[test]
    fn plan_from_empty_profile_pins_nothing() {
        use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};

        let tracer = LockTracer::new(TracerConfig {
            max_threads: 2,
            ring_capacity: 64,
        });
        let profile = ContentionProfile::build(&tracer.snapshot());
        assert!(profile.objects.is_empty());
        assert!(plan_from_profile(&profile, 1).pin.is_empty());
    }

    #[test]
    fn single_thread_workload_never_pins() {
        use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};
        use thinlock_runtime::events::TraceSink;

        let tracer = Arc::new(LockTracer::new(TracerConfig {
            max_threads: 2,
            ring_capacity: 4096,
        }));
        let locks = AdaptiveLocks::with_capacity(2)
            .with_trace_sink(Arc::clone(&tracer) as Arc<dyn TraceSink>);
        let obj = locks.heap().alloc().unwrap();
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        for _ in 0..300 {
            locks.lock(obj, t).unwrap();
            locks.unlock(obj, t).unwrap();
        }
        let profile = ContentionProfile::build(&tracer.snapshot());
        // A single thread can never observe contention, so even the
        // loosest threshold must leave everything reactive.
        assert!(
            plan_from_profile(&profile, 1).pin.is_empty(),
            "single-thread workload produced a pin: {profile:?}"
        );
    }

    #[test]
    fn plan_formula_matches_static_dynamic_pins() {
        use thinlock_analysis::contention::dynamic_pins;
        use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};
        use thinlock_runtime::events::{TraceEventKind, TraceSink};

        let tracer = LockTracer::new(TracerConfig {
            max_threads: 2,
            ring_capacity: 4096,
        });
        for index in 0..4usize {
            let obj = ObjRef::from_index(index);
            for _ in 0..(index * 5) {
                tracer.record(
                    None,
                    Some(obj),
                    TraceEventKind::AcquireContendedThin { spin_rounds: 1 },
                );
            }
            tracer.record(
                None,
                Some(obj),
                TraceEventKind::AcquireFat { contended: true },
            );
        }
        let profile = ContentionProfile::build(&tracer.snapshot());
        // The analysis crate's agreement gate re-derives the dynamic pin
        // set with the same formula; any drift between the two would let
        // the static↔dynamic cross-check silently diverge from what the
        // bench pipeline actually applies.
        for threshold in [1, 2, 6, 11, 64] {
            assert_eq!(
                plan_from_profile(&profile, threshold).pin,
                dynamic_pins(&profile, threshold),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn static_plan_reproduces_pinned_fairness() {
        use thinlock_analysis::escape::EscapeContext;
        use thinlock_analysis::guards::EntryRole;

        // Statically infer the SyncPlan for the hot-object program — no
        // dynamic profiling anywhere in this test.
        let entry = thinlock_vm::programs::concurrent_library()
            .into_iter()
            .find(|e| e.name == "hot-object")
            .expect("hot-object is in the concurrent library");
        let ctx = EscapeContext::threads(entry.total_threads());
        let roles: Vec<EntryRole> = entry
            .roles
            .iter()
            .map(|r| EntryRole {
                name: r.method.to_string(),
                method: entry.program.method_id(r.method).unwrap(),
                threads: r.threads,
            })
            .collect();
        let report = thinlock_analysis::analyze_program_with_roles(&entry.program, &ctx, &roles);
        let plan = &report.contention.plan;
        assert!(
            plan.entry(0).is_some_and(|e| e.pin_fifo),
            "static pass pins the hot site: {plan:?}"
        );

        // Apply the static plan to a fresh adaptive backend and measure
        // fairness on the pinned object.
        let threads = entry.total_threads() as usize;
        let adaptive = Arc::new(AdaptiveLocks::with_capacity(
            entry.program.pool_size() as usize + 1,
        ));
        let pool: Vec<ObjRef> = (0..entry.program.pool_size())
            .map(|_| adaptive.heap().alloc().unwrap())
            .collect();
        for pin in plan.pin_pools() {
            adaptive.pin_fifo(pool[pin as usize]);
        }
        assert!(adaptive.pinned(pool[0]));

        let dyn_locks: Arc<dyn SyncBackend + Send + Sync> =
            Arc::clone(&adaptive) as Arc<dyn SyncBackend + Send + Sync>;
        // Best-of-3: the claim is about the FIFO mechanism the static
        // plan selected, not one scheduler roll.
        let jain = (0..3)
            .map(|_| {
                let (counts, _) = fairness_rep(&dyn_locks, pool[0], threads, 2_000);
                jain_index(&counts)
            })
            .fold(0.0, f64::max);
        assert!(
            jain >= 0.9,
            "statically pinned hot object should split evenly (Jain ≈ 1.0), got {jain:.3}"
        );
    }

    #[test]
    fn adaptive_backends_build_through_protocol_kind() {
        for kind in [ProtocolKind::Fissile, ProtocolKind::Hapax] {
            let p = kind.build(4, 0);
            assert_eq!(p.name(), kind.name());
            let reg = p.registry().register().unwrap();
            let obj = p.heap().alloc().unwrap();
            p.lock(obj, reg.token()).unwrap();
            p.unlock(obj, reg.token()).unwrap();
        }
    }

    #[test]
    fn tasuki_builds_through_protocol_kind() {
        let p = ProtocolKind::Tasuki.build(4, 0);
        assert_eq!(p.name(), "Tasuki");
        let reg = p.registry().register().unwrap();
        let obj = p.heap().alloc().unwrap();
        p.lock(obj, reg.token()).unwrap();
        p.unlock(obj, reg.token()).unwrap();
    }

    #[test]
    fn profile_corpus_attributes_every_inflation() {
        let run = run_profile_corpus(thinlock_obs::TracerConfig {
            max_threads: 16,
            ring_capacity: 4096,
        });
        assert!(
            run.attribution_consistent(),
            "stats {:?} vs traced {:?}",
            run.stats.inflations,
            run.profile.inflations_by_cause()
        );
        // One inflation of every cause, in stats and in the trace.
        assert_eq!(run.stats.inflations, [1, 1, 1, 1]);
        assert_eq!(run.profile.inflations.len(), 4);
        // Every traced inflation names its object.
        assert!(run.profile.inflations.iter().all(|i| i.obj.is_some()));
        // The corpus exercises elision hits and monitor allocations too.
        assert!(run.profile.elision_hits > 0);
        assert!(run.profile.monitors_allocated >= 4);
        assert_eq!(run.profile.dropped, 0, "rings sized for the corpus");
        // The hot object dominates the ranking.
        assert_eq!(run.profile.objects[0].acquire_unlocked, 1_000);
    }

    #[test]
    fn median_time_is_monotone_reasonable() {
        let d = median_time(3, || std::thread::sleep(Duration::from_millis(2)));
        assert!(d >= Duration::from_millis(1));
    }
}
