//! The reproduction report: every table and figure of the paper, printed
//! as text and recorded as machine-readable [`BenchReport`] telemetry.
//!
//! The `reproduce` binary is a thin CLI over [`run_sections`]; each
//! section function here both prints the same rows the paper presents
//! and pushes a [`BenchRecord`] per cell, so one run produces the
//! human-readable transcript *and* `BENCH_thinlock.json`. The record ids
//! are stable ([`expected_ids`] enumerates the full set) — `benchgate`
//! joins on them when diffing a run against the committed baseline.

use thinlock_trace::generator::TraceConfig;
use thinlock_trace::table1::median;
use thinlock_vm::programs::MicroBench;

use crate::benchjson::{BenchRecord, BenchReport, Direction, GateClass};
use crate::{
    figure3_rows, macro_rows, macro_speedups, run_micro, run_micro_sampled, run_micro_threads,
    run_variant_sampled, MicroResult, ProtocolKind, Variant,
};

/// Every section name `reproduce` accepts, in presentation order.
pub const SECTIONS: [&str; 13] = [
    "table1",
    "table2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablations",
    "churn",
    "fairness",
    "predict",
    "lockcheck",
    "lockmc",
    "profile",
];

/// The backends the `churn` section measures head-to-head when
/// `reproduce` runs without `--backend`.
pub const CHURN_BACKENDS: [thinlock::BackendChoice; 2] =
    [thinlock::BackendChoice::Thin, thinlock::BackendChoice::Cjm];

/// The backends the `fairness` section measures head-to-head when
/// `reproduce` runs without `--backend`: the barging baseline against
/// both FIFO-admission backends.
pub const FAIRNESS_BACKENDS: [thinlock::BackendChoice; 3] = [
    thinlock::BackendChoice::Thin,
    thinlock::BackendChoice::Fissile,
    thinlock::BackendChoice::Hapax,
];

/// The canonical trace configuration every reproduction run uses: a
/// fixed seed so trace-derived numbers are deterministic, scaled down by
/// `scale` from the paper's full workload sizes.
pub fn trace_config(scale: u64) -> TraceConfig {
    TraceConfig {
        scale,
        seed: 0x7e57_ab1e,
        max_objects: 50_000,
        max_lock_ops: 500_000,
        skew: 0.8,
        work_per_sync: thinlock_trace::generator::DEFAULT_WORK_PER_SYNC,
        work_per_alloc: thinlock_trace::generator::DEFAULT_WORK_PER_ALLOC,
    }
}

/// The MultiSync working-set sizes of the Figure 4 sweep.
pub const MULTISYNC_SIZES: [u32; 9] = [1, 8, 16, 32, 64, 128, 256, 512, 1024];

/// The thread counts of the Figure 4 contention sweep.
pub const THREAD_COUNTS: [u32; 5] = [1, 2, 4, 8, 16];

/// The single-object micro-benchmarks of Figure 4.
pub const FIG4_SINGLE: [MicroBench; 6] = [
    MicroBench::NoSync,
    MicroBench::Sync,
    MicroBench::NestedSync,
    MicroBench::Call,
    MicroBench::CallSync,
    MicroBench::NestedCallSync,
];

/// The micro-benchmarks Figure 6 exercises per variant.
pub const FIG6_BENCHES: [MicroBench; 4] = [
    MicroBench::Sync,
    MicroBench::NestedSync,
    MicroBench::MixedSync,
    MicroBench::CallSync,
];

const SPIN_POLICIES: [&str; 3] = ["spin-then-yield", "yield-only", "spin-hard"];
const CONCURRENT_BENCHES: [&str; 3] = ["javac", "jacorb", "javalex"];
const INFLATION_CAUSES: [&str; 4] = ["contention", "overflow", "wait", "hint"];

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn table1(cfg: &TraceConfig, out: &mut BenchReport) {
    heading("Table 1: macro-benchmark characterization (generated traces)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "program", "objects", "sync objs", "syncs", "syncs/obj", "paper s/o", "1st-lock%"
    );
    let mut ratios = Vec::new();
    for (p, c) in macro_rows(cfg) {
        ratios.push(c.syncs_per_object());
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10.1} {:>11.1} {:>9.0}%",
            p.name,
            c.objects_created,
            c.synchronized_objects,
            c.sync_operations,
            c.syncs_per_object(),
            p.syncs_per_object(),
            c.first_lock_fraction() * 100.0
        );
        out.push(BenchRecord::scalar(
            format!("table1/{}/syncs_per_object", p.name),
            "table1",
            None,
            "ratio",
            GateClass::Exact,
            Direction::Informational,
            c.syncs_per_object(),
        ));
    }
    let med = median(&mut ratios);
    println!("median syncs/object: {med:.1} (paper: 22.7)");
    out.push(BenchRecord::scalar(
        "table1/median_syncs_per_object",
        "table1",
        None,
        "ratio",
        GateClass::Exact,
        Direction::Informational,
        med,
    ));
}

fn table2() {
    heading("Table 2: micro-benchmarks");
    let rows = [
        ("NoSync", "No locking - reference benchmark"),
        ("Sync", "Initial lock with a synchronized() statement"),
        ("NestedSync", "Nested lock with a synchronized() statement"),
        (
            "MultiSync n",
            "Like Sync, but synchronizes n objects every iteration",
        ),
        (
            "Call",
            "Calls a non-synchronized method - reference benchmark",
        ),
        (
            "CallSync",
            "Calls a synchronized method to obtain an initial lock",
        ),
        (
            "NestedCallSync",
            "Calls a synchronized method to obtain a nested lock",
        ),
        (
            "Threads n",
            "Initial locking performed concurrently by n competing threads",
        ),
    ];
    for (name, desc) in rows {
        println!("{name:<16} {desc}");
    }
}

fn fig3(cfg: &TraceConfig, out: &mut BenchReport) {
    heading("Figure 3: depth of lock nesting by benchmark (generated traces)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "program", "first", "second", "third", "fourth"
    );
    let mut firsts = Vec::new();
    for (name, fr) in figure3_rows(cfg) {
        firsts.push(fr[0]);
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0
        );
        out.push(BenchRecord::scalar(
            format!("fig3/{name}/first_lock_fraction"),
            "fig3",
            None,
            "fraction",
            GateClass::Exact,
            Direction::Informational,
            fr[0],
        ));
    }
    let med = median(&mut firsts);
    println!(
        "median first-lock fraction: {:.0}% (paper: 80%; minimum observed must be >= ~45%)",
        med * 100.0
    );
    out.push(BenchRecord::scalar(
        "fig3/median_first_lock_fraction",
        "fig3",
        None,
        "fraction",
        GateClass::Exact,
        Direction::Informational,
        med,
    ));
}

fn print_micro(results: &[MicroResult]) {
    for r in results {
        println!("  {r}");
    }
}

fn fig4(iters: i32, out: &mut BenchReport) {
    heading("Figure 4: micro-benchmark performance (ns per iteration)");
    for &bench in &FIG4_SINGLE {
        let mut results = Vec::new();
        for &kind in &ProtocolKind::ALL {
            let (r, samples) = run_micro_sampled(kind, bench, iters);
            out.push(BenchRecord::timed(
                format!("fig4/{bench}/{}", kind.name()),
                "fig4",
                Some(kind.name()),
                "ns_per_iter",
                GateClass::Micro,
                &samples,
            ));
            results.push(r);
        }
        print_micro(&results);
        if bench == MicroBench::Sync {
            let thin = results[0].ns_per_iter();
            let jdk = results[1].ns_per_iter();
            let ibm = results[2].ns_per_iter();
            println!(
                "  -> Sync: ThinLock is {:.1}x faster than JDK111 (paper: 3.7x), {:.1}x faster than IBM112 (paper: 1.8x)",
                jdk / thin,
                ibm / thin
            );
            out.push(BenchRecord::scalar(
                "fig4/Sync/speedup_vs_JDK111",
                "fig4",
                Some("ThinLock"),
                "ratio",
                GateClass::Ratio,
                Direction::HigherIsBetter,
                jdk / thin,
            ));
            out.push(BenchRecord::scalar(
                "fig4/Sync/speedup_vs_IBM112",
                "fig4",
                Some("ThinLock"),
                "ratio",
                GateClass::Ratio,
                Direction::HigherIsBetter,
                ibm / thin,
            ));
        }
        println!();
    }

    println!("MultiSync working-set sweep (ns per object-sync):");
    let multi_iters = (iters / 50).max(100);
    for n in MULTISYNC_SIZES {
        print!("  n={n:<5}");
        for kind in ProtocolKind::ALL {
            let r = run_micro(kind, MicroBench::MultiSync(n), multi_iters);
            // Normalize per object-sync: each iteration performs n syncs.
            let per_sync = r.ns_per_iter() / f64::from(n);
            print!("  {}={:>8.1}", kind.name(), per_sync);
            out.push(BenchRecord::scalar(
                format!("fig4/multisync/n={n}/{}", kind.name()),
                "fig4",
                Some(kind.name()),
                "ns_per_object_sync",
                GateClass::Micro,
                Direction::LowerIsBetter,
                per_sync,
            ));
        }
        println!();
    }

    println!(
        "\nThreads sweep (total wall time, {} iters/thread):",
        iters / 10
    );
    for n in THREAD_COUNTS {
        print!("  threads={n:<3}");
        for kind in ProtocolKind::ALL {
            let r = run_micro_threads(kind, n, iters / 10);
            print!("  {}={:>9.2?}", kind.name(), r.elapsed);
            out.push(BenchRecord::scalar(
                format!("fig4/threads/n={n}/{}", kind.name()),
                "fig4",
                Some(kind.name()),
                "ns",
                GateClass::Macro,
                Direction::LowerIsBetter,
                r.elapsed.as_nanos() as f64,
            ));
        }
        println!();
    }
}

fn fig5(cfg: &TraceConfig, out: &mut BenchReport) {
    heading("Figure 5: macro-benchmark speedups over JDK111 (replayed traces)");
    match macro_speedups(cfg) {
        Ok(rows) => {
            let mut thin = Vec::new();
            let mut ibm = Vec::new();
            for row in &rows {
                println!("  {row}");
                thin.push(row.speedup_thin());
                ibm.push(row.speedup_ibm112());
                for (proto, elapsed) in [
                    ("ThinLock", row.thin),
                    ("JDK111", row.jdk111),
                    ("IBM112", row.ibm112),
                ] {
                    out.push(BenchRecord::scalar(
                        format!("fig5/{}/{proto}", row.name),
                        "fig5",
                        Some(proto),
                        "ns",
                        GateClass::Macro,
                        Direction::LowerIsBetter,
                        elapsed.as_nanos() as f64,
                    ));
                }
            }
            let max_thin = thin.iter().copied().fold(0.0f64, f64::max);
            let med_thin = median(&mut thin);
            let med_ibm = median(&mut ibm);
            println!(
                "median speedup: thin {med_thin:.2} (paper 1.22), ibm112 {med_ibm:.2} (paper 1.04); max thin {max_thin:.2} (paper 1.7)"
            );
            for (id, value) in [
                ("fig5/median_speedup_thin", med_thin),
                ("fig5/median_speedup_ibm112", med_ibm),
                ("fig5/max_speedup_thin", max_thin),
            ] {
                out.push(BenchRecord::scalar(
                    id,
                    "fig5",
                    None,
                    "ratio",
                    GateClass::Ratio,
                    Direction::HigherIsBetter,
                    value,
                ));
            }
        }
        Err(e) => println!("  replay failed: {e}"),
    }
}

fn fig6(iters: i32, out: &mut BenchReport) {
    heading("Figure 6: fast-path engineering tradeoffs (ns per iteration)");
    for bench in FIG6_BENCHES {
        for v in Variant::ALL {
            let (r, samples) = run_variant_sampled(v, bench, iters);
            println!("  {r}");
            out.push(BenchRecord::timed(
                format!("fig6/{bench}/{}", v.name()),
                "fig6",
                Some(v.name()),
                "ns_per_iter",
                GateClass::Micro,
                &samples,
            ));
        }
        println!();
    }
}

/// The monitor-churn head-to-head (BACKENDS.md): alternating
/// wait-induced inflation bursts and private phases, where one-way
/// inflation pays the monitor price forever and a deflating backend
/// recovers thin-word speed. The population counters are deterministic
/// (gated exactly); the per-op time is a micro cell.
fn churn(iters: i32, backends: &[thinlock::BackendChoice], out: &mut BenchReport) {
    heading("churn: repeated inflate/deflate cycles (monitor population and private-phase cost)");
    let private_iters = (iters / 100).max(200) as u32;
    println!(
        "{} objects x {} rounds, {} private lock/unlock pairs per round:",
        crate::CHURN_OBJECTS,
        crate::CHURN_ROUNDS,
        private_iters
    );
    let mut per_op = Vec::new();
    for &choice in backends {
        let run = crate::run_churn(
            choice,
            crate::CHURN_OBJECTS,
            crate::CHURN_ROUNDS,
            private_iters,
        );
        println!(
            "  {:<7} {:>8.1} ns/op private | {:>4} inflations {:>4} deflations | monitors: peak {} live {}",
            choice.name(),
            run.ns_per_op,
            run.inflations,
            run.deflations,
            run.monitors_peak,
            run.monitors_live
        );
        per_op.push((choice, run.ns_per_op));
        out.push(BenchRecord::timed(
            format!("churn/{choice}/ns_per_op"),
            "churn",
            Some(choice.name()),
            "ns_per_op",
            GateClass::Micro,
            &run.samples,
        ));
        out.push(BenchRecord::scalar(
            format!("churn/{choice}/monitors_live"),
            "churn",
            Some(choice.name()),
            "count",
            GateClass::Exact,
            Direction::LowerIsBetter,
            run.monitors_live as f64,
        ));
        out.push(BenchRecord::scalar(
            format!("churn/{choice}/inflations"),
            "churn",
            Some(choice.name()),
            "count",
            GateClass::Exact,
            Direction::Informational,
            run.inflations as f64,
        ));
        if choice.deflation_capable() {
            out.push(BenchRecord::scalar(
                format!("churn/{choice}/monitors_peak"),
                "churn",
                Some(choice.name()),
                "count",
                GateClass::Exact,
                Direction::LowerIsBetter,
                run.monitors_peak as f64,
            ));
            out.push(BenchRecord::scalar(
                format!("churn/{choice}/deflations"),
                "churn",
                Some(choice.name()),
                "count",
                GateClass::Exact,
                Direction::Informational,
                run.deflations as f64,
            ));
        }
    }
    if let (Some(&(_, thin_ns)), Some(&(_, cjm_ns))) = (
        per_op
            .iter()
            .find(|(c, _)| *c == thinlock::BackendChoice::Thin),
        per_op
            .iter()
            .find(|(c, _)| *c == thinlock::BackendChoice::Cjm),
    ) {
        println!(
            "  -> private phase after a burst: cjm runs {:.1}x the thin-word speed of a \
             permanently fat lock (higher is better for deflation)",
            thin_ns / cjm_ns.max(f64::MIN_POSITIVE)
        );
    }
}

/// The fairness/tail head-to-head (BACKENDS.md): a shared acquisition
/// pool at [`crate::FAIRNESS_THREADS`] contenders, where thin's barging
/// lets a few threads capture the pool while FIFO ticket admission
/// splits it evenly. The Jain index is gated (higher is better) for the
/// backends that actually promise admission order
/// ([`thinlock::BackendChoice::fifo_admission`]); thin's index and the
/// hand-off latency percentiles are informational. Ends with the
/// adaptive pipeline demo: profile a traced burst, derive a pin plan,
/// apply it, re-measure.
fn fairness(iters: i32, backends: &[thinlock::BackendChoice], out: &mut BenchReport) {
    use std::sync::Arc;
    use thinlock_runtime::backend::SyncBackend;
    use thinlock_runtime::protocol::SyncProtocol;

    heading("fairness: per-thread acquisition split and hand-off tail under contention");
    let threads = crate::FAIRNESS_THREADS;
    let pool = (iters as u64).clamp(200, crate::FAIRNESS_ACQUISITIONS);
    println!("{threads} threads, one object, {pool} acquisitions per repetition:");
    let mut jains = Vec::new();
    for &choice in backends {
        let run = crate::run_fairness(choice, threads, pool);
        println!(
            "  {:<8} Jain {:.3} | hand-off ns p50 {:>10.0} p95 {:>10.0} p99 {:>10.0} | counts {:?}",
            choice.name(),
            run.jain,
            run.handoff_p50,
            run.handoff_p95,
            run.handoff_p99,
            run.per_thread
        );
        jains.push((choice, run.jain));
        out.push(BenchRecord::scalar(
            format!("fairness/t{threads}/{choice}/jain_index"),
            "fairness",
            Some(choice.name()),
            "ratio",
            GateClass::Ratio,
            if choice.fifo_admission() {
                Direction::HigherIsBetter
            } else {
                // A barging backend makes no admission-order promise:
                // its index is the contrast, not a gated quantity.
                Direction::Informational
            },
            run.jain,
        ));
        for (tail, value) in [
            ("handoff_p50", run.handoff_p50),
            ("handoff_p95", run.handoff_p95),
            ("handoff_p99", run.handoff_p99),
        ] {
            out.push(BenchRecord::scalar(
                format!("fairness/t{threads}/{choice}/{tail}"),
                "fairness",
                Some(choice.name()),
                "ns",
                GateClass::Micro,
                Direction::Informational,
                value,
            ));
        }
    }
    let fifo_floor = jains
        .iter()
        .filter(|(c, _)| c.fifo_admission())
        .map(|&(_, j)| j)
        .fold(f64::NAN, f64::min);
    if let Some(&(_, thin_jain)) = jains
        .iter()
        .find(|(c, _)| *c == thinlock::BackendChoice::Thin)
    {
        if !fifo_floor.is_nan() {
            println!(
                "  -> FIFO admission splits the pool at Jain {fifo_floor:.3} vs thin's barging \
                 {thin_jain:.3} (1.0 is a perfectly even split)"
            );
        }
    }

    // The adaptive pipeline, end to end: burst-load a traced instance,
    // derive the pin plan from its contention profile, apply it, and
    // re-measure the pinned object.
    let tracer = Arc::new(thinlock_obs::LockTracer::new(thinlock_obs::TracerConfig {
        max_threads: threads as u16 + 1,
        ring_capacity: 16_384,
    }));
    let adaptive = Arc::new(
        thinlock::AdaptiveLocks::with_capacity(4)
            .with_trace_sink(Arc::clone(&tracer) as Arc<dyn thinlock_runtime::events::TraceSink>),
    );
    let hot = adaptive.heap().alloc().expect("heap has room");
    let cold = adaptive.heap().alloc().expect("heap has room");
    let dyn_locks: Arc<dyn SyncBackend + Send + Sync> = Arc::clone(&adaptive) as _;
    crate::fairness_rep(&dyn_locks, hot, threads, pool / 4);
    {
        let reg = adaptive.registry().register().expect("registry has room");
        let t = reg.token();
        for _ in 0..8 {
            adaptive.lock(cold, t).expect("cold lock");
            adaptive.unlock(cold, t).expect("cold unlock");
        }
    }
    let profile = thinlock_obs::ContentionProfile::build(&tracer.snapshot());
    let plan = crate::plan_from_profile(&profile, (pool / 16).max(1));
    crate::apply_plan(&adaptive, &plan);
    assert!(
        adaptive.pinned(hot) && !adaptive.pinned(cold),
        "the burst-contended object (and only it) must be pinned: {plan:?}"
    );
    // Best-of-3 repetitions: the claim is about the pinned mechanism,
    // not one scheduler roll.
    let pinned_jain = (0..3)
        .map(|_| {
            let (counts, _) = crate::fairness_rep(&dyn_locks, hot, threads, pool / 4);
            crate::jain_index(&counts)
        })
        .fold(0.0, f64::max);
    println!(
        "  -> adaptive: profile pinned {} of {} traced objects; pinned-object Jain {pinned_jain:.3}",
        plan.pin.len(),
        profile.objects.len()
    );
    out.push(BenchRecord::scalar(
        "fairness/adaptive/pinned_objects",
        "fairness",
        Some("adaptive"),
        "count",
        GateClass::Exact,
        Direction::Informational,
        plan.pin.len() as f64,
    ));
    out.push(BenchRecord::scalar(
        "fairness/adaptive/pinned_jain",
        "fairness",
        Some("adaptive"),
        "ratio",
        GateClass::Ratio,
        Direction::HigherIsBetter,
        pinned_jain,
    ));
}

/// Section 3.4's consistency check: predict macro speedup from the
/// micro-benchmark per-call saving, then measure it. The paper does this
/// for javalex ("we can predict 2.7 seconds of speedup per 1 million
/// synchronized method invocations ... or 6.5 seconds" vs 6.6 measured).
fn predict(iters: i32, out: &mut BenchReport) {
    use thinlock_runtime::heap::ObjRef;
    use thinlock_vm::library::{javalex_expected, javalex_like, JAVALEX_SCAN_PASSES};
    use thinlock_vm::{Value, Vm};

    heading("Section 3.4 cross-check: micro-benchmarks predict the macro speedup");

    // Per-call saving from the CallSync micro-benchmark.
    let thin_micro = run_micro(ProtocolKind::ThinLock, MicroBench::CallSync, iters);
    let jdk_micro = run_micro(ProtocolKind::Jdk111, MicroBench::CallSync, iters);
    let saving_ns_per_call = jdk_micro.ns_per_iter() - thin_micro.ns_per_iter();
    println!(
        "CallSync: ThinLock {:.1} ns/call, JDK111 {:.1} ns/call -> saving {:.1} ns per synchronized call",
        thin_micro.ns_per_iter(),
        jdk_micro.ns_per_iter(),
        saving_ns_per_call
    );

    // The javalex-shaped workload's call count is known statically.
    let elements: i32 = 2_000;
    let calls = i64::from(1 + JAVALEX_SCAN_PASSES * 2) * i64::from(elements);
    let predicted =
        std::time::Duration::from_nanos((saving_ns_per_call.max(0.0) * calls as f64) as u64);

    let program = javalex_like();
    let measure = |kind: ProtocolKind| {
        let protocol = kind.build(2, elements as usize + 1);
        let pool: Vec<ObjRef> = vec![protocol.heap().alloc().expect("alloc")];
        let reg = protocol.registry().register().expect("registry");
        let vector = pool[0];
        let vm = Vm::new(&*protocol, &program, pool).expect("program valid");
        crate::min_time(5, || {
            // Empty the vector so repeated runs rebuild it from scratch.
            protocol
                .heap()
                .field(vector, 0)
                .store(0, std::sync::atomic::Ordering::Relaxed);
            let out = vm
                .run("main", reg.token(), &[Value::Int(elements)])
                .expect("clean run")
                .and_then(Value::as_int)
                .expect("returns checksum");
            assert_eq!(out, javalex_expected(elements));
        })
    };
    let thin_macro = measure(ProtocolKind::ThinLock);
    let jdk_macro = measure(ProtocolKind::Jdk111);
    let measured = jdk_macro.saturating_sub(thin_macro);
    println!(
        "javalex-shaped workload ({calls} synchronized calls): JDK111 {jdk_macro:.2?} - ThinLock {thin_macro:.2?} = {measured:.2?} saved"
    );
    let ratio = measured.as_secs_f64() / predicted.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "predicted from micro-benchmarks: {predicted:.2?}  (measured/predicted = {ratio:.2}; the paper's javalex check landed at 6.6s/6.5s = 1.02)"
    );
    for (id, unit, value) in [
        ("predict/saving_ns_per_call", "ns", saving_ns_per_call),
        (
            "predict/predicted_saving_ns",
            "ns",
            predicted.as_nanos() as f64,
        ),
        (
            "predict/measured_saving_ns",
            "ns",
            measured.as_nanos() as f64,
        ),
        ("predict/measured_over_predicted", "ratio", ratio),
    ] {
        // Informational: differences of noisy measurements — recorded for
        // trend visibility, far too jittery to gate.
        out.push(BenchRecord::scalar(
            id,
            "predict",
            None,
            unit,
            GateClass::Ratio,
            Direction::Informational,
            value,
        ));
    }
}

fn ablations(cfg: &TraceConfig, iters: i32, out: &mut BenchReport) {
    heading("Ablations: the paper's design choices, measured (DESIGN.md §8)");

    println!("(a) One-way inflation vs deflation (Tasuki-style):");
    let phased = crate::phased_ablation((iters / 4).max(1_000) as u32);
    println!(
        "    private phase after one contended episode: permanent-fat {:.2?} vs deflating {:.2?} ({:.1}x)",
        phased.thin_private,
        phased.tasuki_private,
        phased.private_phase_speedup()
    );
    println!(
        "    deflating variant performed {} inflation(s) / {} deflation(s)",
        phased.tasuki_inflations, phased.tasuki_deflations
    );
    out.push(BenchRecord::scalar(
        "ablations/phased/thin_private_ns",
        "ablations",
        Some("ThinLock"),
        "ns",
        GateClass::Macro,
        Direction::LowerIsBetter,
        phased.thin_private.as_nanos() as f64,
    ));
    out.push(BenchRecord::scalar(
        "ablations/phased/tasuki_private_ns",
        "ablations",
        Some("Tasuki"),
        "ns",
        GateClass::Macro,
        Direction::LowerIsBetter,
        phased.tasuki_private.as_nanos() as f64,
    ));
    out.push(BenchRecord::scalar(
        "ablations/phased/private_phase_speedup",
        "ablations",
        None,
        "ratio",
        GateClass::Ratio,
        Direction::Informational,
        phased.private_phase_speedup(),
    ));
    out.push(BenchRecord::scalar(
        "ablations/phased/tasuki_inflations",
        "ablations",
        Some("Tasuki"),
        "count",
        GateClass::Exact,
        Direction::Informational,
        phased.tasuki_inflations as f64,
    ));
    out.push(BenchRecord::scalar(
        "ablations/phased/tasuki_deflations",
        "ablations",
        Some("Tasuki"),
        "count",
        GateClass::Exact,
        Direction::Informational,
        phased.tasuki_deflations as f64,
    ));

    println!("(b) Nest-count width (paper: \"2 or 3 bits is probably sufficient\"):");
    for (bits, worst) in crate::count_width_ablation(cfg) {
        println!(
            "    {bits} bit(s): worst-case overflow fraction {:.4}% of lock ops",
            worst * 100.0
        );
        out.push(BenchRecord::scalar(
            format!("ablations/count_width/bits={bits}/worst_overflow_fraction"),
            "ablations",
            None,
            "fraction",
            GateClass::Exact,
            Direction::Informational,
            worst,
        ));
    }

    println!("(c) Contention-wait policy on Threads 2:");
    for (name, t) in crate::spin_policy_ablation(iters / 20) {
        println!("    {name:<16} {t:>10.2?}");
        out.push(BenchRecord::scalar(
            format!("ablations/spin/{name}"),
            "ablations",
            None,
            "ns",
            GateClass::Macro,
            Direction::LowerIsBetter,
            t.as_nanos() as f64,
        ));
    }

    println!("(d) Concurrent macro replay (4 threads, hottest 5% of objects shared):");
    let ccfg = thinlock_trace::concurrent::ConcurrentConfig {
        threads: 4,
        shared_fraction: 0.05,
        base: *cfg,
    };
    for name in CONCURRENT_BENCHES {
        let profile = thinlock_trace::table1::BenchmarkProfile::by_name(name).unwrap();
        match crate::concurrent_macro(profile, &ccfg) {
            Ok(rows) => {
                print!("    {name:<10}");
                for (proto, t, ok) in rows {
                    assert!(ok, "{proto}: mutual exclusion violated");
                    print!("  {proto}={t:>9.2?}");
                    out.push(BenchRecord::scalar(
                        format!("ablations/concurrent/{name}/{proto}"),
                        "ablations",
                        Some(proto),
                        "ns",
                        GateClass::Macro,
                        Direction::LowerIsBetter,
                        t.as_nanos() as f64,
                    ));
                }
                println!();
            }
            Err(e) => println!("    {name}: failed: {e}"),
        }
    }
}

/// Summary of the static lock-discipline analysis over the program
/// library (the `lockcheck` binary prints the full per-method findings).
fn lockcheck(out: &mut BenchReport) {
    use thinlock_analysis::escape::EscapeContext;
    use thinlock_vm::programs::{self, MicroBench};

    heading("lockcheck: static lock-discipline analysis (summary)");

    let mut programs = 0usize;
    let mut diagnostics = 0usize;
    let mut cycles = 0usize;
    let mut elidable = 0usize;
    let mut hints = 0usize;
    let mut tally = |program: &thinlock_vm::program::Program, ctx: &EscapeContext| {
        let report = thinlock_analysis::analyze_program(program, ctx);
        programs += 1;
        diagnostics += report.diagnostic_count() + report.verify_errors.len();
        cycles += report.lock_order.cycles.len();
        elidable += report.escape.elidable_ops.len();
        hints += report.nest.hints.len();
    };

    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        tally(&bench.program(), &ctx);
    }
    tally(
        &thinlock_vm::library::javalex_like(),
        &EscapeContext::single_threaded(),
    );
    tally(&programs::deadlock_pair(), &EscapeContext::threads(2));
    tally(&programs::deep_nest(), &EscapeContext::single_threaded());
    tally(
        &programs::unbalanced_exit(),
        &EscapeContext::single_threaded(),
    );
    tally(
        &programs::non_lifo_pair(),
        &EscapeContext::single_threaded(),
    );

    println!("  programs analyzed:     {programs}");
    println!("  diagnostics:           {diagnostics}");
    println!("  deadlock cycles:       {cycles}");
    println!("  elidable sync ops:     {elidable}");
    println!("  pre-inflation hints:   {hints}");
    println!("  (run the `lockcheck` binary for per-method findings)");
    lockcheck_races();
    lockcheck_plan();
    for (id, value) in [
        ("lockcheck/programs", programs),
        ("lockcheck/diagnostics", diagnostics),
        ("lockcheck/deadlock_cycles", cycles),
        ("lockcheck/elidable_ops", elidable),
        ("lockcheck/pre_inflation_hints", hints),
    ] {
        out.push(BenchRecord::scalar(
            id,
            "lockcheck",
            None,
            "count",
            GateClass::Exact,
            Direction::Informational,
            value as f64,
        ));
    }
}

/// The race-detection subsection (DESIGN.md §13): the guards pass over
/// the concurrent program library, each static verdict cross-checked by
/// one seeded replay under the dynamic Eraser sanitizer. Text only — the
/// gated `lockcheck/*` records above cover the sequential library and
/// stay byte-identical.
fn lockcheck_races() {
    use std::sync::Arc;
    use thinlock_analysis::escape::EscapeContext;
    use thinlock_analysis::guards::EntryRole;
    use thinlock_obs::EraserSanitizer;
    use thinlock_trace::vmreplay::run_concurrent_program;
    use thinlock_vm::programs::concurrent_library;

    println!("  races: guards pass + Eraser sanitizer over the concurrent library");
    let mut mismatches = 0usize;
    for entry in concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let roles: Vec<EntryRole> = entry
            .roles
            .iter()
            .map(|r| EntryRole {
                name: r.method.to_string(),
                method: entry.program.method_id(r.method).unwrap_or(0),
                threads: r.threads,
            })
            .collect();
        let report = thinlock_analysis::analyze_program_with_roles(&entry.program, &ctx, &roles);
        let static_racy = !report.guards.is_race_free();

        let sanitizer = Arc::new(EraserSanitizer::new(
            entry.program.pool_size() as usize + 1,
            usize::from(entry.fields.max(1)),
        ));
        let dynamic_racy = match run_concurrent_program(
            &entry,
            96,
            0xB16B_00B5,
            Some(Arc::clone(&sanitizer) as Arc<dyn thinlock_runtime::events::TraceSink>),
        ) {
            Ok(_) => sanitizer.report_count() > 0,
            Err(e) => {
                println!("    {}: replay failed: {e}", entry.name);
                mismatches += 1;
                continue;
            }
        };

        let agree = static_racy == entry.racy && dynamic_racy == entry.racy;
        if !agree {
            mismatches += 1;
        }
        println!(
            "    {:22} truth={:5} static={:5} dynamic={:5} — {}",
            entry.name,
            if entry.racy { "racy" } else { "clean" },
            if static_racy { "racy" } else { "clean" },
            if dynamic_racy { "racy" } else { "clean" },
            if agree { "agree" } else { "DISAGREE" },
        );
    }
    println!(
        "    verdict agreement: {}",
        if mismatches == 0 {
            "all programs (static == dynamic == ground truth)".to_string()
        } else {
            format!("{mismatches} mismatch(es) — see `lockcheck --deny-races`")
        }
    );
}

/// The plan-agreement subsection (DESIGN.md §18): the contention-shape
/// pass's static `SyncPlan` per concurrent program, cross-checked per
/// allocation site against a traced dynamic run. Text only — the gate
/// lives in `lockcheck --deny-disagreement` (wired into check.sh), so
/// no new bench ids are minted here.
fn lockcheck_plan() {
    use std::sync::Arc;
    use thinlock_analysis::contention::{classify_agreement, Agreement};
    use thinlock_analysis::escape::EscapeContext;
    use thinlock_analysis::guards::EntryRole;
    use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};
    use thinlock_trace::vmreplay::run_concurrent_program;
    use thinlock_vm::programs::concurrent_library;

    println!("  plan: static SyncPlan vs dynamic contention profile");
    let mut disagreements = 0usize;
    let mut conservative = 0usize;
    for entry in concurrent_library() {
        let ctx = EscapeContext::threads(entry.total_threads());
        let roles: Vec<EntryRole> = entry
            .roles
            .iter()
            .map(|r| EntryRole {
                name: r.method.to_string(),
                method: entry.program.method_id(r.method).unwrap_or(0),
                threads: r.threads,
            })
            .collect();
        let report = thinlock_analysis::analyze_program_with_roles(&entry.program, &ctx, &roles);

        let tracer = Arc::new(LockTracer::new(TracerConfig::default()));
        if let Err(e) = run_concurrent_program(
            &entry,
            96,
            0xB16B_00B5,
            Some(Arc::clone(&tracer) as Arc<dyn thinlock_runtime::events::TraceSink>),
        ) {
            println!("    {}: replay failed: {e}", entry.name);
            disagreements += 1;
            continue;
        }
        let profile = ContentionProfile::build(&tracer.snapshot());

        for site in &report.contention.sites {
            // The replay pool is allocated in order: heap index == pool.
            let (contended, waits) = profile
                .objects
                .iter()
                .find(|o| o.obj.index() == site.pool as usize)
                .map(|o| (o.acquire_contended_thin + o.acquire_fat_contended, o.waits))
                .unwrap_or((0, 0));
            let verdict =
                classify_agreement(report.contention.plan.entry(site.pool), contended, waits);
            match verdict {
                Agreement::Agree => {}
                Agreement::Conservative => conservative += 1,
                Agreement::Disagree => disagreements += 1,
            }
            println!(
                "    {:22} pool[{}] static={:12} contended={:3} waits={:3} — {}",
                entry.name,
                site.pool,
                site.shape.as_str(),
                contended,
                waits,
                verdict.as_str(),
            );
        }
    }
    println!(
        "    plan agreement: {}",
        if disagreements == 0 {
            format!("no disagreements ({conservative} conservative divergence(s) allowed)")
        } else {
            format!("{disagreements} disagreement(s) — see `lockcheck --deny-disagreement`")
        }
    );
}

/// The protocol model checker (DESIGN.md §14): exhaustively explore the
/// verify catalog's interleaving spaces under both naive DFS and
/// sleep-set DPOR and report states explored plus the aggregate
/// reduction factor. Text only — the state-space sizes are structural
/// facts already pinned exactly by `tests/modelcheck_protocol.rs`, so
/// gating them here would duplicate the test without adding signal.
fn lockmc() {
    use thinlock::BackendChoice;
    use thinlock_modelcheck::{reduction_factor, run_verify, Limits};

    heading("lockmc: exhaustive protocol model checking (DPOR)");
    println!(
        "  {:<22} {:>10} {:>10} {:>8}  verdict",
        "program", "naive", "dpor", "factor"
    );
    let reports = run_verify(&Limits::exhaustive(), true, BackendChoice::Thin);
    for r in &reports {
        let naive = r.naive.as_ref().expect("naive baseline requested");
        println!(
            "  {:<22} {:>10} {:>10} {:>7.1}x  {}",
            r.name,
            naive.executions,
            r.dpor.executions,
            naive.executions as f64 / r.dpor.executions.max(1) as f64,
            if r.violation.is_some() {
                "VIOLATION"
            } else if r.dpor.complete && naive.complete {
                "exhausted clean"
            } else {
                "INCOMPLETE"
            },
        );
    }
    match reduction_factor(&reports) {
        Some(factor) => println!(
            "  aggregate DPOR reduction: {factor:.1}x fewer executions than naive DFS \
             (acceptance floor: > 2x)"
        ),
        None => println!("  aggregate DPOR reduction: unavailable (missing naive baseline)"),
    }
    println!("  (run the `lockmc` binary for mutation testing and counterexample replay)");
}

/// The observability pipeline (DESIGN.md §10): run the profiling corpus
/// under a `LockTracer`, print the aggregated contention profile, and
/// verify that the event stream attributes every inflation the
/// statistics counters recorded.
fn profile_section(profile_json: Option<&str>, out: &mut BenchReport) -> Result<(), String> {
    heading("profile: lock-event observability (per-thread rings, thinlock-obs)");
    let run = crate::run_profile_corpus(thinlock_obs::TracerConfig::default());
    println!("{}", run.profile);
    let traced = run.profile.inflations_by_cause();
    if !run.attribution_consistent() {
        return Err(format!(
            "inflation attribution mismatch: stats {:?} vs traced {:?}",
            run.stats.inflations, traced
        ));
    }
    println!(
        "attribution check: stats inflations {:?} == traced {:?} (contention, overflow, wait, hint)",
        run.stats.inflations, traced
    );
    for (cause, count) in INFLATION_CAUSES.iter().zip(run.stats.inflations) {
        out.push(BenchRecord::scalar(
            format!("profile/inflations/{cause}"),
            "profile",
            None,
            "count",
            GateClass::Exact,
            Direction::Informational,
            count as f64,
        ));
    }
    out.push(BenchRecord::scalar(
        "profile/attribution_consistent",
        "profile",
        None,
        "count",
        GateClass::Exact,
        Direction::Informational,
        1.0,
    ));
    // Event totals include timing-dependent spin events: informational.
    out.push(BenchRecord::scalar(
        "profile/events",
        "profile",
        None,
        "count",
        GateClass::Ratio,
        Direction::Informational,
        run.profile.events as f64,
    ));
    if let Some(path) = profile_json {
        std::fs::write(path, run.profile.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("profile JSON written to {path}");
    }
    Ok(())
}

/// Runs the requested sections (`"all"` expands to every section),
/// printing each as `reproduce` always has, and returns the collected
/// [`BenchReport`].
///
/// `profile_json` optionally exports the contention profile of the
/// `profile` section as JSON (the bench report itself is the caller's to
/// write — the `reproduce` binary does so under `--json`).
///
/// `backend` narrows the `churn` section to one protocol (`reproduce
/// --backend`); `None` runs the full [`CHURN_BACKENDS`] head-to-head,
/// which is what the committed baseline and [`expected_ids`] describe.
///
/// # Errors
///
/// An error string if the profile section's inflation-attribution
/// cross-check fails or an export path is unwritable.
pub fn run_sections(
    sections: &[String],
    iters: i32,
    scale: u64,
    profile_json: Option<&str>,
    backend: Option<thinlock::BackendChoice>,
) -> Result<BenchReport, String> {
    let cfg = trace_config(scale);
    let all = sections.iter().any(|s| s == "all");
    let want = |s: &str| all || sections.iter().any(|x| x == s);
    let mut out = BenchReport::new(i64::from(iters), scale);

    println!("thin-locks reproduction harness (iters={iters}, trace scale={scale})");
    if want("table1") {
        table1(&cfg, &mut out);
    }
    if want("table2") {
        table2();
    }
    if want("fig3") {
        fig3(&cfg, &mut out);
    }
    if want("fig4") {
        fig4(iters, &mut out);
    }
    if want("fig5") {
        fig5(&cfg, &mut out);
    }
    if want("fig6") {
        fig6(iters, &mut out);
    }
    if want("ablations") {
        ablations(&cfg, iters, &mut out);
    }
    if want("churn") {
        match backend {
            Some(choice) => churn(iters, &[choice], &mut out),
            None => churn(iters, &CHURN_BACKENDS, &mut out),
        }
    }
    if want("fairness") {
        match backend {
            Some(choice) => fairness(iters, &[choice], &mut out),
            None => fairness(iters, &FAIRNESS_BACKENDS, &mut out),
        }
    }
    if want("predict") {
        predict(iters, &mut out);
    }
    if want("lockcheck") {
        lockcheck(&mut out);
    }
    if want("lockmc") {
        lockmc();
    }
    if want("profile") {
        profile_section(profile_json, &mut out)?;
    }
    Ok(out)
}

/// Every benchmark id an `all` run emits, in emission order — the
/// contract the smoke test in `tests/bench_pipeline.rs` holds
/// [`run_sections`] to. Derived from the same constants the section
/// functions iterate, so adding a benchmark updates both sides together.
pub fn expected_ids() -> Vec<String> {
    let mut ids = Vec::new();
    let macro_names: Vec<&str> = thinlock_trace::table1::MACRO_BENCHMARKS
        .iter()
        .map(|p| p.name)
        .collect();

    for name in &macro_names {
        ids.push(format!("table1/{name}/syncs_per_object"));
    }
    ids.push("table1/median_syncs_per_object".into());

    for name in &macro_names {
        ids.push(format!("fig3/{name}/first_lock_fraction"));
    }
    ids.push("fig3/median_first_lock_fraction".into());

    for bench in FIG4_SINGLE {
        for kind in ProtocolKind::ALL {
            ids.push(format!("fig4/{bench}/{}", kind.name()));
        }
        if bench == MicroBench::Sync {
            ids.push("fig4/Sync/speedup_vs_JDK111".into());
            ids.push("fig4/Sync/speedup_vs_IBM112".into());
        }
    }
    for n in MULTISYNC_SIZES {
        for kind in ProtocolKind::ALL {
            ids.push(format!("fig4/multisync/n={n}/{}", kind.name()));
        }
    }
    for n in THREAD_COUNTS {
        for kind in ProtocolKind::ALL {
            ids.push(format!("fig4/threads/n={n}/{}", kind.name()));
        }
    }

    for name in &macro_names {
        for proto in ["ThinLock", "JDK111", "IBM112"] {
            ids.push(format!("fig5/{name}/{proto}"));
        }
    }
    ids.push("fig5/median_speedup_thin".into());
    ids.push("fig5/median_speedup_ibm112".into());
    ids.push("fig5/max_speedup_thin".into());

    for bench in FIG6_BENCHES {
        for v in Variant::ALL {
            ids.push(format!("fig6/{bench}/{}", v.name()));
        }
    }

    ids.push("ablations/phased/thin_private_ns".into());
    ids.push("ablations/phased/tasuki_private_ns".into());
    ids.push("ablations/phased/private_phase_speedup".into());
    ids.push("ablations/phased/tasuki_inflations".into());
    ids.push("ablations/phased/tasuki_deflations".into());
    for bits in 1..=8 {
        ids.push(format!(
            "ablations/count_width/bits={bits}/worst_overflow_fraction"
        ));
    }
    for name in SPIN_POLICIES {
        ids.push(format!("ablations/spin/{name}"));
    }
    for name in CONCURRENT_BENCHES {
        for kind in ProtocolKind::ALL_BACKENDS {
            ids.push(format!("ablations/concurrent/{name}/{}", kind.name()));
        }
    }

    for choice in CHURN_BACKENDS {
        ids.push(format!("churn/{choice}/ns_per_op"));
        ids.push(format!("churn/{choice}/monitors_live"));
        ids.push(format!("churn/{choice}/inflations"));
        if choice.deflation_capable() {
            ids.push(format!("churn/{choice}/monitors_peak"));
            ids.push(format!("churn/{choice}/deflations"));
        }
    }

    for choice in FAIRNESS_BACKENDS {
        ids.push(format!(
            "fairness/t{}/{choice}/jain_index",
            crate::FAIRNESS_THREADS
        ));
        for tail in ["handoff_p50", "handoff_p95", "handoff_p99"] {
            ids.push(format!(
                "fairness/t{}/{choice}/{tail}",
                crate::FAIRNESS_THREADS
            ));
        }
    }
    ids.push("fairness/adaptive/pinned_objects".into());
    ids.push("fairness/adaptive/pinned_jain".into());

    ids.push("predict/saving_ns_per_call".into());
    ids.push("predict/predicted_saving_ns".into());
    ids.push("predict/measured_saving_ns".into());
    ids.push("predict/measured_over_predicted".into());

    ids.push("lockcheck/programs".into());
    ids.push("lockcheck/diagnostics".into());
    ids.push("lockcheck/deadlock_cycles".into());
    ids.push("lockcheck/elidable_ops".into());
    ids.push("lockcheck/pre_inflation_hints".into());

    for cause in INFLATION_CAUSES {
        ids.push(format!("profile/inflations/{cause}"));
    }
    ids.push("profile/attribution_consistent".into());
    ids.push("profile/events".into());

    ids
}
