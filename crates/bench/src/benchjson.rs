//! Machine-readable benchmark telemetry: the `BENCH_thinlock.json` schema.
//!
//! Every figure and table the `reproduce` binary regenerates is also
//! recorded as a [`BenchRecord`] — a stable string id, the headline
//! value, and (for timed benchmarks) a [`Summary`] with median, MAD and
//! a bootstrap confidence interval computed with the in-repo PRNG.
//! A [`BenchReport`] bundles the records with host metadata, the git
//! revision, and the run configuration, and serializes through the
//! dependency-free JSON writer in `thinlock-obs` (read back by
//! `thinlock_obs::parse`). The `benchgate` binary diffs two reports and
//! fails on regressions; BENCHMARKS.md documents the schema and the
//! gating rules in prose.
//!
//! Ids are hierarchical and stable across runs — `fig4/Sync/ThinLock`,
//! `fig5/javac/speedup_thin`, `ablations/phased/thin_private_ns` — so a
//! committed baseline from one revision can be compared field-by-field
//! against a fresh run from another.

use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

use thinlock_obs::parse::{self, JsonValue};
use thinlock_obs::JsonWriter;
use thinlock_runtime::prng::Prng;

/// Version stamped into every report; `benchgate` refuses to compare
/// reports with different versions.
pub const SCHEMA_VERSION: u64 = 1;

/// Bootstrap resamples used for the confidence interval.
pub const BOOTSTRAP_RESAMPLES: usize = 400;

/// How `benchgate` treats a record's value when diffing two reports.
///
/// The class picks the noise tolerance (documented in BENCHMARKS.md);
/// the [`Direction`] picks which side of the tolerance is a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateClass {
    /// Nanosecond-scale micro-benchmark (Figure 4 / Figure 6 cells):
    /// noisy on a shared host, gated with the widest relative tolerance.
    Micro,
    /// Macro replay / multi-threaded wall time (Figure 5, Threads sweep,
    /// ablation phases): microsecond-to-millisecond scale.
    Macro,
    /// A dimensionless ratio derived from two measurements (speedups).
    Ratio,
    /// Deterministic output of a seeded computation (trace
    /// characterization, analyzer counts): must match the baseline
    /// exactly, any difference is a behaviour change, not noise.
    Exact,
}

impl GateClass {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            GateClass::Micro => "micro",
            GateClass::Macro => "macro",
            GateClass::Ratio => "ratio",
            GateClass::Exact => "exact",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "micro" => Some(GateClass::Micro),
            "macro" => Some(GateClass::Macro),
            "ratio" => Some(GateClass::Ratio),
            "exact" => Some(GateClass::Exact),
            _ => None,
        }
    }
}

impl fmt::Display for GateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which way "better" points for a record's value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Times: an increase beyond tolerance is a regression.
    LowerIsBetter,
    /// Speedups: a decrease beyond tolerance is a regression.
    HigherIsBetter,
    /// Recorded for trend visibility but never gated (e.g. the §3.4
    /// measured/predicted ratio, whose ideal is 1.0 from either side).
    Informational,
}

impl Direction {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Direction::LowerIsBetter => "lower",
            Direction::HigherIsBetter => "higher",
            Direction::Informational => "info",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "lower" => Some(Direction::LowerIsBetter),
            "higher" => Some(Direction::HigherIsBetter),
            "info" => Some(Direction::Informational),
            _ => None,
        }
    }
}

/// Robust statistics over one benchmark's repetition samples.
///
/// # Example
///
/// ```
/// use thinlock_bench::benchjson::summarize;
///
/// let s = summarize(&[30.0, 31.0, 33.0, 32.0, 90.0], 42);
/// assert_eq!(s.median, 32.0);           // the outlier does not move it
/// assert_eq!(s.mad, 1.0);               // median |x - 32|
/// assert!(s.ci_lo <= s.median && s.median <= s.ci_hi);
/// assert_eq!(s.samples, 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Median of the samples.
    pub median: f64,
    /// Median absolute deviation — a robust spread estimate.
    pub mad: f64,
    /// Lower bound of the 95% bootstrap confidence interval of the median.
    pub ci_lo: f64,
    /// Upper bound of the 95% bootstrap confidence interval of the median.
    pub ci_hi: f64,
    /// Number of samples summarized.
    pub samples: u64,
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Computes [`Summary`] statistics: median, MAD, and a 95% bootstrap
/// confidence interval of the median ([`BOOTSTRAP_RESAMPLES`] resamples
/// drawn with the in-repo xorshift128+ PRNG seeded with `seed`, so the
/// interval is deterministic for a given sample set and seed).
///
/// # Panics
///
/// Panics on an empty sample slice.
pub fn summarize(samples: &[f64], seed: u64) -> Summary {
    assert!(!samples.is_empty(), "summarize needs at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median = median_of(&sorted);
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    dev.sort_by(f64::total_cmp);
    let mad = median_of(&dev);

    let mut rng = Prng::seed_from_u64(seed);
    let mut medians = Vec::with_capacity(BOOTSTRAP_RESAMPLES);
    let mut resample = vec![0.0; sorted.len()];
    for _ in 0..BOOTSTRAP_RESAMPLES {
        for slot in resample.iter_mut() {
            *slot = sorted[rng.range_usize(0, sorted.len())];
        }
        resample.sort_by(f64::total_cmp);
        medians.push(median_of(&resample));
    }
    medians.sort_by(f64::total_cmp);
    let lo_idx = (BOOTSTRAP_RESAMPLES as f64 * 0.025) as usize;
    let hi_idx = ((BOOTSTRAP_RESAMPLES as f64 * 0.975) as usize).min(BOOTSTRAP_RESAMPLES - 1);
    Summary {
        median,
        mad,
        ci_lo: medians[lo_idx],
        ci_hi: medians[hi_idx],
        samples: samples.len() as u64,
    }
}

/// Stable FNV-1a hash of a benchmark id — the per-record bootstrap seed,
/// so adding or reordering records never changes another record's CI.
pub fn id_seed(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One benchmark measurement in the report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Stable hierarchical id, e.g. `fig4/Sync/ThinLock`.
    pub id: String,
    /// Top-level grouping (`fig4`, `fig5`, `table1`, `ablations`, …).
    pub group: String,
    /// Protocol or variant measured, when one applies.
    pub protocol: Option<String>,
    /// Unit of `value` (`ns_per_iter`, `ns`, `ratio`, `fraction`, `count`).
    pub unit: String,
    /// Noise-tolerance class used by `benchgate`.
    pub class: GateClass,
    /// Which way "better" points.
    pub direction: Direction,
    /// The headline value (for timed records, the fastest sample — the
    /// estimate the gate compares; see [`BenchRecord::timed`]).
    pub value: f64,
    /// Repetition statistics, when the record came from repeated timing.
    pub summary: Option<Summary>,
}

impl BenchRecord {
    /// A record with no repetition statistics (ratios, counts,
    /// deterministic fractions).
    pub fn scalar(
        id: impl Into<String>,
        group: impl Into<String>,
        protocol: Option<&str>,
        unit: &str,
        class: GateClass,
        direction: Direction,
        value: f64,
    ) -> Self {
        BenchRecord {
            id: id.into(),
            group: group.into(),
            protocol: protocol.map(str::to_string),
            unit: unit.to_string(),
            class,
            direction,
            value,
            summary: None,
        }
    }

    /// A timed record: the value is the *fastest* sample and a
    /// [`Summary`] of the full distribution is attached (bootstrap
    /// seeded from the id, see [`id_seed`]).
    ///
    /// The minimum, not the median, is what `benchgate` compares: on a
    /// shared host, interference windows inflate individual repetitions
    /// by integer factors, which moves the median of a small sample
    /// between otherwise identical runs. Interference only ever adds
    /// time, so for a deterministic workload the fastest repetition is
    /// both the most reproducible statistic and the best estimate of
    /// the true cost. The median/MAD/CI stay available in `summary` for
    /// judging how noisy the run was.
    pub fn timed(
        id: impl Into<String>,
        group: impl Into<String>,
        protocol: Option<&str>,
        unit: &str,
        class: GateClass,
        samples_ns: &[f64],
    ) -> Self {
        let id = id.into();
        let summary = summarize(samples_ns, id_seed(&id));
        let fastest = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        BenchRecord {
            id,
            group: group.into(),
            protocol: protocol.map(str::to_string),
            unit: unit.to_string(),
            class,
            direction: Direction::LowerIsBetter,
            value: fastest,
            summary: Some(summary),
        }
    }
}

/// Host metadata stamped into each report so numbers are never compared
/// across machines by accident (informational — the gate only enforces
/// config equality, since CI hosts rotate hardware ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism (1 on the reference container).
    pub cpus: u64,
}

impl HostInfo {
    /// Detects the current host.
    pub fn detect() -> Self {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }
}

/// The complete machine-readable result of one `reproduce --json` run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// `HEAD` commit hash, if the repo metadata was readable.
    pub git_rev: Option<String>,
    /// Host the run executed on.
    pub host: HostInfo,
    /// Micro-benchmark loop iterations the run used.
    pub iters: i64,
    /// Trace scale divisor the run used.
    pub scale: u64,
    /// Every benchmark measured, in emission order.
    pub benchmarks: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report for the current host/revision with the given run
    /// configuration.
    pub fn new(iters: i64, scale: u64) -> Self {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            created_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            git_rev: read_git_head(),
            host: HostInfo::detect(),
            iters,
            scale,
            benchmarks: Vec::new(),
        }
    }

    /// Appends a record.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id — ids are the join key for `benchgate`,
    /// so two records with the same id would make the diff ambiguous.
    pub fn push(&mut self, record: BenchRecord) {
        assert!(
            self.find(&record.id).is_none(),
            "duplicate benchmark id `{}`",
            record.id
        );
        self.benchmarks.push(record);
    }

    /// Looks up a record by id.
    pub fn find(&self, id: &str) -> Option<&BenchRecord> {
        self.benchmarks.iter().find(|r| r.id == id)
    }

    /// All ids, in emission order.
    pub fn ids(&self) -> Vec<&str> {
        self.benchmarks.iter().map(|r| r.id.as_str()).collect()
    }

    /// Serializes the report as compact JSON.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("schema_version", self.schema_version);
        w.field_u64("created_unix_ms", self.created_unix_ms);
        match &self.git_rev {
            Some(rev) => w.field_str("git_rev", rev),
            None => w.field_null("git_rev"),
        }
        w.begin_named_object("host");
        w.field_str("os", &self.host.os);
        w.field_str("arch", &self.host.arch);
        w.field_u64("cpus", self.host.cpus);
        w.end_object();
        w.begin_named_object("config");
        w.field_f64("iters", self.iters as f64);
        w.field_u64("scale", self.scale);
        w.end_object();
        w.begin_named_array("benchmarks");
        for r in &self.benchmarks {
            w.begin_object();
            w.field_str("id", &r.id);
            w.field_str("group", &r.group);
            match &r.protocol {
                Some(p) => w.field_str("protocol", p),
                None => w.field_null("protocol"),
            }
            w.field_str("unit", &r.unit);
            w.field_str("class", r.class.name());
            w.field_str("direction", r.direction.name());
            w.field_f64("value", r.value);
            match &r.summary {
                Some(s) => {
                    w.begin_named_object("summary");
                    w.field_f64("median", s.median);
                    w.field_f64("mad", s.mad);
                    w.field_f64("ci_lo", s.ci_lo);
                    w.field_f64("ci_hi", s.ci_hi);
                    w.field_u64("samples", s.samples);
                    w.end_object();
                }
                None => w.field_null("summary"),
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// [`SchemaError`] if the document is not valid JSON, is missing a
    /// required field, or declares an unknown schema version.
    pub fn from_json(text: &str) -> Result<Self, SchemaError> {
        let doc = parse::parse(text).map_err(|e| SchemaError(e.to_string()))?;
        let field = |name: &str| {
            doc.get(name)
                .ok_or_else(|| SchemaError(format!("missing field `{name}`")))
        };
        let schema_version = field("schema_version")?
            .as_u64()
            .ok_or_else(|| SchemaError("schema_version must be an integer".into()))?;
        if schema_version != SCHEMA_VERSION {
            return Err(SchemaError(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION})"
            )));
        }
        let host = field("host")?;
        let config = field("config")?;
        let num = |v: &JsonValue, what: &str| {
            v.as_f64()
                .ok_or_else(|| SchemaError(format!("{what} must be a number")))
        };
        let benchmarks = field("benchmarks")?
            .as_array()
            .ok_or_else(|| SchemaError("benchmarks must be an array".into()))?
            .iter()
            .map(Self::record_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BenchReport {
            schema_version,
            created_unix_ms: field("created_unix_ms")?
                .as_u64()
                .ok_or_else(|| SchemaError("created_unix_ms must be an integer".into()))?,
            git_rev: field("git_rev")?.as_str().map(str::to_string),
            host: HostInfo {
                os: host
                    .get("os")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                arch: host
                    .get("arch")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                cpus: host.get("cpus").and_then(JsonValue::as_u64).unwrap_or(1),
            },
            iters: num(
                config
                    .get("iters")
                    .ok_or_else(|| SchemaError("missing config.iters".into()))?,
                "config.iters",
            )? as i64,
            scale: config
                .get("scale")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| SchemaError("missing config.scale".into()))?,
            benchmarks,
        })
    }

    fn record_from_json(r: &JsonValue) -> Result<BenchRecord, SchemaError> {
        let s = |name: &str| {
            r.get(name)
                .and_then(JsonValue::as_str)
                .ok_or_else(|| SchemaError(format!("record missing string `{name}`")))
        };
        let id = s("id")?.to_string();
        let summary = match r.get("summary") {
            None | Some(JsonValue::Null) => None,
            Some(sv) => {
                let f = |name: &str| {
                    sv.get(name)
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| SchemaError(format!("summary missing `{name}` in `{id}`")))
                };
                Some(Summary {
                    median: f("median")?,
                    mad: f("mad")?,
                    ci_lo: f("ci_lo")?,
                    ci_hi: f("ci_hi")?,
                    samples: sv
                        .get("samples")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| SchemaError(format!("summary missing samples in `{id}`")))?,
                })
            }
        };
        Ok(BenchRecord {
            group: s("group")?.to_string(),
            protocol: r
                .get("protocol")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            unit: s("unit")?.to_string(),
            class: GateClass::from_name(s("class")?)
                .ok_or_else(|| SchemaError(format!("unknown class in `{id}`")))?,
            direction: Direction::from_name(s("direction")?)
                .ok_or_else(|| SchemaError(format!("unknown direction in `{id}`")))?,
            value: r
                .get("value")
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| SchemaError(format!("record `{id}` missing numeric value")))?,
            summary,
            id,
        })
    }
}

/// A report failed schema validation (bad JSON, missing field, wrong
/// version).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

/// Best-effort `HEAD` commit hash read straight from `.git` (no
/// subprocess: the workspace runs fully offline and sandboxed). Walks up
/// from the current directory to find the repo root; resolves one level
/// of `ref:` indirection including packed refs.
fn read_git_head() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let git = dir.join(".git");
        if git.is_dir() {
            let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
            let head = head.trim();
            if let Some(refname) = head.strip_prefix("ref: ") {
                if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
                    return Some(hash.trim().to_string());
                }
                // Fall back to packed-refs.
                let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
                return packed.lines().find_map(|line| {
                    line.strip_suffix(refname)
                        .map(|hash| hash.trim().to_string())
                });
            }
            return Some(head.to_string());
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_basics() {
        let s = summarize(&[1.0], 7);
        assert_eq!(s.median, 1.0);
        assert_eq!(s.mad, 0.0);
        assert_eq!((s.ci_lo, s.ci_hi), (1.0, 1.0));
        assert_eq!(s.samples, 1);

        let s = summarize(&[4.0, 2.0, 8.0, 6.0], 7);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mad, 2.0);
        assert!(s.ci_lo >= 2.0 && s.ci_hi <= 8.0);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        let samples = [30.0, 31.0, 29.5, 33.0, 30.5];
        let a = summarize(&samples, 1);
        let b = summarize(&samples, 1);
        assert_eq!(a, b);
        let c = summarize(&samples, 2);
        // Different seed, same data: median and MAD identical, CI may move.
        assert_eq!(a.median, c.median);
        assert_eq!(a.mad, c.mad);
    }

    #[test]
    fn ci_brackets_median_and_narrows_with_agreement() {
        let tight = summarize(&[10.0, 10.0, 10.0, 10.0, 10.0], 3);
        assert_eq!((tight.ci_lo, tight.ci_hi), (10.0, 10.0));
        let wide = summarize(&[5.0, 8.0, 10.0, 14.0, 30.0], 3);
        assert!(wide.ci_lo <= wide.median && wide.median <= wide.ci_hi);
        assert!(wide.ci_hi - wide.ci_lo > 0.0);
    }

    #[test]
    fn id_seed_is_stable_and_distinguishes() {
        assert_eq!(id_seed("fig4/Sync/ThinLock"), id_seed("fig4/Sync/ThinLock"));
        assert_ne!(id_seed("fig4/Sync/ThinLock"), id_seed("fig4/Sync/JDK111"));
    }

    #[test]
    fn push_rejects_duplicate_ids() {
        let mut report = BenchReport::new(100, 1000);
        report.push(BenchRecord::scalar(
            "a/b",
            "a",
            None,
            "count",
            GateClass::Exact,
            Direction::Informational,
            1.0,
        ));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            report.push(BenchRecord::scalar(
                "a/b",
                "a",
                None,
                "count",
                GateClass::Exact,
                Direction::Informational,
                2.0,
            ));
        }));
        assert!(result.is_err(), "duplicate id must panic");
    }

    #[test]
    fn git_rev_resolves_in_this_repo() {
        // The workspace is a git repo; HEAD must resolve to a hex hash.
        let report = BenchReport::new(1, 1);
        if let Some(rev) = &report.git_rev {
            assert!(rev.len() >= 7, "rev too short: {rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }
}
