//! Diffs a fresh benchmark report against the committed baseline and
//! exits nonzero on regression.
//!
//! ```text
//! benchgate [--baseline PATH] [--current PATH] [--ids-only]
//!           [--micro-tol F] [--macro-tol F] [--ratio-tol F]
//! ```
//!
//! Defaults compare `BENCH_thinlock.json` (a fresh `reproduce --json`
//! run) against `scripts/bench_baseline.json` (committed). `--ids-only`
//! checks benchmark coverage but ignores values — the mode the fast
//! smoke tier uses, where iteration counts are too small for timing to
//! mean anything. Tolerances and the pass/fail rules are documented in
//! BENCHMARKS.md.

use std::process::ExitCode;

use thinlock_bench::benchjson::BenchReport;
use thinlock_bench::gate::{compare, Tolerances};

struct Options {
    baseline: String,
    current: String,
    ids_only: bool,
    tolerances: Tolerances,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        baseline: "scripts/bench_baseline.json".to_string(),
        current: "BENCH_thinlock.json".to_string(),
        ids_only: false,
        tolerances: Tolerances::default(),
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    let parse_tol = |v: String, flag: &str| {
        v.parse::<f64>()
            .map_err(|_| format!("{flag} needs a number"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => opts.baseline = value(&mut args, "--baseline")?,
            "--current" => opts.current = value(&mut args, "--current")?,
            "--ids-only" => opts.ids_only = true,
            "--micro-tol" => {
                opts.tolerances.micro = parse_tol(value(&mut args, "--micro-tol")?, "--micro-tol")?
            }
            "--macro-tol" => {
                opts.tolerances.macro_rel =
                    parse_tol(value(&mut args, "--macro-tol")?, "--macro-tol")?
            }
            "--ratio-tol" => {
                opts.tolerances.ratio = parse_tol(value(&mut args, "--ratio-tol")?, "--ratio-tol")?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: benchgate [--baseline PATH] [--current PATH] [--ids-only] \
                            [--micro-tol F] [--macro-tol F] [--ratio-tol F]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(opts)
}

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (baseline, current) = match (load(&opts.baseline), load(&opts.current)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("{err}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "benchgate: {} ({} benchmarks, rev {}) vs {} ({} benchmarks, rev {}){}",
        opts.baseline,
        baseline.benchmarks.len(),
        baseline.git_rev.as_deref().unwrap_or("?"),
        opts.current,
        current.benchmarks.len(),
        current.git_rev.as_deref().unwrap_or("?"),
        if opts.ids_only { " [ids only]" } else { "" }
    );
    let outcome = compare(&baseline, &current, &opts.tolerances, opts.ids_only);
    print!("{}", outcome.render());
    if outcome.pass() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
