//! Regenerates every table and figure of the thin-locks paper.
//!
//! ```text
//! reproduce [all|table1|table2|fig3|fig4|fig5|fig6|ablations|churn|fairness|predict|lockcheck|lockmc|profile]
//!           [--iters N] [--scale N] [--quick] [--json PATH] [--profile-json PATH]
//!           [--backend <thin|cjm|tasuki|fissile|hapax|adaptive>]
//! ```
//!
//! `--backend` narrows the `churn` and `fairness` sections to one
//! protocol; without it churn runs the thin/cjm head-to-head and
//! fairness the thin/fissile/hapax head-to-head the committed baseline
//! records (so a `--backend` run's JSON is a subset of the baseline's
//! id set — use it for spot measurements, not for gating).
//!
//! Output is plain text, one section per artifact, in the same row/series
//! structure the paper reports. Absolute numbers are host-dependent; the
//! expected *shape* for each artifact is stated in EXPERIMENTS.md.
//!
//! `--json PATH` additionally writes the machine-readable benchmark
//! report (the `BENCH_thinlock.json` schema documented in BENCHMARKS.md)
//! that `benchgate` diffs against the committed baseline. The `profile`
//! section runs the observability corpus (DESIGN.md §10) and prints the
//! per-object contention profile; `--profile-json PATH` also exports
//! that profile as JSON.

use std::process::ExitCode;

use thinlock_bench::report;

struct Options {
    sections: Vec<String>,
    iters: i32,
    scale: u64,
    json: Option<String>,
    profile_json: Option<String>,
    backend: Option<thinlock::BackendChoice>,
}

fn parse_args() -> Result<Options, String> {
    let mut sections = Vec::new();
    let mut iters: i32 = 200_000;
    let mut scale: u64 = 1_000;
    let mut json = None;
    let mut profile_json = None;
    let mut backend = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" => sections.push(arg),
            s if report::SECTIONS.contains(&s) => sections.push(arg),
            "--iters" => {
                iters = args
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|_| "--iters needs an integer".to_string())?;
            }
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "--scale needs an integer".to_string())?;
            }
            "--quick" => {
                iters = 20_000;
                scale = 20_000;
            }
            "--json" => {
                json = Some(args.next().ok_or("--json needs a path")?);
            }
            "--profile-json" => {
                profile_json = Some(args.next().ok_or("--profile-json needs a path")?);
            }
            "--backend" => {
                let name = args.next().ok_or("--backend needs a value")?;
                backend = Some(
                    thinlock::BackendChoice::from_name(&name)
                        .ok_or_else(|| format!("--backend: unknown backend `{name}`"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: reproduce [all|table1|table2|fig3|fig4|fig5|fig6|ablations|churn\
                            |fairness|predict|lockcheck|lockmc|profile] [--iters N] [--scale N] \
                            [--quick] [--json PATH] [--profile-json PATH] \
                            [--backend <thin|cjm|tasuki|fissile|hapax|adaptive>]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    Ok(Options {
        sections,
        iters,
        scale,
        json,
        profile_json,
        backend,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let bench_report = match report::run_sections(
        &opts.sections,
        opts.iters,
        opts.scale,
        opts.profile_json.as_deref(),
        opts.backend,
    ) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, bench_report.to_json()) {
            eprintln!("writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "\nbench report: {} benchmark(s) written to {path}",
            bench_report.benchmarks.len()
        );
    }
    ExitCode::SUCCESS
}
