//! Regenerates every table and figure of the thin-locks paper.
//!
//! ```text
//! reproduce [all|table1|table2|fig3|fig4|fig5|fig6|ablations|predict|lockcheck|profile]
//!           [--iters N] [--scale N] [--quick] [--json PATH]
//! ```
//!
//! Output is plain text, one section per artifact, in the same row/series
//! structure the paper reports. Absolute numbers are host-dependent; the
//! expected *shape* for each artifact is stated in EXPERIMENTS.md.
//!
//! The `profile` section runs the observability corpus (DESIGN.md §10)
//! and prints the per-object contention profile; `--json PATH` also
//! exports it as machine-readable JSON.

use std::process::ExitCode;

use thinlock_bench::{
    figure3_rows, macro_rows, macro_speedups, run_micro, run_micro_threads, run_variant,
    MicroResult, ProtocolKind, Variant,
};
use thinlock_trace::generator::TraceConfig;
use thinlock_trace::table1::median;
use thinlock_vm::programs::MicroBench;

struct Options {
    sections: Vec<String>,
    iters: i32,
    scale: u64,
    json: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut sections = Vec::new();
    let mut iters: i32 = 200_000;
    let mut scale: u64 = 1_000;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" | "table1" | "table2" | "fig3" | "fig4" | "fig5" | "fig6" | "ablations"
            | "predict" | "lockcheck" | "profile" => sections.push(arg),
            "--iters" => {
                iters = args
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|_| "--iters needs an integer".to_string())?;
            }
            "--scale" => {
                scale = args
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "--scale needs an integer".to_string())?;
            }
            "--quick" => {
                iters = 20_000;
                scale = 20_000;
            }
            "--json" => {
                json = Some(args.next().ok_or("--json needs a path")?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: reproduce [all|table1|table2|fig3|fig4|fig5|fig6|ablations|predict\
                            |lockcheck|profile] [--iters N] [--scale N] [--quick] [--json PATH]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if sections.is_empty() {
        sections.push("all".to_string());
    }
    Ok(Options {
        sections,
        iters,
        scale,
        json,
    })
}

fn trace_config(scale: u64) -> TraceConfig {
    TraceConfig {
        scale,
        seed: 0x7e57_ab1e,
        max_objects: 50_000,
        max_lock_ops: 500_000,
        skew: 0.8,
        work_per_sync: thinlock_trace::generator::DEFAULT_WORK_PER_SYNC,
        work_per_alloc: thinlock_trace::generator::DEFAULT_WORK_PER_ALLOC,
    }
}

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn table1(cfg: &TraceConfig) {
    heading("Table 1: macro-benchmark characterization (generated traces)");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "program", "objects", "sync objs", "syncs", "syncs/obj", "paper s/o", "1st-lock%"
    );
    let mut ratios = Vec::new();
    for (p, c) in macro_rows(cfg) {
        ratios.push(c.syncs_per_object());
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10.1} {:>11.1} {:>9.0}%",
            p.name,
            c.objects_created,
            c.synchronized_objects,
            c.sync_operations,
            c.syncs_per_object(),
            p.syncs_per_object(),
            c.first_lock_fraction() * 100.0
        );
    }
    println!(
        "median syncs/object: {:.1} (paper: 22.7)",
        median(&mut ratios)
    );
}

fn table2() {
    heading("Table 2: micro-benchmarks");
    let rows = [
        ("NoSync", "No locking - reference benchmark"),
        ("Sync", "Initial lock with a synchronized() statement"),
        ("NestedSync", "Nested lock with a synchronized() statement"),
        (
            "MultiSync n",
            "Like Sync, but synchronizes n objects every iteration",
        ),
        (
            "Call",
            "Calls a non-synchronized method - reference benchmark",
        ),
        (
            "CallSync",
            "Calls a synchronized method to obtain an initial lock",
        ),
        (
            "NestedCallSync",
            "Calls a synchronized method to obtain a nested lock",
        ),
        (
            "Threads n",
            "Initial locking performed concurrently by n competing threads",
        ),
    ];
    for (name, desc) in rows {
        println!("{name:<16} {desc}");
    }
}

fn fig3(cfg: &TraceConfig) {
    heading("Figure 3: depth of lock nesting by benchmark (generated traces)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "program", "first", "second", "third", "fourth"
    );
    let mut firsts = Vec::new();
    for (name, fr) in figure3_rows(cfg) {
        firsts.push(fr[0]);
        println!(
            "{:<12} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
            name,
            fr[0] * 100.0,
            fr[1] * 100.0,
            fr[2] * 100.0,
            fr[3] * 100.0
        );
    }
    println!(
        "median first-lock fraction: {:.0}% (paper: 80%; minimum observed must be >= ~45%)",
        median(&mut firsts) * 100.0
    );
}

fn print_micro(results: &[MicroResult]) {
    for r in results {
        println!("  {r}");
    }
}

fn fig4(iters: i32) {
    heading("Figure 4: micro-benchmark performance (ns per iteration)");
    let single: &[MicroBench] = &[
        MicroBench::NoSync,
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::Call,
        MicroBench::CallSync,
        MicroBench::NestedCallSync,
    ];
    for &bench in single {
        let results: Vec<MicroResult> = ProtocolKind::ALL
            .iter()
            .map(|&k| run_micro(k, bench, iters))
            .collect();
        print_micro(&results);
        if bench == MicroBench::Sync {
            let thin = results[0].ns_per_iter();
            let jdk = results[1].ns_per_iter();
            let ibm = results[2].ns_per_iter();
            println!(
                "  -> Sync: ThinLock is {:.1}x faster than JDK111 (paper: 3.7x), {:.1}x faster than IBM112 (paper: 1.8x)",
                jdk / thin,
                ibm / thin
            );
        }
        println!();
    }

    println!("MultiSync working-set sweep (ns per object-sync):");
    let multi_iters = (iters / 50).max(100);
    for n in [1u32, 8, 16, 32, 64, 128, 256, 512, 1024] {
        print!("  n={n:<5}");
        for kind in ProtocolKind::ALL {
            let r = run_micro(kind, MicroBench::MultiSync(n), multi_iters);
            // Normalize per object-sync: each iteration performs n syncs.
            let per_sync = r.ns_per_iter() / f64::from(n);
            print!("  {}={:>8.1}", kind.name(), per_sync);
        }
        println!();
    }

    println!(
        "\nThreads sweep (total wall time, {} iters/thread):",
        iters / 10
    );
    for n in [1u32, 2, 4, 8, 16] {
        print!("  threads={n:<3}");
        for kind in ProtocolKind::ALL {
            let r = run_micro_threads(kind, n, iters / 10);
            print!("  {}={:>9.2?}", kind.name(), r.elapsed);
        }
        println!();
    }
}

fn fig5(cfg: &TraceConfig) {
    heading("Figure 5: macro-benchmark speedups over JDK111 (replayed traces)");
    match macro_speedups(cfg) {
        Ok(rows) => {
            let mut thin = Vec::new();
            let mut ibm = Vec::new();
            for row in &rows {
                println!("  {row}");
                thin.push(row.speedup_thin());
                ibm.push(row.speedup_ibm112());
            }
            let max_thin = thin.iter().copied().fold(0.0f64, f64::max);
            println!(
                "median speedup: thin {:.2} (paper 1.22), ibm112 {:.2} (paper 1.04); max thin {:.2} (paper 1.7)",
                median(&mut thin),
                median(&mut ibm),
                max_thin
            );
        }
        Err(e) => println!("  replay failed: {e}"),
    }
}

fn fig6(iters: i32) {
    heading("Figure 6: fast-path engineering tradeoffs (ns per iteration)");
    let benches = [
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::MixedSync,
        MicroBench::CallSync,
    ];
    for bench in benches {
        for v in Variant::ALL {
            let r = run_variant(v, bench, iters);
            println!("  {r}");
        }
        println!();
    }
}

/// Section 3.4's consistency check: predict macro speedup from the
/// micro-benchmark per-call saving, then measure it. The paper does this
/// for javalex ("we can predict 2.7 seconds of speedup per 1 million
/// synchronized method invocations ... or 6.5 seconds" vs 6.6 measured).
fn predict(iters: i32) {
    use thinlock_runtime::heap::ObjRef;
    use thinlock_vm::library::{javalex_expected, javalex_like, JAVALEX_SCAN_PASSES};
    use thinlock_vm::{Value, Vm};

    heading("Section 3.4 cross-check: micro-benchmarks predict the macro speedup");

    // Per-call saving from the CallSync micro-benchmark.
    let thin_micro = run_micro(ProtocolKind::ThinLock, MicroBench::CallSync, iters);
    let jdk_micro = run_micro(ProtocolKind::Jdk111, MicroBench::CallSync, iters);
    let saving_ns_per_call = jdk_micro.ns_per_iter() - thin_micro.ns_per_iter();
    println!(
        "CallSync: ThinLock {:.1} ns/call, JDK111 {:.1} ns/call -> saving {:.1} ns per synchronized call",
        thin_micro.ns_per_iter(),
        jdk_micro.ns_per_iter(),
        saving_ns_per_call
    );

    // The javalex-shaped workload's call count is known statically.
    let elements: i32 = 2_000;
    let calls = i64::from(1 + JAVALEX_SCAN_PASSES * 2) * i64::from(elements);
    let predicted =
        std::time::Duration::from_nanos((saving_ns_per_call.max(0.0) * calls as f64) as u64);

    let program = javalex_like();
    let measure = |kind: ProtocolKind| {
        let protocol = kind.build(2, elements as usize + 1);
        let pool: Vec<ObjRef> = vec![protocol.heap().alloc().expect("alloc")];
        let reg = protocol.registry().register().expect("registry");
        let vector = pool[0];
        let vm = Vm::new(&*protocol, &program, pool).expect("program valid");
        thinlock_bench::median_time(5, || {
            // Empty the vector so repeated runs rebuild it from scratch.
            protocol
                .heap()
                .field(vector, 0)
                .store(0, std::sync::atomic::Ordering::Relaxed);
            let out = vm
                .run("main", reg.token(), &[Value::Int(elements)])
                .expect("clean run")
                .and_then(Value::as_int)
                .expect("returns checksum");
            assert_eq!(out, javalex_expected(elements));
        })
    };
    let thin_macro = measure(ProtocolKind::ThinLock);
    let jdk_macro = measure(ProtocolKind::Jdk111);
    let measured = jdk_macro.saturating_sub(thin_macro);
    println!(
        "javalex-shaped workload ({calls} synchronized calls): JDK111 {jdk_macro:.2?} - ThinLock {thin_macro:.2?} = {measured:.2?} saved"
    );
    let ratio = measured.as_secs_f64() / predicted.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "predicted from micro-benchmarks: {predicted:.2?}  (measured/predicted = {ratio:.2}; the paper's javalex check landed at 6.6s/6.5s = 1.02)"
    );
}

fn ablations(cfg: &TraceConfig, iters: i32) {
    heading("Ablations: the paper's design choices, measured (DESIGN.md §8)");

    println!("(a) One-way inflation vs deflation (Tasuki-style):");
    let phased = thinlock_bench::phased_ablation((iters / 4).max(1_000) as u32);
    println!(
        "    private phase after one contended episode: permanent-fat {:.2?} vs deflating {:.2?} ({:.1}x)",
        phased.thin_private,
        phased.tasuki_private,
        phased.private_phase_speedup()
    );
    println!(
        "    deflating variant performed {} inflation(s) / {} deflation(s)",
        phased.tasuki_inflations, phased.tasuki_deflations
    );

    println!("(b) Nest-count width (paper: \"2 or 3 bits is probably sufficient\"):");
    for (bits, worst) in thinlock_bench::count_width_ablation(cfg) {
        println!(
            "    {bits} bit(s): worst-case overflow fraction {:.4}% of lock ops",
            worst * 100.0
        );
    }

    println!("(c) Contention-wait policy on Threads 2:");
    for (name, t) in thinlock_bench::spin_policy_ablation(iters / 20) {
        println!("    {name:<16} {t:>10.2?}");
    }

    println!("(d) Concurrent macro replay (4 threads, hottest 5% of objects shared):");
    let ccfg = thinlock_trace::concurrent::ConcurrentConfig {
        threads: 4,
        shared_fraction: 0.05,
        base: *cfg,
    };
    for name in ["javac", "jacorb", "javalex"] {
        let profile = thinlock_trace::table1::BenchmarkProfile::by_name(name).unwrap();
        match thinlock_bench::concurrent_macro(profile, &ccfg) {
            Ok(rows) => {
                print!("    {name:<10}");
                for (proto, t, ok) in rows {
                    assert!(ok, "{proto}: mutual exclusion violated");
                    print!("  {proto}={t:>9.2?}");
                }
                println!();
            }
            Err(e) => println!("    {name}: failed: {e}"),
        }
    }
}

/// Summary of the static lock-discipline analysis over the program
/// library (the `lockcheck` binary prints the full per-method findings).
fn lockcheck() {
    use thinlock_analysis::escape::EscapeContext;
    use thinlock_vm::programs::{self, MicroBench};

    heading("lockcheck: static lock-discipline analysis (summary)");

    let mut programs = 0usize;
    let mut diagnostics = 0usize;
    let mut cycles = 0usize;
    let mut elidable = 0usize;
    let mut hints = 0usize;
    let mut tally = |program: &thinlock_vm::program::Program, ctx: &EscapeContext| {
        let report = thinlock_analysis::analyze_program(program, ctx);
        programs += 1;
        diagnostics += report.diagnostic_count() + report.verify_errors.len();
        cycles += report.lock_order.cycles.len();
        elidable += report.escape.elidable_ops.len();
        hints += report.nest.hints.len();
    };

    for bench in MicroBench::table2()
        .into_iter()
        .chain([MicroBench::MixedSync])
    {
        let ctx = EscapeContext::threads(bench.thread_count());
        tally(&bench.program(), &ctx);
    }
    tally(
        &thinlock_vm::library::javalex_like(),
        &EscapeContext::single_threaded(),
    );
    tally(&programs::deadlock_pair(), &EscapeContext::threads(2));
    tally(&programs::deep_nest(), &EscapeContext::single_threaded());
    tally(
        &programs::unbalanced_exit(),
        &EscapeContext::single_threaded(),
    );
    tally(
        &programs::non_lifo_pair(),
        &EscapeContext::single_threaded(),
    );

    println!("  programs analyzed:     {programs}");
    println!("  diagnostics:           {diagnostics}");
    println!("  deadlock cycles:       {cycles}");
    println!("  elidable sync ops:     {elidable}");
    println!("  pre-inflation hints:   {hints}");
    println!("  (run the `lockcheck` binary for per-method findings)");
}

/// The observability pipeline (DESIGN.md §10): run the profiling corpus
/// under a `LockTracer`, print the aggregated contention profile, and
/// verify that the event stream attributes every inflation the
/// statistics counters recorded.
fn profile_section(json: Option<&str>) -> Result<(), String> {
    heading("profile: lock-event observability (per-thread rings, thinlock-obs)");
    let run = thinlock_bench::run_profile_corpus(thinlock_obs::TracerConfig::default());
    println!("{}", run.profile);
    let traced = run.profile.inflations_by_cause();
    if !run.attribution_consistent() {
        return Err(format!(
            "inflation attribution mismatch: stats {:?} vs traced {:?}",
            run.stats.inflations, traced
        ));
    }
    println!(
        "attribution check: stats inflations {:?} == traced {:?} (contention, overflow, wait, hint)",
        run.stats.inflations, traced
    );
    if let Some(path) = json {
        std::fs::write(path, run.profile.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("profile JSON written to {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = trace_config(opts.scale);
    let all = opts.sections.iter().any(|s| s == "all");
    let want = |s: &str| all || opts.sections.iter().any(|x| x == s);

    println!(
        "thin-locks reproduction harness (iters={}, trace scale={})",
        opts.iters, opts.scale
    );
    if want("table1") {
        table1(&cfg);
    }
    if want("table2") {
        table2();
    }
    if want("fig3") {
        fig3(&cfg);
    }
    if want("fig4") {
        fig4(opts.iters);
    }
    if want("fig5") {
        fig5(&cfg);
    }
    if want("fig6") {
        fig6(opts.iters);
    }
    if want("ablations") {
        ablations(&cfg, opts.iters);
    }
    if want("predict") {
        predict(opts.iters);
    }
    if want("lockcheck") {
        lockcheck();
    }
    if want("profile") {
        if let Err(msg) = profile_section(opts.json.as_deref()) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
