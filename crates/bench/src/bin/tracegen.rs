//! Generates, saves, checks, and replays serialized lock traces.
//!
//! ```text
//! tracegen <benchmark|all> [--scale N] [--seed N] [--out DIR]   generate .trace files
//! tracegen --check FILE                                         validate + characterize
//! tracegen --replay FILE                                        replay under all protocols
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use thinlock_bench::ProtocolKind;
use thinlock_trace::characterize::characterize;
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::io::{trace_from_str, trace_to_string};
use thinlock_trace::replay::replay;
use thinlock_trace::table1::{BenchmarkProfile, MACRO_BENCHMARKS};

fn usage() -> String {
    "usage: tracegen <benchmark|all> [--scale N] [--seed N] [--out DIR]\n       tracegen --check FILE\n       tracegen --replay FILE"
        .to_string()
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(usage());
    }

    if args[0] == "--check" || args[0] == "--replay" {
        let path = args.get(1).ok_or_else(usage)?;
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let trace = trace_from_str(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{trace}");
        println!("  {}", characterize(&trace));
        if args[0] == "--replay" {
            for kind in ProtocolKind::ALL_EXTENDED {
                let protocol = kind.build(trace.required_heap_capacity(), 0);
                let reg = protocol.registry().register().map_err(|e| e.to_string())?;
                let out = replay(&*protocol, &trace, reg.token()).map_err(|e| e.to_string())?;
                println!("  {:<9} {out}", kind.name());
            }
        }
        return Ok(());
    }

    let mut which = args[0].clone();
    let mut config = TraceConfig::default();
    let mut out_dir = PathBuf::from(".");
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "--scale needs an integer".to_string())?;
            }
            "--seed" => {
                config.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--out" => {
                out_dir = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if which == "all" {
        which.clear();
    }

    let selected: Vec<&BenchmarkProfile> = MACRO_BENCHMARKS
        .iter()
        .filter(|p| which.is_empty() || p.name == which)
        .collect();
    if selected.is_empty() {
        return Err(format!(
            "unknown benchmark `{which}`; see Table 1 for names"
        ));
    }
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    for profile in selected {
        let trace = generate(profile, &config);
        let path = out_dir.join(format!("{}.trace", profile.name));
        std::fs::write(&path, trace_to_string(&trace)).map_err(|e| e.to_string())?;
        println!("wrote {} ({})", path.display(), trace);
    }
    Ok(())
}
