//! Regression gating: diff a fresh [`BenchReport`] against a committed
//! baseline and decide pass/fail.
//!
//! The comparison joins the two reports on benchmark id. Each record's
//! [`GateClass`] selects a relative noise tolerance (timed classes) or
//! exact equality (deterministic trace-derived values), and its
//! [`Direction`] decides which side of the tolerance is a regression.
//! Ids present in the baseline but absent from the current run fail the
//! gate — a benchmark silently disappearing is exactly the rot the
//! pipeline exists to catch. New ids in the current run are reported but
//! do not fail (they become gated once the baseline is refreshed).
//!
//! The `benchgate` binary is a thin CLI over [`compare`]; BENCHMARKS.md
//! documents the tolerances and the reasoning behind them.

use std::fmt;

use crate::benchjson::{BenchReport, Direction, GateClass};

/// Relative noise tolerances per [`GateClass`], as fractions of the
/// baseline value.
///
/// The defaults are sized empirically from back-to-back no-change runs
/// on the reference container (one shared vCPU; see BENCHMARKS.md): the
/// host's load varies in phases of tens of seconds, so even min-of-5
/// fresh-instance micro cells were observed to move up to ~±55% between
/// identical runs; contended macro rows (threaded sweeps, spin-policy
/// and concurrent-replay ablations) are schedule-dependent on a single
/// CPU and moved up to ~±62%; ratios move less (the division cancels
/// host-wide effects). Each default sits above its observed worst case
/// while staying below the 2× threshold of the structural regressions
/// the gate exists to catch. [`GateClass::Exact`] records ignore
/// tolerances entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerances {
    /// Relative tolerance for [`GateClass::Micro`] records.
    pub micro: f64,
    /// Relative tolerance for [`GateClass::Macro`] records.
    pub macro_rel: f64,
    /// Relative tolerance for [`GateClass::Ratio`] records.
    pub ratio: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            micro: 0.65,
            macro_rel: 0.75,
            ratio: 0.40,
        }
    }
}

impl Tolerances {
    /// The tolerance applied to a record of the given class (`None` for
    /// exact records, which tolerate no drift at all).
    pub fn for_class(&self, class: GateClass) -> Option<f64> {
        match class {
            GateClass::Micro => Some(self.micro),
            GateClass::Macro => Some(self.macro_rel),
            GateClass::Ratio => Some(self.ratio),
            GateClass::Exact => None,
        }
    }
}

/// The gate's judgement of one benchmark id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Delta within tolerance (or an informational record, never gated).
    Within,
    /// Moved beyond tolerance in the good direction.
    Improved,
    /// Moved beyond tolerance in the bad direction — fails the gate.
    Regressed,
    /// In the baseline but not the current run — fails the gate.
    Missing,
    /// In the current run but not the baseline — reported, not failed.
    New,
}

impl Verdict {
    /// Short label for the delta table.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Within => "ok",
            Verdict::Improved => "IMPROVED",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
            Verdict::New => "new",
        }
    }
}

/// One row of the delta table.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Benchmark id.
    pub id: String,
    /// Gate class of the baseline record (current's class for new ids).
    pub class: GateClass,
    /// Baseline value, if the id exists in the baseline.
    pub baseline: Option<f64>,
    /// Current value, if the id exists in the current run.
    pub current: Option<f64>,
    /// Relative delta `(current - baseline) / |baseline|`, when both
    /// sides exist and the baseline is nonzero.
    pub rel_delta: Option<f64>,
    /// The judgement.
    pub verdict: Verdict,
}

/// Result of comparing two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// One row per benchmark id seen in either report, baseline order
    /// first.
    pub rows: Vec<DeltaRow>,
    /// Set when the two reports were produced with different run
    /// configurations (iters/scale) — timing comparison would be
    /// meaningless, so this alone fails a full gate.
    pub config_mismatch: Option<String>,
    /// True when values were ignored and only id coverage was checked.
    pub ids_only: bool,
}

impl GateOutcome {
    /// Overall pass/fail: no regressions, no missing ids, and (for full
    /// comparisons) matching run configuration.
    pub fn pass(&self) -> bool {
        (self.ids_only || self.config_mismatch.is_none())
            && !self
                .rows
                .iter()
                .any(|r| matches!(r.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// Number of rows with the given verdict.
    pub fn count(&self, verdict: Verdict) -> usize {
        self.rows.iter().filter(|r| r.verdict == verdict).count()
    }

    /// Renders the human-readable delta table: every failing row, every
    /// improvement, and a one-line summary (within-tolerance rows are
    /// counted, not listed).
    pub fn render(&self) -> String {
        let mut out = String::new();
        use fmt::Write;
        if let Some(msg) = &self.config_mismatch {
            let _ = writeln!(out, "CONFIG MISMATCH: {msg}");
        }
        let interesting: Vec<&DeltaRow> = self
            .rows
            .iter()
            .filter(|r| r.verdict != Verdict::Within)
            .collect();
        if !interesting.is_empty() {
            let _ = writeln!(
                out,
                "{:<44} {:<6} {:>12} {:>12} {:>8}  verdict",
                "benchmark", "class", "baseline", "current", "delta"
            );
            for r in interesting {
                let fmt_val = |v: Option<f64>| match v {
                    Some(v) => format!("{v:.3}"),
                    None => "-".to_string(),
                };
                let delta = match r.rel_delta {
                    Some(d) => format!("{:+.1}%", d * 100.0),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{:<44} {:<6} {:>12} {:>12} {:>8}  {}",
                    r.id,
                    r.class.name(),
                    fmt_val(r.baseline),
                    fmt_val(r.current),
                    delta,
                    r.verdict.label()
                );
            }
        }
        let _ = writeln!(
            out,
            "{} within tolerance, {} improved, {} regressed, {} missing, {} new -> {}",
            self.count(Verdict::Within),
            self.count(Verdict::Improved),
            self.count(Verdict::Regressed),
            self.count(Verdict::Missing),
            self.count(Verdict::New),
            if self.pass() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Compares a current report against a baseline.
///
/// With `ids_only` set, values are ignored and only id coverage is
/// checked — the mode the fast smoke tier in `scripts/check.sh` uses,
/// where iteration counts are too small for timing to mean anything.
///
/// # Example
///
/// ```
/// use thinlock_bench::benchjson::{BenchRecord, BenchReport, Direction, GateClass};
/// use thinlock_bench::gate::{compare, Tolerances, Verdict};
///
/// let mut baseline = BenchReport::new(1000, 100);
/// baseline.push(BenchRecord::scalar(
///     "fig4/Sync/ThinLock", "fig4", Some("ThinLock"), "ns_per_iter",
///     GateClass::Micro, Direction::LowerIsBetter, 33.0,
/// ));
/// let mut current = baseline.clone();
/// current.benchmarks[0].value = 66.0; // a 2x regression
/// let outcome = compare(&baseline, &current, &Tolerances::default(), false);
/// assert!(!outcome.pass());
/// assert_eq!(outcome.rows[0].verdict, Verdict::Regressed);
/// ```
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerances: &Tolerances,
    ids_only: bool,
) -> GateOutcome {
    let config_mismatch = if baseline.iters != current.iters || baseline.scale != current.scale {
        Some(format!(
            "baseline ran with iters={} scale={}, current with iters={} scale={}",
            baseline.iters, baseline.scale, current.iters, current.scale
        ))
    } else {
        None
    };

    let mut rows = Vec::new();
    for base in &baseline.benchmarks {
        let row = match current.find(&base.id) {
            None => DeltaRow {
                id: base.id.clone(),
                class: base.class,
                baseline: Some(base.value),
                current: None,
                rel_delta: None,
                verdict: Verdict::Missing,
            },
            Some(cur) => {
                let rel_delta = if base.value.abs() > f64::EPSILON {
                    Some((cur.value - base.value) / base.value.abs())
                } else {
                    None
                };
                let verdict = if ids_only {
                    Verdict::Within
                } else {
                    judge(
                        base.class,
                        base.direction,
                        base.value,
                        cur.value,
                        tolerances,
                    )
                };
                DeltaRow {
                    id: base.id.clone(),
                    class: base.class,
                    baseline: Some(base.value),
                    current: Some(cur.value),
                    rel_delta,
                    verdict,
                }
            }
        };
        rows.push(row);
    }
    for cur in &current.benchmarks {
        if baseline.find(&cur.id).is_none() {
            rows.push(DeltaRow {
                id: cur.id.clone(),
                class: cur.class,
                baseline: None,
                current: Some(cur.value),
                rel_delta: None,
                verdict: Verdict::New,
            });
        }
    }
    GateOutcome {
        rows,
        config_mismatch,
        ids_only,
    }
}

fn judge(
    class: GateClass,
    direction: Direction,
    base: f64,
    cur: f64,
    tolerances: &Tolerances,
) -> Verdict {
    if direction == Direction::Informational {
        return Verdict::Within;
    }
    match tolerances.for_class(class) {
        // Exact records: any difference is a behaviour change. Direction
        // does not soften this — a "better" deterministic count still
        // means the workload changed under the gate's feet.
        None => {
            if base == cur {
                Verdict::Within
            } else {
                Verdict::Regressed
            }
        }
        Some(tol) => {
            if base.abs() <= f64::EPSILON {
                // Zero baseline: relative drift is undefined; only an
                // exactly-zero current value stays within.
                return if cur == base {
                    Verdict::Within
                } else if direction == Direction::HigherIsBetter && cur > base {
                    Verdict::Improved
                } else {
                    Verdict::Regressed
                };
            }
            let rel = (cur - base) / base.abs();
            let (worse, better) = match direction {
                Direction::LowerIsBetter => (rel > tol, rel < -tol),
                Direction::HigherIsBetter => (rel < -tol, rel > tol),
                Direction::Informational => unreachable!("handled above"),
            };
            if worse {
                Verdict::Regressed
            } else if better {
                Verdict::Improved
            } else {
                Verdict::Within
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchjson::BenchRecord;

    fn record(id: &str, class: GateClass, direction: Direction, value: f64) -> BenchRecord {
        BenchRecord::scalar(id, "t", None, "ns", class, direction, value)
    }

    fn report(records: Vec<BenchRecord>) -> BenchReport {
        let mut r = BenchReport::new(1000, 100);
        for rec in records {
            r.push(rec);
        }
        r
    }

    #[test]
    fn within_tolerance_passes() {
        let base = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            100.0,
        )]);
        let cur = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            120.0,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(out.pass());
        assert_eq!(out.rows[0].verdict, Verdict::Within);
    }

    #[test]
    fn two_x_regression_fails() {
        let base = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            100.0,
        )]);
        let cur = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            200.0,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(!out.pass());
        assert_eq!(out.rows[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn big_speedup_reports_improved() {
        let base = report(vec![record(
            "a",
            GateClass::Macro,
            Direction::LowerIsBetter,
            100.0,
        )]);
        let cur = report(vec![record(
            "a",
            GateClass::Macro,
            Direction::LowerIsBetter,
            20.0,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(out.pass());
        assert_eq!(out.rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn higher_is_better_flips_direction() {
        let base = report(vec![record(
            "s",
            GateClass::Ratio,
            Direction::HigherIsBetter,
            1.2,
        )]);
        let cur = report(vec![record(
            "s",
            GateClass::Ratio,
            Direction::HigherIsBetter,
            0.5,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(!out.pass());
        assert_eq!(out.rows[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn exact_records_tolerate_nothing() {
        let base = report(vec![record(
            "count",
            GateClass::Exact,
            Direction::LowerIsBetter,
            22.7,
        )]);
        let same = compare(&base, &base.clone(), &Tolerances::default(), false);
        assert!(same.pass());
        let cur = report(vec![record(
            "count",
            GateClass::Exact,
            Direction::LowerIsBetter,
            22.700001,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(!out.pass());
    }

    #[test]
    fn informational_never_gates() {
        let base = report(vec![record(
            "i",
            GateClass::Ratio,
            Direction::Informational,
            1.0,
        )]);
        let cur = report(vec![record(
            "i",
            GateClass::Ratio,
            Direction::Informational,
            9.0,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(out.pass());
        assert_eq!(out.rows[0].verdict, Verdict::Within);
    }

    #[test]
    fn missing_id_fails_new_id_does_not() {
        let base = report(vec![
            record("a", GateClass::Micro, Direction::LowerIsBetter, 1.0),
            record("b", GateClass::Micro, Direction::LowerIsBetter, 1.0),
        ]);
        let cur = report(vec![
            record("a", GateClass::Micro, Direction::LowerIsBetter, 1.0),
            record("c", GateClass::Micro, Direction::LowerIsBetter, 1.0),
        ]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        assert!(!out.pass());
        assert_eq!(out.count(Verdict::Missing), 1);
        assert_eq!(out.count(Verdict::New), 1);

        let cur_superset = report(vec![
            record("a", GateClass::Micro, Direction::LowerIsBetter, 1.0),
            record("b", GateClass::Micro, Direction::LowerIsBetter, 1.0),
            record("c", GateClass::Micro, Direction::LowerIsBetter, 1.0),
        ]);
        assert!(compare(&base, &cur_superset, &Tolerances::default(), false).pass());
    }

    #[test]
    fn config_mismatch_fails_full_but_not_ids_only() {
        let base = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            1.0,
        )]);
        let mut cur = base.clone();
        cur.iters = 5;
        let full = compare(&base, &cur, &Tolerances::default(), false);
        assert!(!full.pass());
        assert!(full.config_mismatch.is_some());
        let ids = compare(&base, &cur, &Tolerances::default(), true);
        assert!(ids.pass(), "ids-only ignores config and values");
    }

    #[test]
    fn ids_only_ignores_huge_regressions() {
        let base = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            10.0,
        )]);
        let cur = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            1_000.0,
        )]);
        assert!(compare(&base, &cur, &Tolerances::default(), true).pass());
    }

    #[test]
    fn render_mentions_failures_and_summary() {
        let base = report(vec![
            record("a", GateClass::Micro, Direction::LowerIsBetter, 100.0),
            record("gone", GateClass::Micro, Direction::LowerIsBetter, 1.0),
        ]);
        let cur = report(vec![record(
            "a",
            GateClass::Micro,
            Direction::LowerIsBetter,
            300.0,
        )]);
        let out = compare(&base, &cur, &Tolerances::default(), false);
        let text = out.render();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("MISSING"));
        assert!(text.contains("FAIL"));
    }
}
