//! The fairness claim behind the contention-adaptive backends: under a
//! shared acquisition pool at high thread counts, FIFO ticket admission
//! (hapax always, fissile once the word fissions) splits the pool close
//! to evenly, while thin's barging release-then-re-CAS lets a few
//! threads capture most of it. BENCHMARKS.md documents the gated
//! `fairness/*` records this test mirrors.

use thinlock::BackendChoice;
use thinlock_bench::{jain_index, run_fairness, FAIRNESS_THREADS};

/// Acquisition pool for the test runs: enough for admission order to
/// dominate startup noise, small enough to keep the suite quick.
const POOL: u64 = 800;

/// Scheduling on a loaded shared host can produce one freak repetition;
/// the claim is about the median run, so allow a couple of attempts.
fn best_jain(choice: BackendChoice, attempts: usize) -> f64 {
    (0..attempts)
        .map(|_| run_fairness(choice, FAIRNESS_THREADS, POOL).jain)
        .fold(0.0, f64::max)
}

#[test]
fn fifo_admission_is_fairer_than_thin_spinning_at_8_threads() {
    let thin = run_fairness(BackendChoice::Thin, FAIRNESS_THREADS, POOL);
    for choice in [BackendChoice::Hapax, BackendChoice::Fissile] {
        let fifo = best_jain(choice, 3);
        assert!(
            fifo > thin.jain,
            "{choice:?} Jain {fifo:.3} must beat Thin {:.3} (thin counts {:?})",
            thin.jain,
            thin.per_thread,
        );
    }
}

#[test]
fn fifo_backends_split_the_pool_nearly_evenly() {
    for choice in [BackendChoice::Hapax, BackendChoice::Fissile] {
        let r = run_fairness(choice, FAIRNESS_THREADS, POOL);
        assert!(
            r.jain > 0.9,
            "{choice:?}: FIFO admission should be near-even, got {:.3} {:?}",
            r.jain,
            r.per_thread
        );
    }
}

#[test]
fn per_thread_counts_match_the_headline_index() {
    let r = run_fairness(BackendChoice::Hapax, 4, 200);
    assert_eq!(jain_index(&r.per_thread), r.jain);
    assert!(r.jain_samples.windows(2).all(|w| w[0] <= w[1]), "ascending");
}
