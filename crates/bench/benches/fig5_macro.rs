//! Criterion benches for Figure 5: every Table 1 macro-benchmark trace
//! replayed under all three protocols. Each iteration gets a fresh
//! protocol instance because the trace allocates objects.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use thinlock_bench::ProtocolKind;
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::replay::replay;
use thinlock_trace::table1::MACRO_BENCHMARKS;

fn bench_config() -> TraceConfig {
    TraceConfig {
        scale: 20_000,
        seed: 0x7e57_ab1e,
        max_objects: 2_000,
        max_lock_ops: 5_000,
        skew: 0.8,
        work_per_sync: 100,
        work_per_alloc: 800,
    }
}

fn macro_replay(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("fig5_macro");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in &MACRO_BENCHMARKS {
        let trace = generate(profile, &cfg);
        for kind in ProtocolKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(profile.name, kind.name()),
                &trace,
                |b, trace| {
                    b.iter_batched(
                        || kind.build(trace.required_heap_capacity(), 0),
                        |protocol| {
                            let registration =
                                protocol.registry().register().expect("registry room");
                            let out = replay(&*protocol, trace, registration.token())
                                .expect("replay succeeds");
                            assert_eq!(out.lock_ops, trace.lock_ops());
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Plot rendering dominates wall time on a single-CPU host; the
    // numeric report in bench_output.txt is what EXPERIMENTS.md uses.
    config = Criterion::default().without_plots();
    targets = macro_replay
}
criterion_main!(benches);
