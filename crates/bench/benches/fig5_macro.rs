//! Figure 5 benches: every Table 1 macro-benchmark trace replayed under
//! all three protocols. Each repetition gets a fresh protocol instance
//! (the trace allocates objects), built outside the timed region. Plain
//! `harness = false` main; bench_output.txt is what EXPERIMENTS.md uses.

use std::time::{Duration, Instant};

use thinlock_bench::ProtocolKind;
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::replay::replay;
use thinlock_trace::table1::MACRO_BENCHMARKS;

const REPS: usize = 5;

fn bench_config() -> TraceConfig {
    TraceConfig {
        scale: 20_000,
        seed: 0x7e57_ab1e,
        max_objects: 2_000,
        max_lock_ops: 5_000,
        skew: 0.8,
        work_per_sync: 100,
        work_per_alloc: 800,
    }
}

fn main() {
    let cfg = bench_config();
    for profile in &MACRO_BENCHMARKS {
        let trace = generate(profile, &cfg);
        for kind in ProtocolKind::ALL {
            let mut times: Vec<Duration> = (0..REPS)
                .map(|_| {
                    // Setup (allocation-heavy protocol construction) stays
                    // outside the timed region.
                    let protocol = kind.build(trace.required_heap_capacity(), 0);
                    let registration = protocol.registry().register().expect("registry room");
                    let start = Instant::now();
                    let out =
                        replay(&*protocol, &trace, registration.token()).expect("replay succeeds");
                    let elapsed = start.elapsed();
                    assert_eq!(out.lock_ops, trace.lock_ops());
                    elapsed
                })
                .collect();
            times.sort_unstable();
            let median = times[times.len() / 2];
            println!(
                "fig5_macro       {:<22} {:<16} {:>12.1} us",
                profile.name,
                kind.name(),
                median.as_nanos() as f64 / 1_000.0
            );
        }
    }
}
