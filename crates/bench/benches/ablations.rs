//! Design-choice ablation benches for DESIGN.md §8: one-way inflation vs
//! deflation, and contention-wait policies. Plain `harness = false`
//! main; bench_output.txt is what EXPERIMENTS.md uses.

use std::sync::Arc;
use thinlock::config::DynamicConfig;
use thinlock::{TasukiLocks, ThinLocks};
use thinlock_bench::{median_time, DEFAULT_REPS};
use thinlock_runtime::backoff::SpinPolicy;
use thinlock_runtime::heap::Heap;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;

const OPS: u32 = 1_000;

fn report(group: &str, name: &str, median: std::time::Duration) {
    println!(
        "{group:<20} {name:<24} {:>9.1} ns/op",
        median.as_nanos() as f64 / f64::from(OPS)
    );
}

/// Private-phase throughput after one contended (wait-inflated) episode:
/// the permanently-fat base protocol vs the deflating variant.
fn deflation_ablation() {
    let thin = ThinLocks::with_capacity(2);
    let obj = thin.heap().alloc().unwrap();
    {
        let reg = thin.registry().register().unwrap();
        let t = reg.token();
        thin.lock(obj, t).unwrap();
        let _ = thin.wait(obj, t, Some(std::time::Duration::from_millis(1)));
        thin.unlock(obj, t).unwrap();
    }
    assert!(thin.lock_word(obj).is_fat());
    let reg = thin.registry().register().unwrap();
    let t = reg.token();
    let median = median_time(DEFAULT_REPS, || {
        for _ in 0..OPS {
            thin.lock(obj, t).unwrap();
            thin.unlock(obj, t).unwrap();
        }
    });
    report("ablation_deflation", "ThinLock (stays fat)", median);

    let tasuki = TasukiLocks::with_capacity(2);
    let obj2 = tasuki.heap().alloc().unwrap();
    {
        let reg = tasuki.registry().register().unwrap();
        let t = reg.token();
        tasuki.lock(obj2, t).unwrap();
        let _ = tasuki.wait(obj2, t, Some(std::time::Duration::from_millis(1)));
        tasuki.unlock(obj2, t).unwrap();
    }
    assert!(tasuki.lock_word(obj2).is_unlocked());
    let reg2 = tasuki.registry().register().unwrap();
    let t2 = reg2.token();
    let median = median_time(DEFAULT_REPS, || {
        for _ in 0..OPS {
            tasuki.lock(obj2, t2).unwrap();
            tasuki.unlock(obj2, t2).unwrap();
        }
    });
    report("ablation_deflation", "Tasuki (deflated)", median);
}

/// Uncontended fast-path cost per spin policy (the policy only matters
/// under contention, so these must be near-identical — a sanity
/// ablation).
fn spin_policy_ablation() {
    for (name, policy) in [
        ("spin-then-yield", SpinPolicy::SpinThenYield),
        ("yield-only", SpinPolicy::YieldOnly),
        ("spin-hard", SpinPolicy::SpinHard),
    ] {
        let protocol = ThinLocks::with_config(
            Arc::new(Heap::with_capacity(2)),
            ThreadRegistry::new(),
            DynamicConfig::default().with_spin_policy(policy),
        );
        let obj = protocol.heap().alloc().unwrap();
        let reg = protocol.registry().register().unwrap();
        let t = reg.token();
        let median = median_time(DEFAULT_REPS, || {
            for _ in 0..OPS {
                protocol.lock(obj, t).unwrap();
                protocol.unlock(obj, t).unwrap();
            }
        });
        report("ablation_spin_policy", name, median);
    }
}

fn main() {
    deflation_ablation();
    spin_policy_ablation();
}
