//! Criterion benches for the design-choice ablations of DESIGN.md §8:
//! one-way inflation vs deflation, and contention-wait policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use thinlock::config::DynamicConfig;
use thinlock::{TasukiLocks, ThinLocks};
use thinlock_runtime::backoff::SpinPolicy;
use thinlock_runtime::heap::Heap;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadRegistry;

/// Private-phase throughput after one contended (wait-inflated) episode:
/// the permanently-fat base protocol vs the deflating variant.
fn deflation_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_deflation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));

    let thin = ThinLocks::with_capacity(2);
    let obj = thin.heap().alloc().unwrap();
    {
        let reg = thin.registry().register().unwrap();
        let t = reg.token();
        thin.lock(obj, t).unwrap();
        let _ = thin.wait(obj, t, Some(std::time::Duration::from_millis(1)));
        thin.unlock(obj, t).unwrap();
    }
    assert!(thin.lock_word(obj).is_fat());
    let reg = thin.registry().register().unwrap();
    let t = reg.token();
    g.bench_function(BenchmarkId::new("private_phase", "ThinLock (stays fat)"), |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                thin.lock(obj, t).unwrap();
                thin.unlock(obj, t).unwrap();
            }
        })
    });

    let tasuki = TasukiLocks::with_capacity(2);
    let obj2 = tasuki.heap().alloc().unwrap();
    {
        let reg = tasuki.registry().register().unwrap();
        let t = reg.token();
        tasuki.lock(obj2, t).unwrap();
        let _ = tasuki.wait(obj2, t, Some(std::time::Duration::from_millis(1)));
        tasuki.unlock(obj2, t).unwrap();
    }
    assert!(tasuki.lock_word(obj2).is_unlocked());
    let reg2 = tasuki.registry().register().unwrap();
    let t2 = reg2.token();
    g.bench_function(BenchmarkId::new("private_phase", "Tasuki (deflated)"), |b| {
        b.iter(|| {
            for _ in 0..1_000 {
                tasuki.lock(obj2, t2).unwrap();
                tasuki.unlock(obj2, t2).unwrap();
            }
        })
    });
    g.finish();
}

/// Uncontended fast-path cost per spin policy (the policy only matters
/// under contention, so these must be identical — a sanity ablation) plus
/// the contended Threads-2 comparison.
fn spin_policy_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_spin_policy");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for (name, policy) in [
        ("spin-then-yield", SpinPolicy::SpinThenYield),
        ("yield-only", SpinPolicy::YieldOnly),
        ("spin-hard", SpinPolicy::SpinHard),
    ] {
        let protocol = ThinLocks::with_config(
            Arc::new(Heap::with_capacity(2)),
            ThreadRegistry::new(),
            DynamicConfig::default().with_spin_policy(policy),
        );
        let obj = protocol.heap().alloc().unwrap();
        let reg = protocol.registry().register().unwrap();
        let t = reg.token();
        g.bench_function(BenchmarkId::new("uncontended", name), |b| {
            b.iter(|| {
                for _ in 0..1_000 {
                    protocol.lock(obj, t).unwrap();
                    protocol.unlock(obj, t).unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Plot rendering dominates wall time on a single-CPU host; the
    // numeric report in bench_output.txt is what EXPERIMENTS.md uses.
    config = Criterion::default().without_plots();
    targets = deflation_ablation, spin_policy_ablation
}
criterion_main!(benches);
