//! Figure 6 benches: the fast-path engineering variants (NOP / Inline /
//! FnCall / MP Sync / dynamic ThinLock / UnlkC&S / KernelCAS) on the
//! Sync, NestedSync, MixedSync, and CallSync loops. Plain
//! `harness = false` main; bench_output.txt is what EXPERIMENTS.md uses.

use thinlock_bench::{run_variant, Variant};
use thinlock_vm::programs::MicroBench;

const ITERS: i32 = 5_000;

fn main() {
    for bench in [
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::MixedSync,
        MicroBench::CallSync,
    ] {
        for v in Variant::ALL {
            let r = run_variant(v, bench, ITERS);
            assert!(r.elapsed.as_nanos() > 0);
            println!("{:<16} {r}", "fig6_variants");
        }
    }
}
