//! Criterion benches for Figure 6: the fast-path engineering variants
//! (NOP / Inline / FnCall / MP Sync / dynamic ThinLock / UnlkC&S /
//! KernelCAS) on the Sync, NestedSync, MixedSync, and CallSync loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thinlock_bench::{run_variant, Variant};
use thinlock_vm::programs::MicroBench;

const ITERS: i32 = 5_000;

fn variants(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_variants");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for bench in [
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::MixedSync,
        MicroBench::CallSync,
    ] {
        for v in Variant::ALL {
            g.bench_with_input(
                BenchmarkId::new(bench.to_string(), v.name()),
                &v,
                |b, &v| {
                    b.iter(|| {
                        let r = run_variant(v, bench, ITERS);
                        assert!(r.elapsed.as_nanos() > 0);
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Plot rendering dominates wall time on a single-CPU host; the
    // numeric report in bench_output.txt is what EXPERIMENTS.md uses.
    config = Criterion::default().without_plots();
    targets = variants
}
criterion_main!(benches);
