//! Table 1 / Figure 3 benches: trace generation and characterization of
//! every macro-benchmark profile, with the paper's aggregate invariants
//! asserted on each sample. Plain `harness = false` main;
//! bench_output.txt is what EXPERIMENTS.md uses.

use thinlock_bench::{median_time, DEFAULT_REPS};
use thinlock_trace::characterize::characterize;
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::table1::MACRO_BENCHMARKS;

fn bench_config() -> TraceConfig {
    TraceConfig {
        scale: 20_000,
        seed: 0x7e57_ab1e,
        max_objects: 2_000,
        max_lock_ops: 5_000,
        skew: 0.8,
        work_per_sync: 0, // characterization ignores work ops
        work_per_alloc: 0,
    }
}

fn main() {
    let cfg = bench_config();
    for profile in &MACRO_BENCHMARKS {
        let median = median_time(DEFAULT_REPS, || {
            let trace = generate(profile, &cfg);
            let ch = characterize(&trace);
            assert!(ch.max_depth() <= 4);
            assert!(ch.first_lock_fraction() > 0.4);
        });
        println!(
            "table1_characterize {:<22} {:>12.1} us",
            profile.name,
            median.as_nanos() as f64 / 1_000.0
        );
    }
}
