//! Criterion benches for Table 1 / Figure 3: trace generation and
//! characterization of every macro-benchmark profile, with the paper's
//! aggregate invariants asserted on each sample.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thinlock_trace::characterize::characterize;
use thinlock_trace::generator::{generate, TraceConfig};
use thinlock_trace::table1::MACRO_BENCHMARKS;

fn bench_config() -> TraceConfig {
    TraceConfig {
        scale: 20_000,
        seed: 0x7e57_ab1e,
        max_objects: 2_000,
        max_lock_ops: 5_000,
        skew: 0.8,
        work_per_sync: 0, // characterization ignores work ops
        work_per_alloc: 0,
    }
}

fn characterization(c: &mut Criterion) {
    let cfg = bench_config();
    let mut g = c.benchmark_group("table1_characterize");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for profile in &MACRO_BENCHMARKS {
        g.bench_with_input(
            BenchmarkId::from_parameter(profile.name),
            profile,
            |b, profile| {
                b.iter(|| {
                    let trace = generate(profile, &cfg);
                    let ch = characterize(&trace);
                    assert!(ch.max_depth() <= 4);
                    assert!(ch.first_lock_fraction() > 0.4);
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Plot rendering dominates wall time on a single-CPU host; the
    // numeric report in bench_output.txt is what EXPERIMENTS.md uses.
    config = Criterion::default().without_plots();
    targets = characterization
}
criterion_main!(benches);
