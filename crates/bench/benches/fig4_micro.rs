//! Figure 4 benches: the Table 2 micro-benchmarks under all three
//! protocols, plus the MultiSync working-set sweep and the Threads
//! contention sweep. Plain `harness = false` main printing one line per
//! cell; the numeric report in bench_output.txt is what EXPERIMENTS.md
//! uses.

use thinlock_bench::{run_micro, run_micro_threads, ProtocolKind};
use thinlock_vm::programs::MicroBench;

const ITERS: i32 = 10_000;

fn cell(group: &str, bench: MicroBench, iters: i32) {
    for kind in ProtocolKind::ALL {
        let r = run_micro(kind, bench, iters);
        println!("{group:<16} {r}");
    }
}

fn main() {
    for bench in [
        MicroBench::NoSync,
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::Call,
        MicroBench::CallSync,
        MicroBench::NestedCallSync,
    ] {
        cell("fig4_micro", bench, ITERS);
    }

    for n in [8u32, 32, 64, 128, 512] {
        cell("fig4_multisync", MicroBench::MultiSync(n), ITERS / 20);
    }

    for n in [2u32, 4, 8] {
        for kind in ProtocolKind::ALL {
            let r = run_micro_threads(kind, n, 500);
            assert!(r.elapsed.as_nanos() > 0);
            println!("{:<16} {r}", "fig4_threads");
        }
    }
}
