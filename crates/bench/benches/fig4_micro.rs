//! Criterion benches for Figure 4: the Table 2 micro-benchmarks under
//! all three protocols, plus the MultiSync working-set sweep and the
//! Threads contention sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thinlock_bench::ProtocolKind;
use thinlock_runtime::heap::ObjRef;
use thinlock_vm::programs::MicroBench;
use thinlock_vm::{Value, Vm};

const ITERS: i32 = 10_000;

/// Builds protocol + VM once and times steady-state runs of `main`.
fn bench_micro(c: &mut Criterion, group: &str, bench: MicroBench, iters: i32) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for kind in ProtocolKind::ALL {
        let protocol = kind.build(bench.pool_size() as usize + 1, 1);
        let pool: Vec<ObjRef> = (0..bench.pool_size())
            .map(|_| protocol.heap().alloc().expect("heap sized for pool"))
            .collect();
        let program = bench.program();
        let vm = Vm::new(&*protocol, &program, pool).expect("valid program");
        let registration = protocol.registry().register().expect("registry room");
        let token = registration.token();
        g.bench_with_input(
            BenchmarkId::new(bench.to_string(), kind.name()),
            &iters,
            |b, &iters| {
                b.iter(|| {
                    let out = vm
                        .run("main", token, &[Value::Int(iters)])
                        .expect("clean run")
                        .and_then(Value::as_int)
                        .expect("returns count");
                    assert_eq!(out, iters);
                })
            },
        );
    }
    g.finish();
}

fn single_threaded(c: &mut Criterion) {
    for bench in [
        MicroBench::NoSync,
        MicroBench::Sync,
        MicroBench::NestedSync,
        MicroBench::Call,
        MicroBench::CallSync,
        MicroBench::NestedCallSync,
    ] {
        bench_micro(c, "fig4_micro", bench, ITERS);
    }
}

fn multisync_sweep(c: &mut Criterion) {
    for n in [8u32, 32, 64, 128, 512] {
        bench_micro(c, "fig4_multisync", MicroBench::MultiSync(n), ITERS / 20);
    }
}

fn threads_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_threads");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(400));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [2u32, 4, 8] {
        for kind in ProtocolKind::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("Threads {n}"), kind.name()),
                &n,
                |b, &n| {
                    b.iter(|| {
                        let r = thinlock_bench::run_micro_threads(kind, n, 500);
                        assert!(r.elapsed.as_nanos() > 0);
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Plot rendering dominates wall time on a single-CPU host; the
    // numeric report in bench_output.txt is what EXPERIMENTS.md uses.
    config = Criterion::default().without_plots();
    targets = single_threaded, multisync_sweep, threads_sweep
}
criterion_main!(benches);
