//! Counterexample capture: an ordered, lossless event log for replaying
//! model-checker schedules as readable timelines.
//!
//! The [`LockTracer`](crate::LockTracer) ring buffers are built for hot
//! production paths — per-thread, fixed capacity, willing to drop the
//! oldest events. A counterexample replay has the opposite needs: the
//! execution is tiny and fully serialized, and the log must be complete
//! and in global order, because two replays of the same schedule are
//! compared line-for-line to prove determinism. [`CounterexampleLog`]
//! therefore records every [`TraceSink`] event into one mutex-guarded
//! vector (fine off the hot path) and renders it as a text timeline or
//! JSON.

use std::fmt::Write as _;
use std::sync::Mutex;

use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;

use crate::json::JsonWriter;

/// One recorded protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Acting thread index, when the protocol knew it.
    pub thread: Option<u16>,
    /// Object operated on, when the protocol knew it.
    pub obj: Option<u32>,
    /// Stable event-kind name ([`TraceEventKind::name`]).
    pub kind: &'static str,
    /// Full event payload, debug-rendered (carries the kind's fields:
    /// depth, cause, spin rounds, …).
    pub detail: String,
}

/// A complete, ordered [`TraceSink`] log for counterexample replay.
#[derive(Debug, Default)]
pub struct CounterexampleLog {
    events: Mutex<Vec<RecordedEvent>>,
}

impl CounterexampleLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the recorded events, in global order.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Renders the log as a one-event-per-line timeline:
    /// `#seq  t<thread>  obj<obj>  <kind>  <detail>`. Stable across
    /// replays of the same schedule — the determinism contract the
    /// model checker's replay test asserts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, e) in self.events.lock().unwrap().iter().enumerate() {
            let t = e
                .thread
                .map(|t| format!("t{t}"))
                .unwrap_or_else(|| "t?".to_string());
            let o = e
                .obj
                .map(|o| format!("obj{o}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(out, "#{i:<3} {t:<4} {o:<6} {:<18} {}", e.kind, e.detail);
        }
        out
    }

    /// Exports the log as a JSON array of event objects.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_array();
        for e in self.events.lock().unwrap().iter() {
            w.begin_object();
            match e.thread {
                Some(t) => w.field_u64("thread", u64::from(t)),
                None => w.field_null("thread"),
            }
            match e.obj {
                Some(o) => w.field_u64("obj", u64::from(o)),
                None => w.field_null("obj"),
            }
            w.field_str("kind", e.kind);
            w.field_str("detail", &e.detail);
            w.end_object();
        }
        w.end_array();
        w.finish()
    }
}

impl TraceSink for CounterexampleLog {
    fn record(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        self.events.lock().unwrap().push(RecordedEvent {
            thread: thread.map(|t| t.get()),
            obj: obj.map(|o| o.index() as u32),
            kind: kind.name(),
            detail: format!("{kind:?}"),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_renders_deterministically() {
        let log = CounterexampleLog::new();
        log.record(
            Some(ThreadIndex::new(1).unwrap()),
            Some(ObjRef::from_index(2)),
            TraceEventKind::AcquireUnlocked,
        );
        log.record(
            None,
            Some(ObjRef::from_index(2)),
            TraceEventKind::UnlockThin,
        );
        assert_eq!(log.len(), 2);
        let first = log.render();
        assert_eq!(first, log.render(), "rendering is a pure function");
        assert!(first.contains("acquire-unlocked"));
        assert!(first.contains("t1"));
        assert!(first.contains("obj2"));
    }

    #[test]
    fn json_export_parses_back() {
        let log = CounterexampleLog::new();
        log.record(
            Some(ThreadIndex::new(3).unwrap()),
            None,
            TraceEventKind::Wait,
        );
        let json = log.to_json();
        let value = crate::parse(&json).expect("valid json");
        let events = value.as_array().expect("array");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("kind").and_then(|k| k.as_str()), Some("wait"));
    }
}
