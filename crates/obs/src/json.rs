//! A minimal JSON writer for the profile export.
//!
//! The workspace is dependency-free by policy (DESIGN.md §6), so the
//! profile's machine-readable export is produced by this small
//! comma-and-escaping-aware builder instead of a serialization crate.
//! It emits compact, valid JSON; it does not pretty-print.

use std::fmt::Write as _;

/// An incremental JSON builder.
///
/// Keys are written with the `field_*` methods inside objects and the
/// `elem_*` methods inside arrays; commas are inserted automatically.
///
/// # Example
///
/// ```
/// use thinlock_obs::json::JsonWriter;
///
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("name", "fig4");
/// w.begin_named_array("xs");
/// w.elem_u64(1);
/// w.elem_u64(2);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"fig4","xs":[1,2]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: true once it has a first element.
    stack: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        JsonWriter::default()
    }

    /// Returns the accumulated JSON text.
    ///
    /// # Panics
    ///
    /// Panics if containers are still open — a malformed document must
    /// not escape silently.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed JSON container");
        self.out
    }

    fn comma(&mut self) {
        if let Some(has_elem) = self.stack.last_mut() {
            if *has_elem {
                self.out.push(',');
            }
            *has_elem = true;
        }
    }

    fn key(&mut self, name: &str) {
        self.comma();
        self.push_string(name);
        self.out.push(':');
        // The value that follows is the element; don't double-comma.
        if let Some(has_elem) = self.stack.last_mut() {
            *has_elem = true;
        }
    }

    fn push_string(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(self.out, "\\u{:04x}", c as u32);
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Opens an anonymous object (document root or array element).
    pub fn begin_object(&mut self) {
        self.comma();
        self.out.push('{');
        self.stack.push(false);
    }

    /// Opens an object-valued field.
    pub fn begin_named_object(&mut self, name: &str) {
        self.key(name);
        self.out.push('{');
        self.stack.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.stack.pop().expect("end_object without begin");
        self.out.push('}');
    }

    /// Opens an anonymous array.
    pub fn begin_array(&mut self) {
        self.comma();
        self.out.push('[');
        self.stack.push(false);
    }

    /// Opens an array-valued field.
    pub fn begin_named_array(&mut self, name: &str) {
        self.key(name);
        self.out.push('[');
        self.stack.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.stack.pop().expect("end_array without begin");
        self.out.push(']');
    }

    /// Writes a string field.
    pub fn field_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.push_string(value);
    }

    /// Writes an unsigned-integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) {
        self.key(name);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a float field (`null` if not finite — JSON has no NaN).
    pub fn field_f64(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, name: &str, value: bool) {
        self.key(name);
        self.out.push_str(if value { "true" } else { "false" });
    }

    /// Writes a `null` field.
    pub fn field_null(&mut self, name: &str) {
        self.key(name);
        self.out.push_str("null");
    }

    /// Writes an unsigned-integer array element.
    pub fn elem_u64(&mut self, value: u64) {
        self.comma();
        let _ = write!(self.out, "{value}");
    }

    /// Writes a string array element.
    pub fn elem_str(&mut self, value: &str) {
        self.comma();
        self.push_string(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("n", 3);
        w.begin_named_object("inner");
        w.field_bool("ok", true);
        w.field_null("missing");
        w.end_object();
        w.begin_named_array("items");
        w.begin_object();
        w.field_f64("x", 1.5);
        w.end_object();
        w.elem_str("end");
        w.end_array();
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"n":3,"inner":{"ok":true,"missing":null},"items":[{"x":1.5},"end"]}"#
        );
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "\u{1}");
        w.end_object();
        // Expected output escapes U+0001 as a backslash-u sequence; the
        // expected string is built with format! so this source file stays
        assert_eq!(w.finish(), format!(r#"{{"s":"\{}"}}"#, "u0001"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", "a\"b\\c\nd");
        w.end_object();
        assert_eq!(w.finish(), r#"{"s":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("bad", f64::NAN);
        w.end_object();
        assert_eq!(w.finish(), r#"{"bad":null}"#);
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unbalanced_document_panics() {
        let mut w = JsonWriter::new();
        w.begin_object();
        let _ = w.finish();
    }
}
