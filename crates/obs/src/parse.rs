//! A minimal JSON parser — the read half of [`crate::json`].
//!
//! The workspace is dependency-free by policy (DESIGN.md §6), so the
//! benchmark pipeline's machine-readable artifacts (`BENCH_thinlock.json`,
//! `scripts/bench_baseline.json`) are read back by this small recursive-
//! descent parser instead of a serialization crate. It accepts exactly
//! the JSON the [`JsonWriter`](crate::json::JsonWriter) emits (plus
//! insignificant whitespace), which is all the repo ever needs to parse.
//!
//! Numbers round-trip exactly: Rust's `f64` `Display` prints the shortest
//! representation that parses back to the same bits, and `str::parse`
//! is correctly rounded, so `write → parse → write` is the identity on
//! every document the writer can produce.

use std::fmt;

/// A parsed JSON document.
///
/// Object member order is preserved (members are a `Vec`, not a map):
/// the repo's documents are written with a fixed field order and
/// compared structurally in tests.
///
/// # Example
///
/// ```
/// use thinlock_obs::parse::{parse, JsonValue};
///
/// let doc = parse(r#"{"id":"fig4/Sync","value":32.9,"tags":[1,2]}"#)?;
/// assert_eq!(doc.get("id").and_then(JsonValue::as_str), Some("fig4/Sync"));
/// assert_eq!(doc.get("value").and_then(JsonValue::as_f64), Some(32.9));
/// assert_eq!(doc.get("tags").and_then(JsonValue::as_array).map(|a| a.len()), Some(2));
/// # Ok::<(), thinlock_obs::parse::JsonParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the writer only emits finite values).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Why a document failed to parse, with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document; trailing content is an error.
///
/// # Errors
///
/// [`JsonParseError`] naming the byte offset of the first problem.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonParseError {
        JsonParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // The writer only emits \u for control chars
                            // (never surrogate pairs), so a lone surrogate
                            // is a malformed document.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.error("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonParseError {
                message: format!("invalid number `{text}`"),
                offset: start,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonWriter;

    #[test]
    fn parses_writer_output_exactly() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "fig4/Sync \"quoted\"\n");
        w.field_u64("n", 18);
        w.field_f64("value", 32.9);
        w.field_f64("nan", f64::NAN); // writer emits null
        w.field_bool("ok", true);
        w.begin_named_array("xs");
        w.elem_u64(1);
        w.elem_str("two");
        w.end_array();
        w.end_object();
        let text = w.finish();
        let doc = parse(&text).unwrap();
        assert_eq!(
            doc.get("name").and_then(JsonValue::as_str),
            Some("fig4/Sync \"quoted\"\n")
        );
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(18));
        assert_eq!(doc.get("value").and_then(JsonValue::as_f64), Some(32.9));
        assert!(doc.get("nan").unwrap().is_null());
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        let xs = doc.get("xs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_str(), Some("two"));
    }

    #[test]
    fn float_round_trip_is_exact() {
        for &v in &[
            32.9f64,
            0.1 + 0.2,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            -0.0,
            1e-308,
        ] {
            let text = format!("{v}");
            let parsed = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn whitespace_and_nesting() {
        let doc = parse(" { \"a\" : [ 1 , { \"b\" : null } ] , \"c\" : -2.5e1 } ").unwrap();
        let a = doc.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a[1].get("b").unwrap().is_null());
        assert_eq!(doc.get("c").and_then(JsonValue::as_f64), Some(-25.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        let doc = parse("\"a\\u0001b\\u00e9\"").unwrap();
        assert_eq!(doc.as_str(), Some("a\u{1}b\u{e9}"));
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01a").is_err());
        assert!(err.to_string().contains("byte 6"));
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(parse("[]").unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn object_get_preserves_order_and_misses() {
        let doc = parse(r#"{"x":1,"y":2}"#).unwrap();
        assert!(doc.get("z").is_none());
        let members = doc.as_object().unwrap();
        assert_eq!(members[0].0, "x");
        assert_eq!(members[1].0, "y");
        assert!(JsonValue::Null.get("x").is_none());
    }
}
