//! The fixed-capacity event ring: lock-free writes, seqlock snapshots.
//!
//! One ring per thread, sized at tracer construction — the hot path
//! never allocates. A write claims a global position with a relaxed
//! `fetch_add`, marks the slot in-progress (odd sequence number), stores
//! the event words with relaxed stores, then publishes with a release
//! store of the even sequence number. Old events are overwritten on
//! wraparound; the number of events lost this way is exact arithmetic
//! over the head counter, reported as `dropped` in every snapshot.
//!
//! Snapshots run concurrently with writers: a reader validates each slot
//! with the classic seqlock protocol (read sequence, read data, re-read
//! sequence; keep only if both reads saw the same even value). A slot
//! mid-overwrite is simply skipped — its old event counts as dropped,
//! its new event belongs to a later snapshot — so a snapshot never
//! blocks a writer and never returns a torn event.
//!
//! The sequence number of a slot is derived from the global position
//! (`2·pos + 1` while writing, `2·pos + 2` when published), so it grows
//! monotonically across wraparounds and doubles as the event's position:
//! consistency validation and drop accounting come from the same word.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// An event as stored in a ring: position plus the three data words.
/// Decoding into a [`LockEvent`](crate::event::LockEvent) happens at the
/// tracer layer; the ring is payload-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Position in this ring's total recording order (0 = first ever).
    pub index: u64,
    /// First data word (the tracer stores the timestamp here).
    pub time: u64,
    /// Second data word (packed kind/thread/payload).
    pub meta: u64,
    /// Third data word (packed object reference).
    pub obj: u64,
}

#[derive(Debug, Default)]
struct Slot {
    /// 0 = never written; `2·pos + 1` = write in progress; `2·pos + 2` =
    /// holds the event recorded at global position `pos`.
    seq: AtomicU64,
    time: AtomicU64,
    meta: AtomicU64,
    obj: AtomicU64,
}

/// A fixed-capacity single-writer ring of lock events.
///
/// Any number of threads may snapshot concurrently, but at most one
/// thread should write at a time (the tracer enforces this by giving
/// each thread its own ring). Concurrent writers are still memory-safe —
/// everything is atomics — but two writers that wrap onto the same slot
/// simultaneously could publish an event attributed to the wrong
/// position, so the multi-writer shared ring is documented best-effort.
///
/// # Example
///
/// ```
/// use thinlock_obs::ring::EventRing;
///
/// let ring = EventRing::with_capacity(4);
/// for i in 0..6 {
///     ring.push(i, i * 10, i * 100);
/// }
/// let snap = ring.snapshot();
/// assert_eq!(snap.recorded, 6);
/// assert_eq!(snap.dropped, 2); // capacity 4: the two oldest were overwritten
/// assert_eq!(snap.events.len(), 4);
/// assert_eq!(snap.events[0].index, 2); // oldest surviving event
/// ```
#[derive(Debug)]
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

/// A consistent view of a ring's surviving events plus drop accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Surviving events, sorted by position ascending. Every event is
    /// internally consistent (the seqlock rejected torn reads).
    pub events: Vec<RawEvent>,
    /// Total events ever pushed at the moment the snapshot started.
    pub recorded: u64,
    /// `recorded - events.len()`: events overwritten by wraparound or
    /// mid-write while the snapshot ran.
    pub dropped: u64,
}

impl EventRing {
    /// Creates a ring holding the most recent `capacity` events
    /// (rounded up to a power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        EventRing {
            slots: (0..cap).map(|_| Slot::default()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots (events retained before wraparound).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events pushed over the ring's lifetime.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to wraparound so far (monotone, exact between pushes).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records an event. Lock-free, allocation-free; wraps over the
    /// oldest event when full.
    #[inline]
    pub fn push(&self, time: u64, meta: u64, obj: u64) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        slot.seq.store(2 * pos + 1, Ordering::Relaxed);
        // Order the in-progress marker before the data stores so a
        // reader that observes new data also observes an odd (or newer)
        // sequence and rejects the slot.
        fence(Ordering::Release);
        slot.time.store(time, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.obj.store(obj, Ordering::Relaxed);
        slot.seq.store(2 * pos + 2, Ordering::Release);
    }

    /// Collects the surviving events without stopping writers.
    pub fn snapshot(&self) -> RingSnapshot {
        let recorded = self.head.load(Ordering::Acquire);
        let mut events = Vec::with_capacity(self.slots.len().min(recorded as usize));
        for slot in self.slots.iter() {
            // A slot being overwritten right now is skipped rather than
            // retried: the retry would only ever surface an event newer
            // than `recorded`, which we exclude anyway to keep the
            // accounting (`events + dropped == recorded`) exact.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 || seq % 2 == 1 {
                continue; // empty or mid-write
            }
            let time = slot.time.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let obj = slot.obj.load(Ordering::Relaxed);
            // Order the data loads before the validating re-read.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // overwritten while reading: torn, discard
            }
            let index = (seq - 2) / 2;
            if index >= recorded {
                continue; // published after the snapshot began
            }
            events.push(RawEvent {
                index,
                time,
                meta,
                obj,
            });
        }
        events.sort_unstable_by_key(|e| e.index);
        let dropped = recorded - events.len() as u64;
        RingSnapshot {
            events,
            recorded,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_snapshot() {
        let ring = EventRing::with_capacity(8);
        let snap = ring.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.recorded, 0);
        assert_eq!(snap.dropped, 0);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::with_capacity(3).capacity(), 4);
        assert_eq!(EventRing::with_capacity(8).capacity(), 8);
        assert_eq!(EventRing::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn events_survive_in_order_below_capacity() {
        let ring = EventRing::with_capacity(8);
        for i in 0..5u64 {
            ring.push(i, 100 + i, 200 + i);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.dropped, 0);
        let idx: Vec<u64> = snap.events.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4]);
        for e in &snap.events {
            assert_eq!(e.time, e.index);
            assert_eq!(e.meta, 100 + e.index);
            assert_eq!(e.obj, 200 + e.index);
        }
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let ring = EventRing::with_capacity(4);
        for i in 0..11u64 {
            ring.push(i, i, i);
        }
        assert_eq!(ring.recorded(), 11);
        assert_eq!(ring.dropped(), 7);
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, 11);
        assert_eq!(snap.dropped, 7);
        let idx: Vec<u64> = snap.events.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![7, 8, 9, 10]);
    }

    #[test]
    fn accounting_identity_holds() {
        let ring = EventRing::with_capacity(16);
        for i in 0..100u64 {
            ring.push(i, i, i);
            let snap = ring.snapshot();
            assert_eq!(snap.events.len() as u64 + snap.dropped, snap.recorded);
        }
    }
}
