//! Aggregation of a trace snapshot into a per-object contention profile.
//!
//! A raw event stream answers "what happened"; the profile answers the
//! questions the paper's tables pose — which objects are hottest, how
//! much spinning contention cost, and when and why each lock inflated.
//! [`ContentionProfile::build`] folds a [`TraceSnapshot`] into:
//!
//! - one [`ObjectProfile`] per attributed object, ranked hottest-first,
//! - an inflation timeline (every [`Inflated`](TraceEventKind::Inflated)
//!   event with its cause, time, thread, and object),
//! - a log₂ histogram of spin rounds burned per contended acquisition,
//! - global counters for monitor allocations, elision hits, and
//!   pre-inflation hints.
//!
//! The profile renders as text (its [`Display`](std::fmt::Display) impl
//! backs the `profile` section of the `reproduce` binary) and as JSON
//! via [`ContentionProfile::to_json`].

use std::collections::BTreeMap;
use std::fmt;

use thinlock_runtime::events::TraceEventKind;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;
use thinlock_runtime::stats::InflationCause;

use crate::json::JsonWriter;
use crate::tracer::TraceSnapshot;

/// Buckets in the spin-rounds histogram: bucket 0 is zero rounds,
/// bucket `i ≥ 1` covers `2^(i-1) ..= 2^i - 1` rounds, and the final
/// bucket absorbs everything beyond.
pub const SPIN_BUCKETS: usize = 16;

/// One inflation, as placed on the profile's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Inflation {
    /// Nanoseconds since the tracer epoch when the lock inflated.
    pub time_ns: u64,
    /// The inflating thread, if the event was attributed to one.
    pub thread: Option<ThreadIndex>,
    /// The object whose lock inflated, if attributed.
    pub obj: Option<ObjRef>,
    /// Why the inflation happened.
    pub cause: InflationCause,
}

/// Aggregated lock activity for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectProfile {
    /// The object these counters describe.
    pub obj: ObjRef,
    /// Scenario-1 fast-path acquisitions (object was unlocked).
    pub acquire_unlocked: u64,
    /// Nested re-acquisitions by the owner.
    pub acquire_nested: u64,
    /// Acquisitions through the fat monitor after inflation.
    pub acquire_fat: u64,
    /// The subset of fat acquisitions that had to queue (scenario 5).
    pub acquire_fat_contended: u64,
    /// Scenario-4 acquisitions: spun on a thin lock held elsewhere.
    pub acquire_contended_thin: u64,
    /// Total backoff rounds burned spinning on this object.
    pub spin_rounds: u64,
    /// Store-based thin unlocks.
    pub unlocks_thin: u64,
    /// Monitor fat unlocks.
    pub unlocks_fat: u64,
    /// `wait` operations.
    pub waits: u64,
    /// `notify`/`notifyAll` operations.
    pub notifies: u64,
    /// Synchronization operations elided on this object by the static
    /// escape analysis.
    pub elisions: u64,
    /// Try/timed acquisitions of this object that gave up.
    pub acquire_timeouts: u64,
    /// Times this object's lock was force-released because its owner's
    /// registration dropped without unlocking.
    pub orphan_reclaims: u64,
    /// Field reads the VM performed on this object.
    pub field_reads: u64,
    /// Field writes the VM performed on this object.
    pub field_writes: u64,
    /// Data races the dynamic Eraser sanitizer reported on this object
    /// (at most one per field).
    pub races: u64,
    /// Times this object's fat word was deflated back to the neutral
    /// thin shape (always 0 under the one-way thin backend).
    pub deflations: u64,
    /// The object's *first* inflation, if its lock ever inflated. Under
    /// the thin backend inflation is one-way so there is at most one; a
    /// deflating backend may re-inflate, in which case the earliest
    /// event is kept.
    pub inflation: Option<Inflation>,
}

impl ObjectProfile {
    fn new(obj: ObjRef) -> Self {
        ObjectProfile {
            obj,
            acquire_unlocked: 0,
            acquire_nested: 0,
            acquire_fat: 0,
            acquire_fat_contended: 0,
            acquire_contended_thin: 0,
            spin_rounds: 0,
            unlocks_thin: 0,
            unlocks_fat: 0,
            waits: 0,
            notifies: 0,
            elisions: 0,
            acquire_timeouts: 0,
            orphan_reclaims: 0,
            field_reads: 0,
            field_writes: 0,
            races: 0,
            deflations: 0,
            inflation: None,
        }
    }

    /// Total acquisitions of this object's lock, across all scenarios.
    pub fn acquires(&self) -> u64 {
        self.acquire_unlocked + self.acquire_nested + self.acquire_fat + self.acquire_contended_thin
    }
}

/// The merged, aggregated view of one traced run.
///
/// # Example
///
/// ```
/// use thinlock_obs::{ContentionProfile, LockTracer, TracerConfig};
/// use thinlock_runtime::events::{TraceEventKind, TraceSink};
/// use thinlock_runtime::heap::ObjRef;
/// use thinlock_runtime::stats::InflationCause;
///
/// let tracer = LockTracer::new(TracerConfig::default());
/// let obj = ObjRef::from_index(3);
/// tracer.record(None, Some(obj), TraceEventKind::AcquireUnlocked);
/// tracer.record(None, Some(obj), TraceEventKind::Inflated {
///     cause: InflationCause::Contention,
/// });
/// let profile = ContentionProfile::build(&tracer.snapshot());
/// assert_eq!(profile.objects.len(), 1);
/// assert_eq!(profile.objects[0].acquires(), 1);
/// assert_eq!(profile.inflations_by_cause(), [1, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionProfile {
    /// Per-object profiles, hottest first (most acquisitions; ties
    /// broken by object index so the order is deterministic).
    pub objects: Vec<ObjectProfile>,
    /// Every inflation in the trace, sorted by time.
    pub inflations: Vec<Inflation>,
    /// log₂ histogram of spin rounds per contended-thin acquisition
    /// (see [`SPIN_BUCKETS`]).
    pub spin_histogram: [u64; SPIN_BUCKETS],
    /// Fat-lock slots handed out by the monitor table.
    pub monitors_allocated: u64,
    /// Fat words restored to the neutral thin shape by a deflating
    /// backend (always 0 under the one-way thin backend).
    pub deflations: u64,
    /// Monitor operations elided by the static escape analysis.
    pub elision_hits: u64,
    /// Pre-inflation hints delivered to the protocol.
    pub pre_inflate_hints: u64,
    /// The subset of hints that actually changed a lock's shape.
    pub pre_inflate_applied: u64,
    /// Locks force-released by the registry's orphan sweep.
    pub orphans_reclaimed: u64,
    /// The subset of orphan reclaims that released a fat monitor.
    pub orphans_reclaimed_fat: u64,
    /// Distinct waits-for cycles reported by the deadlock watchdog or a
    /// timed acquisition's expiry scan.
    pub deadlocks_detected: u64,
    /// Try/timed acquisitions that gave up without the lock.
    pub acquire_timeouts: u64,
    /// Field reads the VM streamed through the sink.
    pub field_reads: u64,
    /// Field writes the VM streamed through the sink.
    pub field_writes: u64,
    /// Data races reported by the dynamic Eraser sanitizer.
    pub races_detected: u64,
    /// Decoded events the profile is built from.
    pub events: u64,
    /// Events recorded by the tracer (surviving + dropped).
    pub recorded: u64,
    /// Events lost to ring wraparound.
    pub dropped: u64,
    /// Events redirected to the shared ring (thread index out of range).
    pub redirected: u64,
}

fn spin_bucket(rounds: u32) -> usize {
    if rounds == 0 {
        0
    } else {
        let bucket = 64 - u64::from(rounds).leading_zeros() as usize;
        bucket.min(SPIN_BUCKETS - 1)
    }
}

impl ContentionProfile {
    /// Folds a snapshot into the aggregated profile.
    pub fn build(snapshot: &TraceSnapshot) -> Self {
        let mut by_obj: BTreeMap<usize, ObjectProfile> = BTreeMap::new();
        let mut inflations = Vec::new();
        let mut spin_histogram = [0u64; SPIN_BUCKETS];
        let mut monitors_allocated = 0;
        let mut deflations = 0;
        let mut elision_hits = 0;
        let mut pre_inflate_hints = 0;
        let mut pre_inflate_applied = 0;
        let mut orphans_reclaimed = 0;
        let mut orphans_reclaimed_fat = 0;
        let mut deadlocks_detected = 0;
        let mut acquire_timeouts = 0;
        let mut field_reads = 0;
        let mut field_writes = 0;
        let mut races_detected = 0;

        for event in &snapshot.events {
            let profile = event.obj.map(|o| {
                by_obj
                    .entry(o.index())
                    .or_insert_with(|| ObjectProfile::new(o))
            });
            match event.kind {
                TraceEventKind::AcquireUnlocked => {
                    if let Some(p) = profile {
                        p.acquire_unlocked += 1;
                    }
                }
                TraceEventKind::AcquireNested { .. } => {
                    if let Some(p) = profile {
                        p.acquire_nested += 1;
                    }
                }
                TraceEventKind::AcquireFat { contended } => {
                    if let Some(p) = profile {
                        p.acquire_fat += 1;
                        if contended {
                            p.acquire_fat_contended += 1;
                        }
                    }
                }
                TraceEventKind::AcquireContendedThin { spin_rounds } => {
                    spin_histogram[spin_bucket(spin_rounds)] += 1;
                    if let Some(p) = profile {
                        p.acquire_contended_thin += 1;
                        p.spin_rounds += u64::from(spin_rounds);
                    }
                }
                TraceEventKind::Inflated { cause } => {
                    let inflation = Inflation {
                        time_ns: event.time_ns,
                        thread: event.thread,
                        obj: event.obj,
                        cause,
                    };
                    inflations.push(inflation);
                    if let Some(p) = profile {
                        // Inflation is one-way; keep the earliest event
                        // if a duplicate ever slips in.
                        p.inflation.get_or_insert(inflation);
                    }
                }
                TraceEventKind::UnlockThin => {
                    if let Some(p) = profile {
                        p.unlocks_thin += 1;
                    }
                }
                TraceEventKind::UnlockFat => {
                    if let Some(p) = profile {
                        p.unlocks_fat += 1;
                    }
                }
                TraceEventKind::Wait => {
                    if let Some(p) = profile {
                        p.waits += 1;
                    }
                }
                TraceEventKind::Notify => {
                    if let Some(p) = profile {
                        p.notifies += 1;
                    }
                }
                TraceEventKind::MonitorAllocated { .. } => monitors_allocated += 1,
                TraceEventKind::Deflated { .. } => {
                    deflations += 1;
                    if let Some(p) = profile {
                        p.deflations += 1;
                    }
                }
                TraceEventKind::ElisionHit => {
                    elision_hits += 1;
                    if let Some(p) = profile {
                        p.elisions += 1;
                    }
                }
                TraceEventKind::PreInflateHint { applied } => {
                    pre_inflate_hints += 1;
                    if applied {
                        pre_inflate_applied += 1;
                    }
                }
                TraceEventKind::OrphanReclaimed { fat } => {
                    orphans_reclaimed += 1;
                    if fat {
                        orphans_reclaimed_fat += 1;
                    }
                    if let Some(p) = profile {
                        p.orphan_reclaims += 1;
                    }
                }
                TraceEventKind::DeadlockDetected { .. } => deadlocks_detected += 1,
                TraceEventKind::AcquireTimedOut => {
                    acquire_timeouts += 1;
                    if let Some(p) = profile {
                        p.acquire_timeouts += 1;
                    }
                }
                TraceEventKind::FieldAccess { write, .. } => {
                    if write {
                        field_writes += 1;
                    } else {
                        field_reads += 1;
                    }
                    if let Some(p) = profile {
                        if write {
                            p.field_writes += 1;
                        } else {
                            p.field_reads += 1;
                        }
                    }
                }
                TraceEventKind::RaceDetected { .. } => {
                    races_detected += 1;
                    if let Some(p) = profile {
                        p.races += 1;
                    }
                }
            }
        }

        let mut objects: Vec<ObjectProfile> = by_obj.into_values().collect();
        objects.sort_by(|a, b| {
            b.acquires()
                .cmp(&a.acquires())
                .then(a.obj.index().cmp(&b.obj.index()))
        });
        inflations.sort_by_key(|i| i.time_ns);

        ContentionProfile {
            objects,
            inflations,
            spin_histogram,
            monitors_allocated,
            deflations,
            elision_hits,
            pre_inflate_hints,
            pre_inflate_applied,
            orphans_reclaimed,
            orphans_reclaimed_fat,
            deadlocks_detected,
            acquire_timeouts,
            field_reads,
            field_writes,
            races_detected,
            events: snapshot.events.len() as u64,
            recorded: snapshot.recorded,
            dropped: snapshot.dropped,
            redirected: snapshot.redirected,
        }
    }

    /// Inflation counts indexed like [`InflationCause::ALL`] — directly
    /// comparable with
    /// [`StatsSnapshot::inflations`](thinlock_runtime::stats::StatsSnapshot::inflations).
    pub fn inflations_by_cause(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        for i in &self.inflations {
            counts[i.cause.code() as usize] += 1;
        }
        counts
    }

    /// Total spin rounds across every object.
    pub fn total_spin_rounds(&self) -> u64 {
        self.objects.iter().map(|o| o.spin_rounds).sum()
    }

    /// The `n` hottest objects (most lock acquisitions).
    pub fn hottest(&self, n: usize) -> &[ObjectProfile] {
        &self.objects[..self.objects.len().min(n)]
    }

    /// Serializes the whole profile as a compact JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("events", self.events);
        w.field_u64("recorded", self.recorded);
        w.field_u64("dropped", self.dropped);
        w.field_u64("redirected", self.redirected);
        w.field_u64("monitors_allocated", self.monitors_allocated);
        w.field_u64("deflations", self.deflations);
        w.field_u64("elision_hits", self.elision_hits);
        w.field_u64("pre_inflate_hints", self.pre_inflate_hints);
        w.field_u64("pre_inflate_applied", self.pre_inflate_applied);
        w.field_u64("orphans_reclaimed", self.orphans_reclaimed);
        w.field_u64("orphans_reclaimed_fat", self.orphans_reclaimed_fat);
        w.field_u64("deadlocks_detected", self.deadlocks_detected);
        w.field_u64("acquire_timeouts", self.acquire_timeouts);
        w.field_u64("field_reads", self.field_reads);
        w.field_u64("field_writes", self.field_writes);
        w.field_u64("races_detected", self.races_detected);

        w.begin_named_object("inflations_by_cause");
        let by_cause = self.inflations_by_cause();
        for (cause, count) in InflationCause::ALL.iter().zip(by_cause) {
            w.field_u64(&cause.to_string(), count);
        }
        w.end_object();

        w.begin_named_array("objects");
        for o in &self.objects {
            w.begin_object();
            w.field_u64("obj", o.obj.index() as u64);
            w.field_u64("acquires", o.acquires());
            w.field_u64("acquire_unlocked", o.acquire_unlocked);
            w.field_u64("acquire_nested", o.acquire_nested);
            w.field_u64("acquire_fat", o.acquire_fat);
            w.field_u64("acquire_fat_contended", o.acquire_fat_contended);
            w.field_u64("acquire_contended_thin", o.acquire_contended_thin);
            w.field_u64("spin_rounds", o.spin_rounds);
            w.field_u64("unlocks_thin", o.unlocks_thin);
            w.field_u64("unlocks_fat", o.unlocks_fat);
            w.field_u64("waits", o.waits);
            w.field_u64("notifies", o.notifies);
            w.field_u64("elisions", o.elisions);
            w.field_u64("acquire_timeouts", o.acquire_timeouts);
            w.field_u64("orphan_reclaims", o.orphan_reclaims);
            w.field_u64("field_reads", o.field_reads);
            w.field_u64("field_writes", o.field_writes);
            w.field_u64("races", o.races);
            w.field_u64("deflations", o.deflations);
            match o.inflation {
                Some(i) => {
                    w.begin_named_object("inflation");
                    w.field_u64("time_ns", i.time_ns);
                    w.field_str("cause", &i.cause.to_string());
                    match i.thread {
                        Some(t) => w.field_u64("thread", u64::from(t.get())),
                        None => w.field_null("thread"),
                    }
                    w.end_object();
                }
                None => w.field_null("inflation"),
            }
            w.end_object();
        }
        w.end_array();

        w.begin_named_array("inflation_timeline");
        for i in &self.inflations {
            w.begin_object();
            w.field_u64("time_ns", i.time_ns);
            w.field_str("cause", &i.cause.to_string());
            match i.thread {
                Some(t) => w.field_u64("thread", u64::from(t.get())),
                None => w.field_null("thread"),
            }
            match i.obj {
                Some(o) => w.field_u64("obj", o.index() as u64),
                None => w.field_null("obj"),
            }
            w.end_object();
        }
        w.end_array();

        w.begin_named_array("spin_histogram");
        for &count in &self.spin_histogram {
            w.elem_u64(count);
        }
        w.end_array();

        w.end_object();
        w.finish()
    }
}

impl fmt::Display for ContentionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "events: {} decoded of {} recorded ({} dropped, {} redirected)",
            self.events, self.recorded, self.dropped, self.redirected
        )?;
        writeln!(
            f,
            "monitors allocated: {}; elision hits: {}; pre-inflate hints: {} ({} applied)",
            self.monitors_allocated,
            self.elision_hits,
            self.pre_inflate_hints,
            self.pre_inflate_applied
        )?;
        if self.deflations > 0 {
            writeln!(f, "deflations: {}", self.deflations)?;
        }
        if self.field_reads + self.field_writes + self.races_detected > 0 {
            writeln!(
                f,
                "field traffic: {} reads, {} writes; races detected: {}",
                self.field_reads, self.field_writes, self.races_detected
            )?;
        }
        if self.orphans_reclaimed + self.deadlocks_detected + self.acquire_timeouts > 0 {
            writeln!(
                f,
                "recovery: {} orphaned locks reclaimed ({} fat); {} deadlocks detected; {} acquisitions timed out",
                self.orphans_reclaimed,
                self.orphans_reclaimed_fat,
                self.deadlocks_detected,
                self.acquire_timeouts
            )?;
        }

        writeln!(f, "hottest objects:")?;
        writeln!(
            f,
            "  {:>8} {:>9} {:>7} {:>7} {:>6} {:>6} {:>6}  inflated",
            "obj", "acquires", "fat", "nested", "spins", "waits", "elide"
        )?;
        for o in self.hottest(10) {
            let inflated = match o.inflation {
                Some(i) => format!("{} @ {} ns", i.cause, i.time_ns),
                None => "-".to_string(),
            };
            writeln!(
                f,
                "  {:>8} {:>9} {:>7} {:>7} {:>6} {:>6} {:>6}  {}",
                format!("#{}", o.obj.index()),
                o.acquires(),
                o.acquire_fat,
                o.acquire_nested,
                o.spin_rounds,
                o.waits,
                o.elisions,
                inflated
            )?;
        }
        if self.objects.len() > 10 {
            writeln!(f, "  ... and {} more objects", self.objects.len() - 10)?;
        }

        let by_cause = self.inflations_by_cause();
        writeln!(
            f,
            "inflations: {} (contention {}, overflow {}, wait {}, hint {})",
            self.inflations.len(),
            by_cause[0],
            by_cause[1],
            by_cause[2],
            by_cause[3]
        )?;
        writeln!(f, "inflation timeline:")?;
        for i in &self.inflations {
            let obj = i.obj.map_or("?".to_string(), |o| format!("#{}", o.index()));
            let thread = i.thread.map_or("-".to_string(), |t| t.get().to_string());
            writeln!(
                f,
                "  t={:>10} ns  obj {:>6}  thread {:>3}  cause {}",
                i.time_ns, obj, thread, i.cause
            )?;
        }

        write!(
            f,
            "spin-rounds histogram (log2 buckets, {} total rounds): {:?}",
            self.total_spin_rounds(),
            self.spin_histogram
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{LockTracer, TracerConfig};
    use thinlock_runtime::events::TraceSink;

    fn tidx(i: u16) -> ThreadIndex {
        ThreadIndex::new(i).unwrap()
    }

    #[test]
    fn spin_buckets_are_log2() {
        assert_eq!(spin_bucket(0), 0);
        assert_eq!(spin_bucket(1), 1);
        assert_eq!(spin_bucket(2), 2);
        assert_eq!(spin_bucket(3), 2);
        assert_eq!(spin_bucket(4), 3);
        assert_eq!(spin_bucket(1 << 20), SPIN_BUCKETS - 1);
        assert_eq!(spin_bucket(u32::MAX), SPIN_BUCKETS - 1);
    }

    #[test]
    fn objects_rank_hottest_first() {
        let tracer = LockTracer::new(TracerConfig::default());
        let cold = ObjRef::from_index(1);
        let hot = ObjRef::from_index(2);
        tracer.record(Some(tidx(1)), Some(cold), TraceEventKind::AcquireUnlocked);
        for _ in 0..5 {
            tracer.record(Some(tidx(1)), Some(hot), TraceEventKind::AcquireUnlocked);
            tracer.record(Some(tidx(1)), Some(hot), TraceEventKind::UnlockThin);
        }
        let profile = ContentionProfile::build(&tracer.snapshot());
        assert_eq!(profile.objects.len(), 2);
        assert_eq!(profile.objects[0].obj, hot);
        assert_eq!(profile.objects[0].acquires(), 5);
        assert_eq!(profile.objects[0].unlocks_thin, 5);
        assert_eq!(profile.hottest(1).len(), 1);
    }

    #[test]
    fn inflation_timeline_and_attribution() {
        let tracer = LockTracer::new(TracerConfig::default());
        let a = ObjRef::from_index(10);
        let b = ObjRef::from_index(11);
        tracer.record(
            Some(tidx(2)),
            Some(a),
            TraceEventKind::AcquireContendedThin { spin_rounds: 17 },
        );
        tracer.record(
            Some(tidx(2)),
            Some(a),
            TraceEventKind::Inflated {
                cause: InflationCause::Contention,
            },
        );
        tracer.record(
            Some(tidx(1)),
            Some(b),
            TraceEventKind::Inflated {
                cause: InflationCause::WaitNotify,
            },
        );
        let profile = ContentionProfile::build(&tracer.snapshot());
        assert_eq!(profile.inflations.len(), 2);
        assert_eq!(profile.inflations_by_cause(), [1, 0, 1, 0]);
        let pa = profile.objects.iter().find(|o| o.obj == a).unwrap();
        assert_eq!(pa.inflation.unwrap().cause, InflationCause::Contention);
        assert_eq!(pa.spin_rounds, 17);
        assert_eq!(profile.spin_histogram[spin_bucket(17)], 1);
        // Timeline is time-sorted.
        assert!(profile.inflations[0].time_ns <= profile.inflations[1].time_ns);
    }

    #[test]
    fn global_counters_cover_unattributed_events() {
        let tracer = LockTracer::new(TracerConfig::default());
        tracer.record(None, None, TraceEventKind::MonitorAllocated { index: 4 });
        tracer.record(None, None, TraceEventKind::ElisionHit);
        tracer.record(None, None, TraceEventKind::PreInflateHint { applied: true });
        tracer.record(
            None,
            None,
            TraceEventKind::PreInflateHint { applied: false },
        );
        let profile = ContentionProfile::build(&tracer.snapshot());
        assert_eq!(profile.monitors_allocated, 1);
        assert_eq!(profile.elision_hits, 1);
        assert_eq!(profile.pre_inflate_hints, 2);
        assert_eq!(profile.pre_inflate_applied, 1);
        assert!(profile.objects.is_empty());
    }

    #[test]
    fn recovery_events_are_counted_and_attributed() {
        let tracer = LockTracer::new(TracerConfig::default());
        let obj = ObjRef::from_index(9);
        tracer.record(Some(tidx(3)), Some(obj), TraceEventKind::AcquireTimedOut);
        tracer.record(
            Some(tidx(3)),
            Some(obj),
            TraceEventKind::DeadlockDetected { threads: 2 },
        );
        tracer.record(
            Some(tidx(3)),
            Some(obj),
            TraceEventKind::OrphanReclaimed { fat: true },
        );
        tracer.record(
            Some(tidx(4)),
            None,
            TraceEventKind::OrphanReclaimed { fat: false },
        );
        let profile = ContentionProfile::build(&tracer.snapshot());
        assert_eq!(profile.acquire_timeouts, 1);
        assert_eq!(profile.deadlocks_detected, 1);
        assert_eq!(profile.orphans_reclaimed, 2);
        assert_eq!(profile.orphans_reclaimed_fat, 1);
        let po = profile.objects.iter().find(|o| o.obj == obj).unwrap();
        assert_eq!(po.acquire_timeouts, 1);
        assert_eq!(po.orphan_reclaims, 1);
        let text = profile.to_string();
        assert!(text.contains("recovery: 2 orphaned locks reclaimed (1 fat)"));
        let json = profile.to_json();
        assert!(json.contains(r#""orphans_reclaimed":2"#));
        assert!(json.contains(r#""deadlocks_detected":1"#));
        assert!(json.contains(r#""acquire_timeouts":1"#));
    }

    #[test]
    fn field_accesses_and_race_verdicts_are_counted() {
        let tracer = LockTracer::new(TracerConfig::default());
        let obj = ObjRef::from_index(2);
        tracer.record(
            Some(tidx(1)),
            Some(obj),
            TraceEventKind::FieldAccess {
                field: 0,
                write: false,
            },
        );
        tracer.record(
            Some(tidx(2)),
            Some(obj),
            TraceEventKind::FieldAccess {
                field: 0,
                write: true,
            },
        );
        tracer.record(
            Some(tidx(2)),
            Some(obj),
            TraceEventKind::RaceDetected { field: 0 },
        );
        let snap = tracer.snapshot();
        // Exact accounting even with the new event kinds in the stream.
        assert_eq!(snap.events.len() as u64 + snap.dropped, snap.recorded);
        let profile = ContentionProfile::build(&snap);
        assert_eq!(profile.field_reads, 1);
        assert_eq!(profile.field_writes, 1);
        assert_eq!(profile.races_detected, 1);
        let po = profile.objects.iter().find(|o| o.obj == obj).unwrap();
        assert_eq!((po.field_reads, po.field_writes, po.races), (1, 1, 1));
        let text = profile.to_string();
        assert!(text.contains("field traffic: 1 reads, 1 writes; races detected: 1"));
        let json = profile.to_json();
        assert!(json.contains(r#""races_detected":1"#));
        assert!(json.contains(r#""field_reads":1"#));
    }

    #[test]
    fn display_and_json_render() {
        let tracer = LockTracer::new(TracerConfig::default());
        let obj = ObjRef::from_index(5);
        tracer.record(Some(tidx(1)), Some(obj), TraceEventKind::AcquireUnlocked);
        tracer.record(
            Some(tidx(1)),
            Some(obj),
            TraceEventKind::Inflated {
                cause: InflationCause::Hint,
            },
        );
        let profile = ContentionProfile::build(&tracer.snapshot());
        let text = profile.to_string();
        assert!(text.contains("hottest objects"));
        assert!(text.contains("cause hint"));
        let json = profile.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""inflations_by_cause":{"contention":0"#));
        assert!(json.contains(r#""hint":1"#));
    }
}
