//! Dynamic Eraser lockset sanitizer.
//!
//! The runtime half of the race-detection story: where the `lockcheck`
//! guards pass computes per-field lockset intersections over *all paths
//! statically*, [`EraserSanitizer`] computes the same invariant over the
//! *observed* event stream. It sits on the [`TraceSink`] seam between a
//! protocol and the tracer, tracking per-thread held-lock sets from
//! acquire/release events and driving the classic per-(object, field)
//! Eraser state machine from the VM's field-access events:
//!
//! ```text
//! Virgin --first access--> Exclusive(t)
//! Exclusive --access by u != t--> Shared (read) | Shared-Modified (write),
//!                                 C := locks-held(u)
//! Shared/Shared-Modified --any access by v--> C := C ∩ locks-held(v),
//!                                 write promotes Shared -> Shared-Modified
//! report once when Shared-Modified ∧ C = ∅
//! ```
//!
//! The candidate set `C` starts as the full universe and is first
//! materialized at the moment a second thread touches the field, exactly
//! as in Eraser — single-threaded warm-up (initialization before
//! publication) never reports.
//!
//! All state lives in preallocated atomic words: one packed `u64` per
//! (object, field) and a fixed array of held-lock slots per thread, so
//! `record` never blocks or allocates (the [`TraceSink`] contract).
//! Every tracking limit degrades *conservatively toward silence*: a
//! guard object outside the 40-bit lockset bitmap, a thread past the
//! tracked range, or a held-slot overflow all mark the affected state
//! "unverifiable" rather than risk a false race report. Verdicts are
//! emitted as [`TraceEventKind::RaceDetected`] through the optional
//! inner sink (at most once per (object, field)) and are queryable via
//! [`EraserSanitizer::racy_fields`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;

/// Guard objects with heap index below this fit the lockset bitmap;
/// larger indices degrade to the conservative "unverifiable" path.
pub const TRACKED_GUARD_OBJECTS: usize = 40;

/// Threads with index at or past this are not tracked (conservative).
const MAX_TRACKED_THREADS: usize = 256;

/// Distinct locks one thread may hold simultaneously before its
/// held-set tracking overflows (conservative).
const HELD_SLOTS: usize = 16;

// Packed per-(object, field) state word:
//   bits 0..2   Eraser state (Virgin / Exclusive / Shared / SM)
//   bit  2      reported (race verdict emitted)
//   bit  3      unverifiable (a tracking limit was hit; never report)
//   bits 8..24  first accessing thread (ThreadIndex, nonzero)
//   bits 24..64 candidate lockset bitmap over guard-object indices
const STATE_MASK: u64 = 0b11;
const VIRGIN: u64 = 0;
const EXCLUSIVE: u64 = 1;
const SHARED: u64 = 2;
const SHARED_MODIFIED: u64 = 3;
const REPORTED: u64 = 1 << 2;
const UNVERIFIABLE: u64 = 1 << 3;
const FIRST_SHIFT: u32 = 8;
const FIRST_MASK: u64 = 0xFFFF << FIRST_SHIFT;
const LOCKSET_SHIFT: u32 = 24;

/// The dynamic lockset sanitizer; see the module docs for the protocol.
pub struct EraserSanitizer {
    fields_per_object: usize,
    /// One packed state word per (object, field).
    states: Vec<AtomicU64>,
    /// `HELD_SLOTS` slots per tracked thread, each packed as
    /// `(obj_index + 1) << 32 | count` (0 = empty). Only the owning
    /// thread writes its slots on the hot path.
    held: Vec<AtomicU64>,
    /// Per-thread count of acquisitions that found no free slot.
    held_overflow: Vec<AtomicU64>,
    /// Total race verdicts emitted.
    reports: AtomicU64,
    /// Optional downstream sink; all events (plus verdicts) forward here.
    inner: Option<Arc<dyn TraceSink>>,
}

impl EraserSanitizer {
    /// Creates a sanitizer covering `capacity` heap objects with
    /// `fields` integer fields each. All memory is allocated here;
    /// `record` allocates nothing.
    pub fn new(capacity: usize, fields: usize) -> Self {
        let fields = fields.max(1);
        EraserSanitizer {
            fields_per_object: fields,
            states: (0..capacity * fields).map(|_| AtomicU64::new(0)).collect(),
            held: (0..MAX_TRACKED_THREADS * HELD_SLOTS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            held_overflow: (0..MAX_TRACKED_THREADS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            reports: AtomicU64::new(0),
            inner: None,
        }
    }

    /// Forwards every event (and race verdicts) to `sink` as well —
    /// chain a `LockTracer` here to keep the profiling pipeline fed.
    #[must_use]
    pub fn with_inner(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.inner = Some(sink);
        self
    }

    /// Number of race verdicts emitted so far.
    pub fn report_count(&self) -> u64 {
        self.reports.load(Ordering::Acquire)
    }

    /// The `(object index, field)` pairs reported as racy, sorted.
    pub fn racy_fields(&self) -> Vec<(usize, u16)> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| s.load(Ordering::Acquire) & REPORTED != 0)
            .map(|(i, _)| {
                (
                    i / self.fields_per_object,
                    (i % self.fields_per_object) as u16,
                )
            })
            .collect()
    }

    /// True when `(obj, field)` ever left the single-thread states, i.e.
    /// a second thread touched it (diagnostic for tests).
    pub fn was_shared(&self, obj: ObjRef, field: u16) -> bool {
        self.state_cell(obj, field).is_some_and(|c| {
            matches!(
                c.load(Ordering::Acquire) & STATE_MASK,
                SHARED | SHARED_MODIFIED
            )
        })
    }

    fn state_cell(&self, obj: ObjRef, field: u16) -> Option<&AtomicU64> {
        if usize::from(field) >= self.fields_per_object {
            return None;
        }
        self.states
            .get(obj.index() * self.fields_per_object + usize::from(field))
    }

    fn thread_slots(&self, t: ThreadIndex) -> Option<&[AtomicU64]> {
        let ti = usize::from(t.get());
        (ti < MAX_TRACKED_THREADS).then(|| &self.held[ti * HELD_SLOTS..(ti + 1) * HELD_SLOTS])
    }

    fn acquired(&self, t: ThreadIndex, obj: ObjRef) {
        let Some(slots) = self.thread_slots(t) else {
            return;
        };
        let key = (obj.index() as u64 + 1) << 32;
        let mut free = None;
        for slot in slots {
            let v = slot.load(Ordering::Relaxed);
            if v & !0xFFFF_FFFF == key {
                slot.store(v + 1, Ordering::Relaxed);
                return;
            }
            if v == 0 && free.is_none() {
                free = Some(slot);
            }
        }
        match free {
            Some(slot) => slot.store(key | 1, Ordering::Relaxed),
            None => {
                self.held_overflow[usize::from(t.get())].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn released(&self, t: ThreadIndex, obj: ObjRef, all: bool) {
        let Some(slots) = self.thread_slots(t) else {
            return;
        };
        let key = (obj.index() as u64 + 1) << 32;
        for slot in slots {
            let v = slot.load(Ordering::Relaxed);
            if v & !0xFFFF_FFFF == key {
                let count = v & 0xFFFF_FFFF;
                let next = if all || count <= 1 { 0 } else { v - 1 };
                slot.store(next, Ordering::Relaxed);
                return;
            }
        }
        // Not tracked: it was an overflow acquisition.
        let of = &self.held_overflow[usize::from(t.get())];
        let _ = of.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1));
    }

    /// The thread's current held set as a lockset bitmap, plus whether
    /// any part of it could not be represented.
    fn held_bitmap(&self, t: ThreadIndex) -> (u64, bool) {
        let Some(slots) = self.thread_slots(t) else {
            return (0, true);
        };
        let mut bitmap = 0u64;
        let mut unverifiable =
            self.held_overflow[usize::from(t.get())].load(Ordering::Relaxed) != 0;
        for slot in slots {
            let v = slot.load(Ordering::Relaxed);
            if v == 0 {
                continue;
            }
            let obj = (v >> 32) as usize - 1;
            if obj < TRACKED_GUARD_OBJECTS {
                bitmap |= 1 << obj;
            } else {
                unverifiable = true;
            }
        }
        (bitmap, unverifiable)
    }

    fn access(&self, t: ThreadIndex, obj: ObjRef, field: u16, write: bool) {
        let Some(cell) = self.state_cell(obj, field) else {
            return;
        };
        let (held, unverifiable) = self.held_bitmap(t);
        let me = u64::from(t.get()) << FIRST_SHIFT;
        let mut report = false;
        let mut cur = cell.load(Ordering::Acquire);
        loop {
            let state = cur & STATE_MASK;
            let next = match state {
                VIRGIN => EXCLUSIVE | me,
                EXCLUSIVE if cur & FIRST_MASK == me => break, // still single-threaded
                _ => {
                    // Second thread onward: materialize or refine C.
                    let c = if state == EXCLUSIVE {
                        held
                    } else {
                        (cur >> LOCKSET_SHIFT) & held
                    };
                    let promoted = if write || state == SHARED_MODIFIED {
                        SHARED_MODIFIED
                    } else {
                        SHARED
                    };
                    let mut next = promoted
                        | (cur & (REPORTED | UNVERIFIABLE | FIRST_MASK))
                        | (c << LOCKSET_SHIFT);
                    if unverifiable {
                        next |= UNVERIFIABLE;
                    }
                    report = promoted == SHARED_MODIFIED
                        && c == 0
                        && next & (REPORTED | UNVERIFIABLE) == 0;
                    if report {
                        next |= REPORTED;
                    }
                    next
                }
            };
            match cell.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(observed) => {
                    report = false;
                    cur = observed;
                }
            }
        }
        if report {
            self.reports.fetch_add(1, Ordering::AcqRel);
            if let Some(inner) = &self.inner {
                inner.record(Some(t), Some(obj), TraceEventKind::RaceDetected { field });
            }
        }
    }
}

impl TraceSink for EraserSanitizer {
    fn record(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        if let Some(inner) = &self.inner {
            inner.record(thread, obj, kind);
        }
        let (Some(t), Some(o)) = (thread, obj) else {
            return;
        };
        match kind {
            TraceEventKind::AcquireUnlocked
            | TraceEventKind::AcquireNested { .. }
            | TraceEventKind::AcquireFat { .. }
            | TraceEventKind::AcquireContendedThin { .. } => self.acquired(t, o),
            TraceEventKind::UnlockThin | TraceEventKind::UnlockFat => {
                self.released(t, o, false);
            }
            TraceEventKind::OrphanReclaimed { .. } => self.released(t, o, true),
            TraceEventKind::FieldAccess { field, write } => self.access(t, o, field, write),
            _ => {}
        }
    }
}

impl fmt::Debug for EraserSanitizer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EraserSanitizer")
            .field("objects", &(self.states.len() / self.fields_per_object))
            .field("fields_per_object", &self.fields_per_object)
            .field("reports", &self.report_count())
            .field("chained", &self.inner.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u16) -> ThreadIndex {
        ThreadIndex::new(i).unwrap()
    }

    fn obj(i: usize) -> ObjRef {
        ObjRef::from_index(i)
    }

    fn read(s: &EraserSanitizer, th: u16, o: usize) {
        s.record(
            Some(t(th)),
            Some(obj(o)),
            TraceEventKind::FieldAccess {
                field: 0,
                write: false,
            },
        );
    }

    fn write(s: &EraserSanitizer, th: u16, o: usize) {
        s.record(
            Some(t(th)),
            Some(obj(o)),
            TraceEventKind::FieldAccess {
                field: 0,
                write: true,
            },
        );
    }

    fn lock(s: &EraserSanitizer, th: u16, o: usize) {
        s.record(Some(t(th)), Some(obj(o)), TraceEventKind::AcquireUnlocked);
    }

    fn unlock(s: &EraserSanitizer, th: u16, o: usize) {
        s.record(Some(t(th)), Some(obj(o)), TraceEventKind::UnlockThin);
    }

    #[test]
    fn single_threaded_accesses_never_report() {
        let s = EraserSanitizer::new(4, 1);
        for _ in 0..100 {
            write(&s, 1, 0);
            read(&s, 1, 0);
        }
        assert_eq!(s.report_count(), 0);
        assert!(!s.was_shared(obj(0), 0));
    }

    #[test]
    fn guarded_sharing_never_reports() {
        let s = EraserSanitizer::new(4, 1);
        for th in [1u16, 2, 1, 2, 2, 1] {
            lock(&s, th, 1);
            write(&s, th, 0);
            read(&s, th, 0);
            unlock(&s, th, 1);
        }
        assert_eq!(s.report_count(), 0);
        assert!(s.was_shared(obj(0), 0), "second thread did touch it");
    }

    #[test]
    fn unguarded_second_writer_reports_exactly_once() {
        let s = EraserSanitizer::new(4, 1);
        write(&s, 1, 0); // Virgin -> Exclusive(1)
        write(&s, 2, 0); // C := {} and write -> report
        write(&s, 1, 0);
        write(&s, 2, 0); // further accesses must not re-report
        assert_eq!(s.report_count(), 1);
        assert_eq!(s.racy_fields(), vec![(0, 0)]);
    }

    #[test]
    fn read_sharing_reports_only_on_the_write() {
        let s = EraserSanitizer::new(4, 1);
        write(&s, 1, 0); // Exclusive
        read(&s, 2, 0); // Shared, C = {}
        assert_eq!(s.report_count(), 0, "read-only sharing is not a race");
        write(&s, 2, 0); // Shared-Modified with empty C
        assert_eq!(s.report_count(), 1);
    }

    #[test]
    fn partial_guarding_is_caught() {
        let s = EraserSanitizer::new(4, 1);
        lock(&s, 1, 1);
        write(&s, 1, 0);
        unlock(&s, 1, 1);
        // Thread 2 holds a *different* lock: C materializes as {2}.
        lock(&s, 2, 2);
        write(&s, 2, 0);
        unlock(&s, 2, 2);
        assert_eq!(s.report_count(), 0, "C = {{lock 2}} is still non-empty");
        // Thread 1's next guarded write refines C to {1} ∩ {2} = ∅.
        lock(&s, 1, 1);
        write(&s, 1, 0);
        unlock(&s, 1, 1);
        assert_eq!(s.report_count(), 1);
    }

    #[test]
    fn consistent_guard_with_nesting_and_reentry() {
        let s = EraserSanitizer::new(4, 1);
        for th in [1u16, 2] {
            lock(&s, th, 1);
            s.record(
                Some(t(th)),
                Some(obj(1)),
                TraceEventKind::AcquireNested { depth: 2 },
            );
            write(&s, th, 0);
            unlock(&s, th, 1);
            // Still held once (count 2 -> 1): accesses stay guarded.
            write(&s, th, 0);
            unlock(&s, th, 1);
        }
        assert_eq!(s.report_count(), 0);
    }

    #[test]
    fn untracked_guard_object_suppresses_instead_of_lying() {
        let s = EraserSanitizer::new(64, 1);
        // Guard object index 60 is past the lockset bitmap: the state
        // must become unverifiable, not falsely racy.
        for th in [1u16, 2] {
            lock(&s, th, 60);
            write(&s, th, 0);
            unlock(&s, th, 60);
        }
        assert_eq!(s.report_count(), 0);
    }

    #[test]
    fn verdict_forwards_to_inner_sink() {
        use std::sync::atomic::AtomicUsize;

        #[derive(Debug, Default)]
        struct Counter {
            races: AtomicUsize,
            total: AtomicUsize,
        }
        impl TraceSink for Counter {
            fn record(&self, _: Option<ThreadIndex>, _: Option<ObjRef>, kind: TraceEventKind) {
                self.total.fetch_add(1, Ordering::Relaxed);
                if matches!(kind, TraceEventKind::RaceDetected { .. }) {
                    self.races.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        let counter = Arc::new(Counter::default());
        let s = EraserSanitizer::new(4, 1).with_inner(counter.clone());
        write(&s, 1, 0);
        write(&s, 2, 0);
        assert_eq!(counter.races.load(Ordering::Relaxed), 1);
        // Both field accesses AND the verdict passed through.
        assert_eq!(counter.total.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn out_of_range_fields_and_objects_are_ignored() {
        let s = EraserSanitizer::new(2, 1);
        s.record(
            Some(t(1)),
            Some(obj(100)),
            TraceEventKind::FieldAccess {
                field: 0,
                write: true,
            },
        );
        s.record(
            Some(t(1)),
            Some(obj(0)),
            TraceEventKind::FieldAccess {
                field: 9,
                write: true,
            },
        );
        assert_eq!(s.report_count(), 0);
        assert_eq!(s.racy_fields(), vec![]);
    }

    #[test]
    fn concurrent_unguarded_writers_always_report() {
        // The schedule-independence claim: whatever the interleaving of
        // two unguarded writers, the detector fires.
        for _ in 0..32 {
            let s = Arc::new(EraserSanitizer::new(4, 1));
            let mut handles = Vec::new();
            for th in [1u16, 2] {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..50 {
                        read(&s, th, 0);
                        write(&s, th, 0);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(s.report_count(), 1);
        }
    }
}
