//! Lock-event observability for the thin-lock reproduction.
//!
//! The statistics counters in `thinlock-runtime` reproduce the paper's
//! aggregate tables; this crate records the *individual* events behind
//! them, cheaply enough to leave on while measuring:
//!
//! 1. A protocol streams events through the
//!    [`TraceSink`](thinlock_runtime::events::TraceSink) seam into a
//!    [`LockTracer`] — one fixed-capacity [`EventRing`] per thread,
//!    preallocated up front, written with relaxed atomic stores, never
//!    blocking and never allocating on the hot path. Full rings wrap
//!    over their oldest events and count exactly how many were lost.
//! 2. [`LockTracer::snapshot`] merges the rings into a time-sorted
//!    stream of decoded [`LockEvent`]s — safe to take while writer
//!    threads are still recording (a seqlock per slot rejects torn
//!    reads).
//! 3. [`ContentionProfile::build`] aggregates the stream into the
//!    hottest objects, the spin-round distribution, and a timeline
//!    attributing every inflation to its
//!    [`InflationCause`](thinlock_runtime::stats::InflationCause).
//!    The profile prints as text (the `reproduce` binary's `profile`
//!    section) or exports as JSON via [`ContentionProfile::to_json`].
//! 4. [`EraserSanitizer`] chains on the same seam and turns the event
//!    stream into dynamic data-race verdicts: per-thread held-lock sets
//!    from acquire/release events drive the classic Eraser
//!    Virgin → Exclusive → Shared → Shared-Modified lockset state
//!    machine per (object, field), cross-checking the static guards
//!    pass of `thinlock-analysis` at runtime.
//!
//! See DESIGN.md §10 for the event schema, memory-ordering argument,
//! and overhead budget, and §13 for the sanitizer's agreement contract
//! with the static lockset analysis.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod counterexample;
pub mod event;
pub mod json;
pub mod parse;
pub mod profile;
pub mod ring;
pub mod sanitizer;
pub mod tracer;

pub use counterexample::{CounterexampleLog, RecordedEvent};
pub use event::LockEvent;
pub use json::JsonWriter;
pub use parse::{parse, JsonParseError, JsonValue};
pub use profile::{ContentionProfile, Inflation, ObjectProfile, SPIN_BUCKETS};
pub use ring::{EventRing, RawEvent, RingSnapshot};
pub use sanitizer::EraserSanitizer;
pub use tracer::{LockTracer, TraceSnapshot, TracerConfig};
