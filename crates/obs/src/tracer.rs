//! The [`LockTracer`]: per-thread event rings behind the
//! [`TraceSink`] seam.
//!
//! The tracer preallocates one [`EventRing`] per thread index at
//! construction (plus a shared ring for unattributed events), so the
//! recording path — called from lock/unlock fast paths — touches no
//! allocator and no lock: it reads the monotonic clock, packs the event
//! into two words, and pushes into the calling thread's ring with
//! relaxed stores. Threads whose index exceeds the provisioned range are
//! redirected to the shared ring and counted, never silently lost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;

use crate::event::{pack_meta, pack_obj, unpack, unpack_obj, LockEvent};
use crate::ring::EventRing;

/// Sizing of a [`LockTracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Highest thread index with its own ring; higher indices share the
    /// unattributed ring (and are counted as redirected).
    pub max_threads: u16,
    /// Events retained per ring before wraparound (rounded up to a
    /// power of two).
    pub ring_capacity: usize,
}

impl Default for TracerConfig {
    /// 64 threads × 4096 events ≈ 8 MiB: ample for every workload in
    /// the bench corpus while staying allocation-free afterwards.
    fn default() -> Self {
        TracerConfig {
            max_threads: 64,
            ring_capacity: 4096,
        }
    }
}

/// Records timestamped lock events into per-thread rings.
///
/// Attach to a protocol (e.g. `ThinLocks::with_trace_sink`) and take
/// [`snapshot`](LockTracer::snapshot)s at any time — including while
/// writer threads are still recording; snapshots are consistent (no torn
/// events) and account for everything dropped by ring wraparound.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use thinlock_obs::{LockTracer, TracerConfig};
/// use thinlock_runtime::events::{TraceEventKind, TraceSink};
///
/// let tracer = Arc::new(LockTracer::new(TracerConfig::default()));
/// tracer.record(None, None, TraceEventKind::AcquireUnlocked);
/// let snap = tracer.snapshot();
/// assert_eq!(snap.events.len(), 1);
/// assert_eq!(snap.recorded, 1);
/// ```
#[derive(Debug)]
pub struct LockTracer {
    epoch: Instant,
    /// `rings[0]` is the shared/unattributed ring; `rings[i]` belongs to
    /// thread index `i` for `1 ≤ i ≤ max_threads`.
    rings: Box<[EventRing]>,
    redirected: AtomicU64,
}

/// A consistent view of every ring, merged and decoded.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All surviving events, sorted by timestamp (ties broken by thread
    /// ring and in-ring position, so one thread's events stay ordered).
    pub events: Vec<LockEvent>,
    /// Total events recorded across all rings when the snapshot ran.
    pub recorded: u64,
    /// Events lost to ring wraparound (or mid-write skips).
    pub dropped: u64,
    /// Events from thread indices beyond the provisioned rings, routed
    /// to the shared ring instead of a private one.
    pub redirected: u64,
}

impl Default for LockTracer {
    fn default() -> Self {
        LockTracer::new(TracerConfig::default())
    }
}

impl LockTracer {
    /// Creates a tracer; all rings are allocated here, never later.
    pub fn new(config: TracerConfig) -> Self {
        let rings = (0..=config.max_threads as usize)
            .map(|_| EventRing::with_capacity(config.ring_capacity))
            .collect();
        LockTracer {
            epoch: Instant::now(),
            rings,
            redirected: AtomicU64::new(0),
        }
    }

    /// Nanoseconds elapsed since the tracer was created — the timestamp
    /// domain of every event it records.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Events redirected to the shared ring so far.
    pub fn redirected(&self) -> u64 {
        self.redirected.load(Ordering::Relaxed)
    }

    /// The ring of thread index `i` (0 = the shared ring), if provisioned.
    pub fn ring(&self, index: u16) -> Option<&EventRing> {
        self.rings.get(index as usize)
    }

    /// Merges every ring into one decoded, time-sorted view. Safe to
    /// call while writers are recording: each event is either absent or
    /// complete, never torn, and the drop counters absorb the rest.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events = Vec::new();
        let mut recorded = 0;
        let mut dropped = 0;
        for ring in self.rings.iter() {
            let snap = ring.snapshot();
            recorded += snap.recorded;
            dropped += snap.dropped;
            for raw in snap.events {
                // A torn slot is rejected by the ring's sequence check,
                // so decoding only fails on a never-written pattern;
                // count such an event as dropped rather than panicking.
                match unpack(raw.meta) {
                    Some((kind, thread)) => events.push(LockEvent {
                        index: raw.index,
                        time_ns: raw.time,
                        thread,
                        obj: unpack_obj(raw.obj),
                        kind,
                    }),
                    None => dropped += 1,
                }
            }
        }
        events.sort_by_key(|e| (e.time_ns, e.thread.map_or(0, ThreadIndex::get), e.index));
        TraceSnapshot {
            events,
            recorded,
            dropped,
            redirected: self.redirected(),
        }
    }
}

impl TraceSink for LockTracer {
    #[inline]
    fn record(&self, thread: Option<ThreadIndex>, obj: Option<ObjRef>, kind: TraceEventKind) {
        let slot = match thread {
            Some(t) if (t.get() as usize) < self.rings.len() => t.get() as usize,
            Some(_) => {
                self.redirected.fetch_add(1, Ordering::Relaxed);
                0
            }
            None => 0,
        };
        self.rings[slot].push(self.now_ns(), pack_meta(kind, thread), pack_obj(obj));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_runtime::stats::InflationCause;

    fn tidx(i: u16) -> ThreadIndex {
        ThreadIndex::new(i).unwrap()
    }

    #[test]
    fn events_land_in_per_thread_rings() {
        let tracer = LockTracer::new(TracerConfig {
            max_threads: 4,
            ring_capacity: 8,
        });
        tracer.record(Some(tidx(1)), None, TraceEventKind::AcquireUnlocked);
        tracer.record(Some(tidx(2)), None, TraceEventKind::UnlockThin);
        tracer.record(None, None, TraceEventKind::MonitorAllocated { index: 3 });
        assert_eq!(tracer.ring(1).unwrap().recorded(), 1);
        assert_eq!(tracer.ring(2).unwrap().recorded(), 1);
        assert_eq!(tracer.ring(0).unwrap().recorded(), 1);
        assert_eq!(tracer.redirected(), 0);

        let snap = tracer.snapshot();
        assert_eq!(snap.recorded, 3);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 3);
    }

    #[test]
    fn overflow_threads_are_redirected_not_lost() {
        let tracer = LockTracer::new(TracerConfig {
            max_threads: 2,
            ring_capacity: 8,
        });
        tracer.record(Some(tidx(100)), None, TraceEventKind::Wait);
        assert_eq!(tracer.redirected(), 1);
        let snap = tracer.snapshot();
        assert_eq!(snap.redirected, 1);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].thread, Some(tidx(100)));
        assert_eq!(snap.events[0].kind, TraceEventKind::Wait);
    }

    #[test]
    fn snapshot_decodes_payloads_and_objects() {
        let tracer = LockTracer::default();
        let obj = ObjRef::from_index(9);
        tracer.record(
            Some(tidx(1)),
            Some(obj),
            TraceEventKind::Inflated {
                cause: InflationCause::CountOverflow,
            },
        );
        let snap = tracer.snapshot();
        assert_eq!(snap.events[0].obj, Some(obj));
        assert_eq!(
            snap.events[0].kind,
            TraceEventKind::Inflated {
                cause: InflationCause::CountOverflow
            }
        );
    }

    #[test]
    fn timestamps_are_monotonic_per_thread() {
        let tracer = LockTracer::default();
        for _ in 0..50 {
            tracer.record(Some(tidx(1)), None, TraceEventKind::AcquireUnlocked);
        }
        let snap = tracer.snapshot();
        let times: Vec<u64> = snap.events.iter().map(|e| e.time_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }
}
