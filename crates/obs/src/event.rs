//! The decoded event record and its fixed-width ring encoding.
//!
//! A ring slot stores an event in two machine words (plus the timestamp
//! and the slot's sequence number): a *meta* word packing the event kind,
//! the recording thread, and a 32-bit payload, and an *object* word
//! holding the attributed object index (or a sentinel for "none"). The
//! packing is lossless for every [`TraceEventKind`] payload the protocol
//! can produce: nesting depth and spin rounds saturate at `u32::MAX`
//! (still far past anything observable), monitor indices are 23 bits,
//! and inflation causes are 2 bits.

use thinlock_runtime::events::TraceEventKind;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;
use thinlock_runtime::stats::InflationCause;

/// Sentinel in the object word meaning "no object attributed".
const NO_OBJ: u64 = u64::MAX;

/// One decoded lock event, as returned by ring and tracer snapshots.
///
/// `index` is the event's position in its ring's total recording order
/// (0 = first event ever recorded there); because rings are per-thread,
/// it orders events of one thread exactly even when timestamps collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockEvent {
    /// Position in the owning ring's recording order.
    pub index: u64,
    /// Nanoseconds since the tracer's epoch (its creation instant).
    pub time_ns: u64,
    /// The recording thread, if the event is attributable to one.
    pub thread: Option<ThreadIndex>,
    /// The object the event concerns, if any.
    pub obj: Option<ObjRef>,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Packs `kind` into its stable 8-bit code plus a 32-bit payload.
pub(crate) fn encode_kind(kind: TraceEventKind) -> (u8, u32) {
    match kind {
        TraceEventKind::AcquireUnlocked => (1, 0),
        TraceEventKind::AcquireNested { depth } => (2, depth),
        TraceEventKind::AcquireFat { contended } => (3, u32::from(contended)),
        TraceEventKind::AcquireContendedThin { spin_rounds } => (4, spin_rounds),
        TraceEventKind::Inflated { cause } => (5, u32::from(cause.code())),
        TraceEventKind::UnlockThin => (6, 0),
        TraceEventKind::UnlockFat => (7, 0),
        TraceEventKind::Wait => (8, 0),
        TraceEventKind::Notify => (9, 0),
        TraceEventKind::MonitorAllocated { index } => (10, index),
        TraceEventKind::ElisionHit => (11, 0),
        TraceEventKind::PreInflateHint { applied } => (12, u32::from(applied)),
        TraceEventKind::OrphanReclaimed { fat } => (13, u32::from(fat)),
        TraceEventKind::DeadlockDetected { threads } => (14, threads),
        TraceEventKind::AcquireTimedOut => (15, 0),
        TraceEventKind::FieldAccess { field, write } => {
            (16, u32::from(field) | (u32::from(write) << 16))
        }
        TraceEventKind::RaceDetected { field } => (17, u32::from(field)),
        TraceEventKind::Deflated { index } => (18, index),
    }
}

/// Inverse of [`encode_kind`]; `None` for corrupt codes (which a torn
/// slot can never produce — the ring's sequence check rejects tearing —
/// but defensive decoding keeps the snapshot path panic-free).
pub(crate) fn decode_kind(code: u8, payload: u32) -> Option<TraceEventKind> {
    Some(match code {
        1 => TraceEventKind::AcquireUnlocked,
        2 => TraceEventKind::AcquireNested { depth: payload },
        3 => TraceEventKind::AcquireFat {
            contended: payload != 0,
        },
        4 => TraceEventKind::AcquireContendedThin {
            spin_rounds: payload,
        },
        5 => TraceEventKind::Inflated {
            cause: InflationCause::from_code(u8::try_from(payload).ok()?)?,
        },
        6 => TraceEventKind::UnlockThin,
        7 => TraceEventKind::UnlockFat,
        8 => TraceEventKind::Wait,
        9 => TraceEventKind::Notify,
        10 => TraceEventKind::MonitorAllocated { index: payload },
        11 => TraceEventKind::ElisionHit,
        12 => TraceEventKind::PreInflateHint {
            applied: payload != 0,
        },
        13 => TraceEventKind::OrphanReclaimed { fat: payload != 0 },
        14 => TraceEventKind::DeadlockDetected { threads: payload },
        15 => TraceEventKind::AcquireTimedOut,
        16 => TraceEventKind::FieldAccess {
            field: payload as u16,
            write: (payload >> 16) & 1 != 0,
        },
        17 => TraceEventKind::RaceDetected {
            field: u16::try_from(payload).ok()?,
        },
        18 => TraceEventKind::Deflated { index: payload },
        _ => return None,
    })
}

/// Packs kind + thread + payload into the meta word:
/// `kind(8) | thread(16) | unused(8) | payload(32)`, high to low.
pub(crate) fn pack_meta(kind: TraceEventKind, thread: Option<ThreadIndex>) -> u64 {
    let (code, payload) = encode_kind(kind);
    let thread = thread.map_or(0u64, |t| u64::from(t.get()));
    (u64::from(code) << 56) | (thread << 40) | u64::from(payload)
}

/// Packs an optional object into the object word.
pub(crate) fn pack_obj(obj: Option<ObjRef>) -> u64 {
    obj.map_or(NO_OBJ, |o| o.index() as u64)
}

/// Decodes a (meta, obj) word pair; `None` if the kind code is corrupt.
pub(crate) fn unpack(meta: u64) -> Option<(TraceEventKind, Option<ThreadIndex>)> {
    let code = (meta >> 56) as u8;
    let thread_raw = ((meta >> 40) & 0xFFFF) as u16;
    let payload = meta as u32;
    let kind = decode_kind(code, payload)?;
    let thread = ThreadIndex::new(thread_raw).ok();
    Some((kind, thread))
}

/// Decodes the object word.
pub(crate) fn unpack_obj(obj: u64) -> Option<ObjRef> {
    (obj != NO_OBJ).then(|| ObjRef::from_index(obj as usize))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(kind: TraceEventKind) {
        let (code, payload) = encode_kind(kind);
        assert_eq!(decode_kind(code, payload), Some(kind));
    }

    #[test]
    fn every_kind_roundtrips() {
        for kind in [
            TraceEventKind::AcquireUnlocked,
            TraceEventKind::AcquireNested { depth: 257 },
            TraceEventKind::AcquireFat { contended: true },
            TraceEventKind::AcquireFat { contended: false },
            TraceEventKind::AcquireContendedThin { spin_rounds: 12345 },
            TraceEventKind::UnlockThin,
            TraceEventKind::UnlockFat,
            TraceEventKind::Wait,
            TraceEventKind::Notify,
            TraceEventKind::MonitorAllocated { index: 0x7F_FFFF },
            TraceEventKind::ElisionHit,
            TraceEventKind::PreInflateHint { applied: true },
            TraceEventKind::OrphanReclaimed { fat: true },
            TraceEventKind::OrphanReclaimed { fat: false },
            TraceEventKind::DeadlockDetected { threads: 3 },
            TraceEventKind::AcquireTimedOut,
            TraceEventKind::FieldAccess {
                field: 0,
                write: false,
            },
            TraceEventKind::FieldAccess {
                field: u16::MAX,
                write: true,
            },
            TraceEventKind::RaceDetected { field: 7 },
            TraceEventKind::Deflated { index: 0x7F_FFFF },
        ] {
            roundtrip(kind);
        }
        for cause in InflationCause::ALL {
            roundtrip(TraceEventKind::Inflated { cause });
        }
    }

    #[test]
    fn corrupt_codes_decode_to_none() {
        assert_eq!(decode_kind(0, 0), None);
        assert_eq!(decode_kind(200, 0), None);
        // Inflated with an out-of-range cause code.
        assert_eq!(decode_kind(5, 99), None);
        // RaceDetected with a field index past the 16-bit payload.
        assert_eq!(decode_kind(17, 0x1_0000), None);
    }

    #[test]
    fn meta_word_carries_thread_and_payload() {
        let t = ThreadIndex::new(42).unwrap();
        let meta = pack_meta(
            TraceEventKind::AcquireContendedThin { spin_rounds: 7 },
            Some(t),
        );
        let (kind, thread) = unpack(meta).unwrap();
        assert_eq!(
            kind,
            TraceEventKind::AcquireContendedThin { spin_rounds: 7 }
        );
        assert_eq!(thread, Some(t));
        // No thread: index 0 is not a valid ThreadIndex, decodes to None.
        let (_, none) = unpack(pack_meta(TraceEventKind::Wait, None)).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn obj_word_sentinel() {
        assert_eq!(unpack_obj(pack_obj(None)), None);
        let o = ObjRef::from_index(7);
        assert_eq!(unpack_obj(pack_obj(Some(o))), Some(o));
    }
}
