//! Property tests for the event ring and tracer: wraparound accounting
//! is exact, and snapshots taken while writers are recording never
//! observe a torn event.
//!
//! Dependency-free property loop: seeded in-repo PRNG
//! ([`thinlock_runtime::prng`]), many random configurations per test.

use std::sync::atomic::{AtomicBool, Ordering};

use thinlock_obs::ring::EventRing;
use thinlock_obs::{LockTracer, TracerConfig};
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::lockword::ThreadIndex;
use thinlock_runtime::prng::SplitMix64;

/// The data words pushed for ring position `i` — correlated so a reader
/// can detect any mix-and-match of words from different writes.
fn words_for(i: u64) -> (u64, u64, u64) {
    (
        i,
        i.wrapping_mul(3).wrapping_add(7),
        i.wrapping_mul(5).wrapping_add(11),
    )
}

fn assert_event_consistent(e: &thinlock_obs::RawEvent) {
    let (time, meta, obj) = words_for(e.index);
    assert_eq!(e.time, time, "time word torn at index {}", e.index);
    assert_eq!(e.meta, meta, "meta word torn at index {}", e.index);
    assert_eq!(e.obj, obj, "obj word torn at index {}", e.index);
}

#[test]
fn random_capacities_and_lengths_account_exactly() {
    let mut rng = SplitMix64::new(0xD1CE_0B5E_0001);
    for _ in 0..200 {
        let capacity = 1usize << (rng.next_u64() % 8); // 1..=128, rounds to >=2
        let pushes = rng.next_u64() % 500;
        let ring = EventRing::with_capacity(capacity);
        for i in 0..pushes {
            let (time, meta, obj) = words_for(i);
            ring.push(time, meta, obj);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.recorded, pushes);
        assert_eq!(
            snap.events.len() as u64 + snap.dropped,
            snap.recorded,
            "cap {capacity} pushes {pushes}"
        );
        // Quiescent ring: exactly the newest min(cap, pushes) survive,
        // in order, with their original data words.
        let expect = pushes.min(ring.capacity() as u64);
        assert_eq!(snap.events.len() as u64, expect);
        for (k, e) in snap.events.iter().enumerate() {
            assert_eq!(e.index, pushes - expect + k as u64);
            assert_event_consistent(e);
        }
    }
}

#[test]
fn snapshots_under_a_live_writer_never_tear() {
    // A small ring wraps constantly, maximizing writer/reader collisions.
    let ring = EventRing::with_capacity(8);
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (time, meta, obj) = words_for(i);
                ring.push(time, meta, obj);
                i += 1;
            }
        });
        for _ in 0..2_000 {
            let snap = ring.snapshot();
            assert!(snap.events.len() as u64 + snap.dropped == snap.recorded);
            for e in &snap.events {
                assert_event_consistent(e);
                assert!(e.index < snap.recorded);
            }
            // Events are position-sorted and unique.
            for pair in snap.events.windows(2) {
                assert!(pair[0].index < pair[1].index);
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
}

#[test]
fn tracer_snapshot_consistent_with_concurrent_writers() {
    const WRITERS: u16 = 4;
    const EVENTS_PER_WRITER: u32 = 3_000;
    let tracer = LockTracer::new(TracerConfig {
        max_threads: WRITERS,
        ring_capacity: 256, // force wraparound in every ring
    });

    std::thread::scope(|scope| {
        for w in 1..=WRITERS {
            let tracer = &tracer;
            scope.spawn(move || {
                let thread = ThreadIndex::new(w).unwrap();
                for i in 0..EVENTS_PER_WRITER {
                    // Payload correlated with the object so a decoded
                    // event can be checked for internal consistency.
                    tracer.record(
                        Some(thread),
                        Some(ObjRef::from_index(i as usize)),
                        TraceEventKind::AcquireNested { depth: i },
                    );
                }
            });
        }
        // Snapshot continuously while the writers run.
        for _ in 0..50 {
            let snap = tracer.snapshot();
            assert_eq!(
                snap.events.len() as u64 + snap.dropped,
                snap.recorded,
                "mid-run accounting"
            );
            for e in &snap.events {
                let TraceEventKind::AcquireNested { depth } = e.kind else {
                    panic!("unexpected kind {:?}", e.kind);
                };
                assert_eq!(
                    e.obj,
                    Some(ObjRef::from_index(depth as usize)),
                    "event payload and object disagree: torn"
                );
            }
        }
    });

    // Quiescent: totals are exact and per-thread streams are the newest
    // `ring_capacity` events each, in recording order.
    let snap = tracer.snapshot();
    assert_eq!(
        snap.recorded,
        u64::from(WRITERS) * u64::from(EVENTS_PER_WRITER)
    );
    assert_eq!(snap.events.len() as u64 + snap.dropped, snap.recorded);
    assert_eq!(snap.redirected, 0);
    for w in 1..=WRITERS {
        let ring = tracer.ring(w).unwrap();
        let ring_snap = ring.snapshot();
        assert_eq!(ring_snap.recorded, u64::from(EVENTS_PER_WRITER));
        assert_eq!(ring_snap.events.len(), ring.capacity());
        let newest = ring_snap.events.last().unwrap().index;
        assert_eq!(newest, u64::from(EVENTS_PER_WRITER) - 1);
    }
}

#[test]
fn random_interleavings_of_writers_and_snapshots() {
    // Seeded schedule: each round picks random writer counts and ring
    // sizes, spawns the writers, and snapshots concurrently; afterwards
    // validates exact totals.
    let mut rng = SplitMix64::new(0x5EED_CAFE);
    for round in 0..10 {
        let writers = 1 + (rng.next_u64() % 3) as u16;
        let capacity = 1usize << (3 + rng.next_u64() % 5); // 8..=128
        let per_writer = 200 + (rng.next_u64() % 800) as u32;
        let tracer = LockTracer::new(TracerConfig {
            max_threads: writers,
            ring_capacity: capacity,
        });
        std::thread::scope(|scope| {
            for w in 1..=writers {
                let tracer = &tracer;
                scope.spawn(move || {
                    let thread = ThreadIndex::new(w).unwrap();
                    for i in 0..per_writer {
                        tracer.record(
                            Some(thread),
                            Some(ObjRef::from_index(i as usize)),
                            TraceEventKind::AcquireNested { depth: i },
                        );
                    }
                });
            }
            for _ in 0..20 {
                let snap = tracer.snapshot();
                assert_eq!(
                    snap.events.len() as u64 + snap.dropped,
                    snap.recorded,
                    "round {round}"
                );
            }
        });
        let snap = tracer.snapshot();
        assert_eq!(
            snap.recorded,
            u64::from(writers) * u64::from(per_writer),
            "round {round}"
        );
        assert_eq!(snap.events.len() as u64 + snap.dropped, snap.recorded);
    }
}
