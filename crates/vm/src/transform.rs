//! Bytecode transformations.
//!
//! Three transformations, all with the property that a transformed
//! program is executable by the unmodified interpreter (checked
//! differentially by this module's tests):
//!
//! * [`strip_synchronization`] — removes every locking operation from a
//!   program: `monitorenter`/`monitorexit` become stack-neutral `pop`s
//!   and `ACC_SYNCHRONIZED` flags are cleared. This is exactly how the
//!   paper produced its Figure 6 "NOP" datapoint ("these measurements
//!   were obtained by removing all instructions related to
//!   synchronization"); running a stripped program on a real protocol
//!   must compute the same values as the original program, since the
//!   benchmarks are single-threaded.
//! * [`elide_local_sync`] — the *selective* version: removes only the
//!   monitor operations an [`ElisionPlan`] names, leaving every other
//!   lock in place. The plan comes from `thinlock-analysis`'s escape
//!   pass, which proves the named operations are on objects no second
//!   thread can ever observe.
//! * [`peephole`] — a conservative cleanup pass (constant folding of
//!   `iconst; iconst; iadd/isub/imul`, `push; pop` elimination,
//!   `nop` removal) that preserves semantics; branch targets are
//!   re-mapped across deletions. A stand-in for the bytecode
//!   optimizations a JIT-less JVM performs at load time.

use std::collections::BTreeSet;

use crate::bytecode::Op;
use crate::program::{Handler, Method, Program};

/// Removes all synchronization from a program (Figure 6's "NOP" case).
///
/// `monitorenter`/`monitorexit` are replaced by `pop` (they consume one
/// operand, so the stack shape is preserved — the bytecode-dispatch cost
/// remains, the locking cost disappears) and every method's
/// `synchronized` flag is cleared.
pub fn strip_synchronization(program: &Program) -> Program {
    let mut out = Program::new(program.pool_size());
    for m in program.methods() {
        let code: Vec<Op> = m
            .code()
            .iter()
            .map(|&op| match op {
                // Wait/notify require monitor ownership, so once the
                // enters are gone they must go too (a stripped program
                // would otherwise raise IllegalMonitorState at run time).
                Op::MonitorEnter | Op::MonitorExit | Op::Wait | Op::Notify => Op::Pop,
                other => other,
            })
            .collect();
        let mut flags = m.flags();
        flags.synchronized = false;
        let mut method = Method::new(m.name(), m.arg_count(), m.max_locals(), flags, code);
        for &h in m.handlers() {
            method = method.with_handler(h);
        }
        out.add_method(method);
    }
    out
}

/// Which sync operations a static analysis proved removable.
///
/// Plain data rather than an analysis type so the transform stays
/// independent of the `thinlock-analysis` crate (which depends on this
/// one).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElisionPlan {
    /// `(method_id, pc)` of `monitorenter`/`monitorexit` instructions to
    /// replace with stack-neutral `pop`s.
    pub ops: Vec<(u16, usize)>,
    /// Method ids whose `synchronized` flag may be cleared.
    pub desync_methods: Vec<u16>,
}

/// Statistics of one [`elide_local_sync`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElisionStats {
    /// Monitor operations replaced with `pop`.
    pub ops_elided: usize,
    /// `synchronized` flags cleared.
    pub methods_desynchronized: usize,
    /// Plan entries that did not name a monitor op (or named a method /
    /// pc out of range) and were ignored.
    pub entries_ignored: usize,
}

/// Removes exactly the sync operations named by `plan`.
///
/// Unlike [`strip_synchronization`], locks not covered by the plan are
/// preserved, so the transformed program is safe to run concurrently as
/// long as the plan only names operations on thread-local objects.
/// Plan entries that do not point at a `monitorenter`/`monitorexit` are
/// counted in [`ElisionStats::entries_ignored`] rather than applied,
/// so a stale plan can never corrupt unrelated instructions.
pub fn elide_local_sync(program: &Program, plan: &ElisionPlan) -> (Program, ElisionStats) {
    let mut stats = ElisionStats::default();
    let mut elide: BTreeSet<(u16, usize)> = BTreeSet::new();
    for &(mid, pc) in &plan.ops {
        let is_monitor_op = program
            .method(mid)
            .and_then(|m| m.code().get(pc))
            .is_some_and(|op| matches!(op, Op::MonitorEnter | Op::MonitorExit));
        if is_monitor_op {
            elide.insert((mid, pc));
        } else {
            stats.entries_ignored += 1;
        }
    }
    let desync: BTreeSet<u16> = plan.desync_methods.iter().copied().collect();

    let mut out = Program::new(program.pool_size());
    for (mid, m) in program.methods().iter().enumerate() {
        let mid = mid as u16;
        let code: Vec<Op> = m
            .code()
            .iter()
            .enumerate()
            .map(|(pc, &op)| {
                if elide.contains(&(mid, pc)) {
                    stats.ops_elided += 1;
                    Op::Pop
                } else {
                    op
                }
            })
            .collect();
        let mut flags = m.flags();
        if flags.synchronized && desync.contains(&mid) {
            flags.synchronized = false;
            stats.methods_desynchronized += 1;
        }
        let mut method = Method::new(m.name(), m.arg_count(), m.max_locals(), flags, code);
        for &h in m.handlers() {
            method = method.with_handler(h);
        }
        out.add_method(method);
    }
    (out, stats)
}

/// Statistics of one [`peephole`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeepholeStats {
    /// `iconst a; iconst b; <arith>` folded into one `iconst`.
    pub constants_folded: usize,
    /// `iconst/aconst; pop` pairs removed.
    pub push_pop_removed: usize,
    /// Standalone `nop`s removed.
    pub nops_removed: usize,
}

impl PeepholeStats {
    /// Total instructions eliminated.
    pub fn total_removed(&self) -> usize {
        // Folding replaces three ops with one (two removed); the others
        // remove what they say.
        self.constants_folded * 2 + self.push_pop_removed * 2 + self.nops_removed
    }
}

/// Applies conservative peephole optimizations to every method.
///
/// Windows that overlap a branch target, a handler boundary, or a handler
/// target are left untouched so control-flow joins keep their meaning.
pub fn peephole(program: &Program) -> (Program, PeepholeStats) {
    let mut out = Program::new(program.pool_size());
    let mut stats = PeepholeStats::default();
    for m in program.methods() {
        out.add_method(peephole_method(m, &mut stats));
    }
    (out, stats)
}

fn peephole_method(m: &Method, stats: &mut PeepholeStats) -> Method {
    // Positions that must not be merged into a preceding window because
    // control can enter there.
    let mut entry_points: BTreeSet<usize> = BTreeSet::new();
    for op in m.code() {
        if let Some(t) = op.branch_target() {
            entry_points.insert(t);
        }
    }
    for h in m.handlers() {
        entry_points.insert(h.start);
        entry_points.insert(h.end);
        entry_points.insert(h.target);
    }

    let code = m.code();
    // First pass: rewrite into an op list where removed slots become
    // `None`; folded windows write their result at the *last* slot so
    // later branch targets stay correct relative to surviving ops.
    let mut slots: Vec<Option<Op>> = code.iter().copied().map(Some).collect();
    let crosses = |a: usize, b: usize| (a + 1..=b).any(|p| entry_points.contains(&p));

    let mut i = 0;
    while i < code.len() {
        // iconst a; iconst b; arith  ->  iconst (a op b)
        if i + 2 < code.len() && !crosses(i, i + 2) {
            if let (Some(Op::IConst(a)), Some(Op::IConst(b)), Some(arith)) =
                (slots[i], slots[i + 1], slots[i + 2])
            {
                let folded = match arith {
                    Op::IAdd => Some(a.wrapping_add(b)),
                    Op::ISub => Some(a.wrapping_sub(b)),
                    Op::IMul => Some(a.wrapping_mul(b)),
                    _ => None,
                };
                if let Some(v) = folded {
                    slots[i] = None;
                    slots[i + 1] = None;
                    slots[i + 2] = Some(Op::IConst(v));
                    stats.constants_folded += 1;
                    i += 3;
                    continue;
                }
            }
        }
        // iconst/aconst ; pop  ->  (nothing)
        if i + 1 < code.len() && !crosses(i, i + 1) {
            if let (Some(Op::IConst(_) | Op::AConst(_)), Some(Op::Pop)) = (slots[i], slots[i + 1]) {
                slots[i] = None;
                slots[i + 1] = None;
                stats.push_pop_removed += 1;
                i += 2;
                continue;
            }
        }
        // Standalone nop, unless it is an entry point placeholder.
        if slots[i] == Some(Op::Nop) && !entry_points.contains(&(i + 1)) {
            slots[i] = None;
            stats.nops_removed += 1;
        }
        i += 1;
    }

    // Second pass: compact and remap targets. `new_index[pc]` is the
    // index the op at old `pc` lands on; a removed op maps to the next
    // surviving op (branch targets can point at removed slots).
    let mut new_index = vec![0usize; code.len() + 1];
    let mut next = 0usize;
    for (pc, slot) in slots.iter().enumerate() {
        new_index[pc] = next;
        if slot.is_some() {
            next += 1;
        }
    }
    new_index[code.len()] = next;

    let remap = |t: usize| new_index[t];
    let new_code: Vec<Op> = slots
        .iter()
        .flatten()
        .map(|&op| match op {
            Op::Goto(t) => Op::Goto(remap(t)),
            Op::IfICmpLt(t) => Op::IfICmpLt(remap(t)),
            Op::IfICmpGe(t) => Op::IfICmpGe(remap(t)),
            Op::IfEq(t) => Op::IfEq(remap(t)),
            other => other,
        })
        .collect();

    let mut method = Method::new(
        m.name(),
        m.arg_count(),
        m.max_locals(),
        m.flags(),
        if new_code.is_empty() {
            vec![Op::Return]
        } else {
            new_code
        },
    );
    for &h in m.handlers() {
        method = method.with_handler(Handler {
            start: remap(h.start),
            end: remap(h.end).max(remap(h.start) + 1),
            target: remap(h.target),
        });
    }
    method
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::program::MethodFlags;
    use crate::programs::MicroBench;
    use crate::value::Value;
    use crate::verify::{verify_program, VerifyOptions};
    use thinlock::ThinLocks;
    use thinlock_runtime::heap::ObjRef;
    use thinlock_runtime::protocol::SyncProtocol;

    fn run_program(program: &Program, pool_size: u32, arg: i32) -> i32 {
        let heap = std::sync::Arc::new(thinlock_runtime::heap::Heap::with_capacity_and_fields(
            pool_size as usize + 1,
            1,
        ));
        let locks = ThinLocks::new(heap, thinlock_runtime::registry::ThreadRegistry::new());
        let pool: Vec<ObjRef> = (0..pool_size)
            .map(|_| locks.heap().alloc().unwrap())
            .collect();
        let reg = locks.registry().register().unwrap();
        let vm = Vm::new(&locks, program, pool).unwrap();
        vm.run("main", reg.token(), &[Value::Int(arg)])
            .unwrap()
            .and_then(Value::as_int)
            .unwrap()
    }

    #[test]
    fn stripping_preserves_results_on_every_microbench() {
        for bench in [
            MicroBench::Sync,
            MicroBench::NestedSync,
            MicroBench::MultiSync(8),
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
            MicroBench::MixedSync,
        ] {
            let original = bench.program();
            let stripped = strip_synchronization(&original);
            stripped.validate().unwrap();
            verify_program(
                &stripped,
                VerifyOptions {
                    // Stripped programs no longer balance monitors (there
                    // are none); the structural check must be off.
                    structured_locking: false,
                    ..VerifyOptions::default()
                },
            )
            .unwrap();
            let n = 37;
            assert_eq!(
                run_program(&original, bench.pool_size(), n),
                run_program(&stripped, bench.pool_size(), n),
                "{bench}"
            );
            // And no method remains synchronized.
            assert!(stripped.methods().iter().all(|m| !m.flags().synchronized));
            assert!(!stripped
                .methods()
                .iter()
                .any(|m| m.code().contains(&Op::MonitorEnter)));
        }
    }

    #[test]
    fn stripped_program_never_locks() {
        let bench = MicroBench::Sync;
        let stripped = strip_synchronization(&bench.program());
        let locks = ThinLocks::with_capacity(2);
        let pool = vec![locks.heap().alloc().unwrap()];
        let reg = locks.registry().register().unwrap();
        let vm = Vm::new(&locks, &stripped, pool.clone()).unwrap();
        vm.run("main", reg.token(), &[Value::Int(100)]).unwrap();
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0);
    }

    #[test]
    fn elide_applies_only_named_ops() {
        // MixedSync's main nests three enter/exit pairs; elide one pair
        // and verify the program still computes the same answer while
        // still actually locking (the other two pairs remain).
        let bench = MicroBench::MixedSync;
        let original = bench.program();
        let main = original.method(0).unwrap();
        let monitor_pcs: Vec<usize> = main
            .code()
            .iter()
            .enumerate()
            .filter(|(_, op)| matches!(op, Op::MonitorEnter | Op::MonitorExit))
            .map(|(pc, _)| pc)
            .collect();
        assert_eq!(monitor_pcs.len(), 6);
        let plan = ElisionPlan {
            ops: vec![(0, monitor_pcs[0]), (0, monitor_pcs[5])],
            desync_methods: vec![],
        };
        let (elided, stats) = elide_local_sync(&original, &plan);
        assert_eq!(stats.ops_elided, 2);
        assert_eq!(stats.entries_ignored, 0);
        elided.validate().unwrap();
        let remaining = elided
            .method(0)
            .unwrap()
            .code()
            .iter()
            .filter(|op| matches!(op, Op::MonitorEnter | Op::MonitorExit))
            .count();
        assert_eq!(remaining, 4);
        assert_eq!(
            run_program(&original, bench.pool_size(), 29),
            run_program(&elided, bench.pool_size(), 29),
        );
    }

    #[test]
    fn elide_ignores_stale_plan_entries() {
        let p = MicroBench::Sync.program();
        let plan = ElisionPlan {
            ops: vec![(0, 0), (7, 3), (0, 9999)],
            desync_methods: vec![],
        };
        let (out, stats) = elide_local_sync(&p, &plan);
        // pc 0 of Sync's main is not a monitor op, and the others are out
        // of range: nothing may change.
        assert_eq!(stats.ops_elided, 0);
        assert_eq!(stats.entries_ignored, 3);
        assert_eq!(out.method(0).unwrap().code(), p.method(0).unwrap().code());
    }

    #[test]
    fn elide_clears_synchronized_flag_on_request() {
        let p = MicroBench::CallSync.program();
        let plan = ElisionPlan {
            ops: vec![],
            desync_methods: vec![1],
        };
        let (out, stats) = elide_local_sync(&p, &plan);
        assert_eq!(stats.methods_desynchronized, 1);
        assert!(!out.method(1).unwrap().flags().synchronized);
        assert_eq!(run_program(&p, 1, 41), run_program(&out, 1, 41),);
    }

    #[test]
    fn peephole_folds_constants() {
        let mut p = Program::new(0);
        p.add_method(Method::new(
            "main",
            1,
            1,
            MethodFlags {
                synchronized: false,
                returns_value: true,
            },
            vec![
                Op::IConst(20),
                Op::IConst(22),
                Op::IAdd,
                Op::Nop,
                Op::IReturn,
            ],
        ));
        let (opt, stats) = peephole(&p);
        opt.validate().unwrap();
        assert_eq!(stats.constants_folded, 1);
        assert_eq!(stats.nops_removed, 1);
        assert_eq!(stats.total_removed(), 3);
        assert_eq!(
            opt.method(0).unwrap().code(),
            &[Op::IConst(42), Op::IReturn]
        );
        assert_eq!(run_program(&opt, 0, 0), 42);
    }

    #[test]
    fn peephole_removes_push_pop() {
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "main",
            1,
            1,
            MethodFlags {
                synchronized: false,
                returns_value: true,
            },
            vec![Op::AConst(0), Op::Pop, Op::IConst(7), Op::IReturn],
        ));
        let (opt, stats) = peephole(&p);
        assert_eq!(stats.push_pop_removed, 1);
        assert_eq!(opt.method(0).unwrap().code(), &[Op::IConst(7), Op::IReturn]);
        assert_eq!(run_program(&opt, 1, 0), 7);
    }

    #[test]
    fn peephole_respects_branch_targets() {
        // The iconst at pc 3 is a branch target: the window (2,3,4) must
        // not fold across it.
        let mut p = Program::new(0);
        p.add_method(Method::new(
            "main",
            1,
            1,
            MethodFlags {
                synchronized: false,
                returns_value: true,
            },
            vec![
                Op::ILoad(0),   // 0
                Op::IfEq(3),    // 1: arg==0 -> jump into the middle
                Op::IConst(10), // 2
                Op::IConst(20), // 3: branch target
                Op::IAdd,       // 4  (only valid on the fall-through path)
                Op::IReturn,    // 5
            ],
        ));
        let (opt, stats) = peephole(&p);
        opt.validate().unwrap();
        assert_eq!(stats.constants_folded, 0, "fold across a join is illegal");
        // Fall-through path unchanged semantically.
        assert_eq!(run_program(&opt, 0, 1), 30);
    }

    #[test]
    fn peephole_preserves_microbench_semantics() {
        for bench in [
            MicroBench::Sync,
            MicroBench::MultiSync(4),
            MicroBench::CallSync,
        ] {
            let original = bench.program();
            let (opt, _) = peephole(&original);
            opt.validate().unwrap();
            assert_eq!(
                run_program(&original, bench.pool_size(), 53),
                run_program(&opt, bench.pool_size(), 53),
                "{bench}"
            );
        }
    }

    #[test]
    fn peephole_remaps_handler_tables() {
        let mut p = Program::new(1);
        p.add_method(
            Method::new(
                "main",
                1,
                2,
                MethodFlags {
                    synchronized: false,
                    returns_value: true,
                },
                vec![
                    Op::Nop,       // 0: removable
                    Op::AConst(0), // 1
                    Op::Throw,     // 2
                    Op::AStore(1), // 3: handler target
                    Op::IConst(5), // 4
                    Op::IReturn,   // 5
                ],
            )
            .with_handler(Handler {
                start: 1,
                end: 3,
                target: 3,
            }),
        );
        let (opt, _) = peephole(&p);
        opt.validate().unwrap();
        assert_eq!(run_program(&opt, 1, 0), 5, "exception still caught");
    }
}
