//! Machine-readable synchronization plans.
//!
//! A [`SyncPlan`] is the startup contract between a static analysis (the
//! `thinlock-analysis` contention pass) or a dynamic profiler (the
//! `thinlock-bench` adaptive planner) and the VM: per pooled object, the
//! knobs worth turning before the workload runs. Like
//! [`ElisionPlan`](crate::transform::ElisionPlan) it is plain data
//! rather than an analysis type, so the VM stays independent of the
//! crates that produce plans (they depend on this one).
//!
//! [`Vm::apply_sync_plan`](crate::interp::Vm::apply_sync_plan) consumes
//! the two flags the protocol can act on at startup (`pre_inflate`,
//! `pin_fifo`); `elide` is applied earlier, at transform time, and
//! `backend_hint` is advisory input to backend *selection* (see
//! BACKENDS.md), not to a running protocol.

use std::fmt;

/// Which lock representation a site's predicted contention shape favors.
///
/// Advisory: it names a protocol *capability*, not a concrete backend.
/// The mapping to backends goes through the capability probes on
/// `BackendChoice` (`fifo_admission`, `deflation_capable`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum BackendHint {
    /// The featherweight default: a thin lock word is enough.
    #[default]
    Thin,
    /// Park-heavy: start fat so waiters never inflate mid-wait.
    Fat,
    /// Hot and multi-threaded: FIFO admission keeps handoff fair.
    Fifo,
    /// Many short-lived monitors: a deflating backend bounds the
    /// monitor population.
    Deflating,
}

impl BackendHint {
    /// Stable lowercase name used in JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendHint::Thin => "thin",
            BackendHint::Fat => "fat",
            BackendHint::Fifo => "fifo",
            BackendHint::Deflating => "deflating",
        }
    }
}

impl fmt::Display for BackendHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-site knobs for one pooled object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEntry {
    /// Pool index of the object the entry is about.
    pub pool: u32,
    /// Monitor operations on this object are provably thread-local and
    /// may be removed (see `transform::elide_local_sync`).
    pub elide: bool,
    /// Switch to the expensive lock shape before the workload runs.
    pub pre_inflate: bool,
    /// Pin the object to FIFO admission for fair handoff.
    pub pin_fifo: bool,
    /// Preferred lock representation for this site.
    pub backend_hint: BackendHint,
}

impl PlanEntry {
    /// A do-nothing entry for `pool` (thin, no flags set).
    pub fn neutral(pool: u32) -> Self {
        PlanEntry {
            pool,
            elide: false,
            pre_inflate: false,
            pin_fifo: false,
            backend_hint: BackendHint::Thin,
        }
    }
}

/// A startup synchronization plan: one entry per pooled object the
/// producer had something to say about. Objects without an entry get
/// the neutral default behavior.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncPlan {
    /// Plan entries, sorted by pool index, at most one per index.
    pub entries: Vec<PlanEntry>,
}

impl SyncPlan {
    /// The entry for `pool`, if the plan names it.
    pub fn entry(&self, pool: u32) -> Option<&PlanEntry> {
        self.entries.iter().find(|e| e.pool == pool)
    }

    /// Pool indices the plan wants pre-inflated.
    pub fn pre_inflate_pools(&self) -> Vec<u32> {
        self.entries
            .iter()
            .filter(|e| e.pre_inflate)
            .map(|e| e.pool)
            .collect()
    }

    /// Pool indices the plan wants pinned to FIFO admission.
    pub fn pin_pools(&self) -> Vec<u32> {
        self.entries
            .iter()
            .filter(|e| e.pin_fifo)
            .map(|e| e.pool)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_accessors_filter_by_flag() {
        let plan = SyncPlan {
            entries: vec![
                PlanEntry {
                    pre_inflate: true,
                    backend_hint: BackendHint::Fat,
                    ..PlanEntry::neutral(0)
                },
                PlanEntry {
                    pin_fifo: true,
                    backend_hint: BackendHint::Fifo,
                    ..PlanEntry::neutral(2)
                },
                PlanEntry::neutral(5),
            ],
        };
        assert_eq!(plan.pre_inflate_pools(), vec![0]);
        assert_eq!(plan.pin_pools(), vec![2]);
        assert_eq!(plan.entry(5), Some(&PlanEntry::neutral(5)));
        assert_eq!(plan.entry(1), None);
    }

    #[test]
    fn backend_hint_names_are_stable() {
        for (h, s) in [
            (BackendHint::Thin, "thin"),
            (BackendHint::Fat, "fat"),
            (BackendHint::Fifo, "fifo"),
            (BackendHint::Deflating, "deflating"),
        ] {
            assert_eq!(h.as_str(), s);
            assert_eq!(h.to_string(), s);
        }
        assert_eq!(BackendHint::default(), BackendHint::Thin);
    }
}
