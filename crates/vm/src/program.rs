//! Methods and programs: the static side of the miniature VM.

use std::fmt;

use crate::bytecode::Op;

/// One entry of a method's exception-handler table: when an exception is
/// thrown by an instruction with `start <= pc < end`, control transfers to
/// `target` with the operand stack cleared to just the exception object —
/// exactly the JVM's `Code` attribute exception table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Handler {
    /// First protected instruction (inclusive).
    pub start: usize,
    /// End of the protected range (exclusive).
    pub end: usize,
    /// Handler entry point.
    pub target: usize,
}

/// Method attribute flags (a small model of the JVM's access flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MethodFlags {
    /// The JVM's `ACC_SYNCHRONIZED`: the interpreter locks the receiver
    /// (first argument, which must be an object reference) around the
    /// method body, releasing it on any exit including errors.
    pub synchronized: bool,
    /// Method returns an `int` (pushes one value at the call site).
    pub returns_value: bool,
}

/// A single method: metadata plus straight-line bytecode.
///
/// # Example
///
/// ```
/// use thinlock_vm::{Method, MethodFlags, Op};
///
/// // int identity(int x) { return x; }
/// let m = Method::new(
///     "identity",
///     1,
///     1,
///     MethodFlags { synchronized: false, returns_value: true },
///     vec![Op::ILoad(0), Op::IReturn],
/// );
/// assert_eq!(m.name(), "identity");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Method {
    name: String,
    arg_count: u8,
    max_locals: u8,
    flags: MethodFlags,
    code: Vec<Op>,
    handlers: Vec<Handler>,
}

impl Method {
    /// Creates a method.
    ///
    /// # Panics
    ///
    /// Panics if `max_locals < arg_count` (arguments are stored in the
    /// first locals) or if the code is empty.
    pub fn new(
        name: impl Into<String>,
        arg_count: u8,
        max_locals: u8,
        flags: MethodFlags,
        code: Vec<Op>,
    ) -> Self {
        assert!(max_locals >= arg_count, "locals must hold the arguments");
        assert!(!code.is_empty(), "method body cannot be empty");
        Method {
            name: name.into(),
            arg_count,
            max_locals,
            flags,
            code,
            handlers: Vec::new(),
        }
    }

    /// Adds an exception-table entry (builder style).
    #[must_use]
    pub fn with_handler(mut self, handler: Handler) -> Self {
        self.handlers.push(handler);
        self
    }

    /// The exception-handler table, in search order (first match wins,
    /// like the JVM).
    pub fn handlers(&self) -> &[Handler] {
        &self.handlers
    }

    /// The first handler protecting `pc`, if any.
    pub fn handler_for(&self, pc: usize) -> Option<Handler> {
        self.handlers
            .iter()
            .copied()
            .find(|h| h.start <= pc && pc < h.end)
    }

    /// The method's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of arguments (stored in locals `0..arg_count`; a
    /// synchronized method's receiver is argument 0).
    pub fn arg_count(&self) -> u8 {
        self.arg_count
    }

    /// Number of local-variable slots.
    pub fn max_locals(&self) -> u8 {
        self.max_locals
    }

    /// The attribute flags.
    pub fn flags(&self) -> MethodFlags {
        self.flags
    }

    /// The bytecode.
    pub fn code(&self) -> &[Op] {
        &self.code
    }

    /// Validates internal consistency: branch targets in range, local
    /// slots within `max_locals`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed instruction.
    pub fn validate(&self) -> Result<(), String> {
        for (pc, op) in self.code.iter().enumerate() {
            if let Some(target) = op.branch_target() {
                if target >= self.code.len() {
                    return Err(format!(
                        "{}: pc {pc}: branch target {target} out of range",
                        self.name
                    ));
                }
            }
            let slot = match *op {
                Op::ILoad(s) | Op::IStore(s) | Op::IInc(s, _) | Op::ALoad(s) | Op::AStore(s) => {
                    Some(s)
                }
                _ => None,
            };
            if let Some(s) = slot {
                if s >= self.max_locals {
                    return Err(format!(
                        "{}: pc {pc}: local {s} exceeds max_locals {}",
                        self.name, self.max_locals
                    ));
                }
            }
        }
        for (i, h) in self.handlers.iter().enumerate() {
            if h.start >= h.end || h.end > self.code.len() {
                return Err(format!(
                    "{}: handler {i}: bad protected range {}..{}",
                    self.name, h.start, h.end
                ));
            }
            if h.target >= self.code.len() {
                return Err(format!(
                    "{}: handler {i}: target {} out of range",
                    self.name, h.target
                ));
            }
        }
        Ok(())
    }
}

/// A program: a table of methods addressed by index, plus the size of the
/// object constant pool it expects at run time.
///
/// The object pool models the JVM constant pool after resolution: `aconst
/// k` pushes the `k`-th pre-allocated object. The pool itself (actual
/// `ObjRef`s) is supplied to the interpreter, since objects belong to a
/// heap, not to static code.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    methods: Vec<Method>,
    pool_size: u32,
}

impl Program {
    /// Creates an empty program expecting `pool_size` pooled objects.
    pub fn new(pool_size: u32) -> Self {
        Program {
            methods: Vec::new(),
            pool_size,
        }
    }

    /// Adds a method, returning its id for `invoke`.
    pub fn add_method(&mut self, method: Method) -> u16 {
        let id = u16::try_from(self.methods.len()).expect("too many methods");
        self.methods.push(method);
        id
    }

    /// Looks up a method by id.
    pub fn method(&self, id: u16) -> Option<&Method> {
        self.methods.get(usize::from(id))
    }

    /// Looks up a method by name.
    pub fn method_id(&self, name: &str) -> Option<u16> {
        self.methods
            .iter()
            .position(|m| m.name() == name)
            .map(|i| i as u16)
    }

    /// All methods in id order.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// Number of pooled objects the interpreter must provide.
    pub fn pool_size(&self) -> u32 {
        self.pool_size
    }

    /// Validates every method plus cross-method references.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for m in &self.methods {
            m.validate()?;
            for (pc, op) in m.code().iter().enumerate() {
                match *op {
                    Op::Invoke(id) if self.method(id).is_none() => {
                        return Err(format!("{}: pc {pc}: unknown method id {id}", m.name()));
                    }
                    Op::AConst(i) if i >= self.pool_size => {
                        return Err(format!(
                            "{}: pc {pc}: pool index {i} exceeds pool size {}",
                            m.name(),
                            self.pool_size
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; pool {}", self.pool_size)?;
        for m in &self.methods {
            let sync = if m.flags().synchronized { " sync" } else { "" };
            let ret = if m.flags().returns_value {
                " returns"
            } else {
                ""
            };
            writeln!(
                f,
                "method {} args={} locals={}{sync}{ret} {{",
                m.name(),
                m.arg_count(),
                m.max_locals()
            )?;
            for (pc, op) in m.code().iter().enumerate() {
                writeln!(f, "  {pc:4}: {op}")?;
            }
            for h in m.handlers() {
                writeln!(f, "  .catch {} {} {}", h.start, h.end, h.target)?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_method() -> Method {
        Method::new(
            "f",
            0,
            1,
            MethodFlags {
                synchronized: false,
                returns_value: true,
            },
            vec![Op::IConst(1), Op::IReturn],
        )
    }

    #[test]
    fn add_and_lookup() {
        let mut p = Program::new(0);
        let id = p.add_method(simple_method());
        assert_eq!(p.method(id).unwrap().name(), "f");
        assert_eq!(p.method_id("f"), Some(id));
        assert_eq!(p.method_id("g"), None);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_branch() {
        let m = Method::new("bad", 0, 0, MethodFlags::default(), vec![Op::Goto(7)]);
        assert!(m.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validation_rejects_bad_local() {
        let m = Method::new(
            "bad",
            0,
            1,
            MethodFlags::default(),
            vec![Op::ILoad(3), Op::Return],
        );
        assert!(m.validate().unwrap_err().contains("max_locals"));
    }

    #[test]
    fn validation_rejects_unknown_invoke_and_pool() {
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "caller",
            0,
            0,
            MethodFlags::default(),
            vec![Op::Invoke(99), Op::Return],
        ));
        assert!(p.validate().unwrap_err().contains("unknown method"));

        let mut p2 = Program::new(1);
        p2.add_method(Method::new(
            "pooluser",
            0,
            0,
            MethodFlags::default(),
            vec![Op::AConst(5), Op::Return],
        ));
        assert!(p2.validate().unwrap_err().contains("pool index"));
    }

    #[test]
    #[should_panic(expected = "locals must hold the arguments")]
    fn method_locals_must_cover_args() {
        let _ = Method::new("m", 2, 1, MethodFlags::default(), vec![Op::Return]);
    }

    #[test]
    fn display_lists_methods() {
        let mut p = Program::new(2);
        p.add_method(simple_method());
        let text = p.to_string();
        assert!(text.contains("method f"));
        assert!(text.contains("iconst 1"));
        assert!(text.contains("; pool 2"));
    }
}
