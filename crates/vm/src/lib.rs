//! A miniature stack-based bytecode interpreter.
//!
//! The paper's measurements run inside the JDK 1.1.2 *interpreter*: the
//! `NoSync` reference micro-benchmark measures pure bytecode-dispatch
//! cost, and every other micro-benchmark of Table 2 adds `monitorenter`/
//! `monitorexit` bytecodes or `synchronized` method invocation on top of
//! the same loop. To reproduce those benchmarks meaningfully we need the
//! same substrate: an interpreter whose dispatch loop costs real time and
//! whose synchronization bytecodes call into a pluggable
//! [`SyncProtocol`](thinlock_runtime::protocol::SyncProtocol).
//!
//! The design is a deliberately small model of the JVM:
//!
//! * [`bytecode::Op`] — a JVM-flavoured instruction set (`iconst`,
//!   `iload`, `if_icmpge`, `monitorenter`, `invoke`, …) with an object
//!   constant pool standing in for resolved references;
//! * [`program::Method`] / [`program::Program`] — methods with argument
//!   counts, local slots, and a `synchronized` flag that locks the
//!   receiver around the body exactly like the JVM's `ACC_SYNCHRONIZED`;
//! * [`interp::Vm`] — the interpreter, generic over the locking protocol;
//! * [`asm`] — a textual assembler/disassembler for writing programs and
//!   property-testing the encoding;
//! * [`programs`] — generators for every micro-benchmark of Table 2 plus
//!   the `MixedSync` variant of Figure 6;
//! * [`verify`] — a JVM-style static verifier (dataflow over stack depth,
//!   value kinds, definite assignment, and structured locking);
//! * [`library`] — a synchronized `Vector`/`Hashtable` class library in
//!   bytecode, plus a `javalex`-shaped workload (the paper's motivating
//!   "library tax" example);
//! * [`transform`] — bytecode transformations: synchronization stripping
//!   (how Figure 6's "NOP" datapoint was made) and a peephole optimizer.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod asm;
pub mod bytecode;
pub mod error;
pub mod interp;
pub mod library;
pub mod plan;
pub mod program;
pub mod programs;
pub mod transform;
pub mod value;
pub mod verify;

pub use bytecode::Op;
pub use error::VmError;
pub use interp::Vm;
pub use program::{Method, MethodFlags, Program};
pub use value::Value;
