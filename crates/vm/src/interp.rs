//! The bytecode interpreter, generic over the locking protocol.
//!
//! Like the paper's JDK interpreter, every `monitorenter`/`monitorexit`
//! bytecode and every synchronized method invocation goes through the
//! [`SyncProtocol`], so running the same program over `ThinLocks`,
//! `MonitorCache`, and `HotLocks` measures exactly the difference in their
//! locking fast paths on top of a fixed dispatch cost.

use std::fmt;

use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_runtime::registry::ThreadToken;

use crate::bytecode::Op;
use crate::error::VmError;
use crate::program::{Method, Program};
use crate::value::Value;

/// Internal outcome of a frame: a normal return or an in-flight exception
/// unwinding towards a handler.
enum Exec {
    Return(Option<Value>),
    Threw(ObjRef),
}

/// An executable instance: program + object pool + locking protocol.
///
/// The VM itself is stateless between calls; each [`run`](Vm::run) builds
/// its own frame stack, so one `Vm` may be shared by many threads (the
/// `Threads n` micro-benchmark does exactly that).
///
/// # Example
///
/// ```
/// use thinlock::ThinLocks;
/// use thinlock_runtime::protocol::SyncProtocol;
/// use thinlock_vm::{Method, MethodFlags, Op, Program, Value, Vm};
///
/// let locks = ThinLocks::with_capacity(4);
/// let reg = locks.registry().register()?;
///
/// let mut program = Program::new(0);
/// program.add_method(Method::new(
///     "double",
///     1,
///     1,
///     MethodFlags { synchronized: false, returns_value: true },
///     vec![Op::ILoad(0), Op::ILoad(0), Op::IAdd, Op::IReturn],
/// ));
///
/// let vm = Vm::new(&locks, &program, vec![])?;
/// let out = vm.run("double", reg.token(), &[Value::Int(21)])?;
/// assert_eq!(out, Some(Value::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Vm<'p, P: SyncProtocol + ?Sized> {
    protocol: &'p P,
    program: &'p Program,
    pool: Vec<ObjRef>,
    /// The protocol's trace sink, resolved once at construction so the
    /// field-access fast path pays a single never-taken branch when
    /// tracing is off.
    sink: Option<&'p dyn TraceSink>,
}

impl<'p, P: SyncProtocol + ?Sized> Vm<'p, P> {
    /// Creates a VM instance.
    ///
    /// # Errors
    ///
    /// Returns the program's own validation error, or a pool-size mismatch,
    /// as a `String` description (static errors, not runtime `VmError`s).
    pub fn new(protocol: &'p P, program: &'p Program, pool: Vec<ObjRef>) -> Result<Self, String> {
        program.validate()?;
        if pool.len() != program.pool_size() as usize {
            return Err(format!(
                "program expects {} pooled objects, got {}",
                program.pool_size(),
                pool.len()
            ));
        }
        Ok(Vm {
            protocol,
            program,
            pool,
            sink: protocol.trace_sink(),
        })
    }

    /// Emits a field-access event when the protocol has a trace sink.
    #[inline]
    fn trace_field(&self, token: ThreadToken, obj: ObjRef, field: u16, write: bool) {
        if let Some(sink) = self.sink {
            sink.record(
                Some(token.index()),
                Some(obj),
                TraceEventKind::FieldAccess { field, write },
            );
        }
    }

    /// The locking protocol in use.
    pub fn protocol(&self) -> &P {
        self.protocol
    }

    /// The object pool backing `aconst`/`aloadpool`.
    pub fn pool(&self) -> &[ObjRef] {
        &self.pool
    }

    /// Applies static pre-inflation hints to the pooled objects named by
    /// `hints` (pool indices, as produced by the `lockcheck` nest-depth
    /// pass). Each named object is handed to
    /// [`SyncProtocol::pre_inflate_hint`], which switches it to the
    /// protocol's expensive lock representation up front so that a
    /// predicted count overflow never inflates mid-critical-path. Returns
    /// how many objects actually changed representation. Out-of-range
    /// indices are ignored (the hint is advisory).
    pub fn apply_pre_inflation_hints(&self, hints: &[u32]) -> usize {
        hints
            .iter()
            .filter_map(|&i| self.pool.get(i as usize))
            .filter(|&&obj| self.protocol.pre_inflate_hint(obj))
            .count()
    }

    /// Applies a startup [`SyncPlan`](crate::plan::SyncPlan): every
    /// `pre_inflate` entry is delivered through
    /// [`SyncProtocol::pre_inflate_hint`] and every `pin_fifo` entry
    /// through [`SyncProtocol::pin_fifo_hint`], generalizing
    /// [`apply_pre_inflation_hints`](Self::apply_pre_inflation_hints) to
    /// the full plan vocabulary. `elide` entries are not acted on here —
    /// elision is a bytecode transform that must run before the `Vm` is
    /// built — and `backend_hint` is advisory input to backend
    /// selection, not to a running protocol. Returns how many hints the
    /// protocol honored (representation changed or pin accepted).
    /// Out-of-range pool indices are ignored: the plan is advisory.
    pub fn apply_sync_plan(&self, plan: &crate::plan::SyncPlan) -> usize {
        let mut applied = 0;
        for entry in &plan.entries {
            let Some(&obj) = self.pool.get(entry.pool as usize) else {
                continue;
            };
            if entry.pre_inflate && self.protocol.pre_inflate_hint(obj) {
                applied += 1;
            }
            if entry.pin_fifo && self.protocol.pin_fifo_hint(obj) {
                applied += 1;
            }
        }
        applied
    }

    /// Runs method `name` with `args` on the calling thread.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised by execution; [`VmError::BadMethod`] if the
    /// name does not resolve.
    pub fn run(
        &self,
        name: &str,
        token: ThreadToken,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        let id = self
            .program
            .method_id(name)
            .ok_or(VmError::BadMethod { id: u16::MAX })?;
        self.run_id(id, token, args)
    }

    /// Runs method `id` with unlimited fuel.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised by execution, including
    /// [`VmError::UncaughtException`] for an exception no frame caught.
    pub fn run_id(
        &self,
        id: u16,
        token: ThreadToken,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        let mut fuel = u64::MAX;
        match self.call(id, token, args, &mut fuel)? {
            Exec::Return(v) => Ok(v),
            Exec::Threw(object) => Err(VmError::UncaughtException { object }),
        }
    }

    /// Runs method `name` with a step budget; returns the value and the
    /// number of instructions executed.
    ///
    /// # Errors
    ///
    /// [`VmError::OutOfFuel`] if the budget is exhausted, otherwise any
    /// [`VmError`] raised by execution.
    pub fn run_with_fuel(
        &self,
        name: &str,
        token: ThreadToken,
        args: &[Value],
        fuel: u64,
    ) -> Result<(Option<Value>, u64), VmError> {
        let id = self
            .program
            .method_id(name)
            .ok_or(VmError::BadMethod { id: u16::MAX })?;
        let mut remaining = fuel;
        let out = match self.call(id, token, args, &mut remaining)? {
            Exec::Return(v) => v,
            Exec::Threw(object) => return Err(VmError::UncaughtException { object }),
        };
        Ok((out, fuel - remaining))
    }

    /// Invokes one method, honouring `ACC_SYNCHRONIZED`.
    fn call(
        &self,
        id: u16,
        token: ThreadToken,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Exec, VmError> {
        let method = self.program.method(id).ok_or(VmError::BadMethod { id })?;
        debug_assert_eq!(args.len(), usize::from(method.arg_count()));

        let monitor = if method.flags().synchronized {
            let recv = args
                .first()
                .copied()
                .and_then(Value::as_ref)
                .ok_or(VmError::NullMonitor { pc: 0 })?;
            self.protocol.lock(recv, token)?;
            Some(recv)
        } else {
            None
        };

        let result = self.exec_body(method, token, args, fuel);

        if let Some(obj) = monitor {
            // Release on every exit path, as the JVM does for synchronized
            // methods even when an exception unwinds through them.
            let unlocked = self.protocol.unlock(obj, token);
            if result.is_ok() {
                unlocked?;
            }
        }
        result
    }

    /// Transfers control to `pc`'s handler if one protects it: the operand
    /// stack is cleared down to just the exception object, as in the JVM.
    fn dispatch_handler(
        method: &Method,
        pc: usize,
        exception: ObjRef,
        stack: &mut Vec<Value>,
    ) -> Option<usize> {
        let handler = method.handler_for(pc)?;
        stack.clear();
        stack.push(Value::Ref(exception));
        Some(handler.target)
    }

    /// The dispatch loop.
    fn exec_body(
        &self,
        method: &Method,
        token: ThreadToken,
        args: &[Value],
        fuel: &mut u64,
    ) -> Result<Exec, VmError> {
        let code = method.code();
        let mut locals = vec![Value::Null; usize::from(method.max_locals())];
        locals[..args.len()].copy_from_slice(args);
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc: usize = 0;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow { pc })?
            };
        }
        macro_rules! pop_int {
            () => {
                pop!().as_int().ok_or(VmError::TypeMismatch { pc })?
            };
        }
        macro_rules! pop_obj {
            () => {
                match pop!() {
                    Value::Ref(r) => r,
                    Value::Null => return Err(VmError::NullMonitor { pc }),
                    _ => return Err(VmError::TypeMismatch { pc }),
                }
            };
        }
        macro_rules! local {
            ($slot:expr) => {{
                let s = usize::from($slot);
                if s >= locals.len() {
                    return Err(VmError::BadLocal { slot: $slot });
                }
                s
            }};
        }

        loop {
            let op = *code.get(pc).ok_or(VmError::BadPc { target: pc })?;
            *fuel = fuel.checked_sub(1).ok_or(VmError::OutOfFuel)?;
            if *fuel == 0 {
                return Err(VmError::OutOfFuel);
            }
            let mut next = pc + 1;
            match op {
                Op::IConst(v) => stack.push(Value::Int(v)),
                Op::ILoad(s) => {
                    let v = locals[local!(s)];
                    if v.as_int().is_none() {
                        return Err(VmError::TypeMismatch { pc });
                    }
                    stack.push(v);
                }
                Op::IStore(s) => {
                    let v = pop_int!();
                    let idx = local!(s);
                    locals[idx] = Value::Int(v);
                }
                Op::IInc(s, d) => {
                    let idx = local!(s);
                    let v = locals[idx].as_int().ok_or(VmError::TypeMismatch { pc })?;
                    locals[idx] = Value::Int(v.wrapping_add(i32::from(d)));
                }
                Op::IAdd => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_add(b)));
                }
                Op::ISub => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_sub(b)));
                }
                Op::IMul => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_mul(b)));
                }
                Op::IRem => {
                    let b = pop_int!();
                    let a = pop_int!();
                    if b == 0 {
                        return Err(VmError::DivisionByZero { pc });
                    }
                    stack.push(Value::Int(a.wrapping_rem(b)));
                }
                Op::INeg => {
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_neg()));
                }
                Op::IAnd => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a & b));
                }
                Op::IOr => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a | b));
                }
                Op::IXor => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a ^ b));
                }
                Op::IShl => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_shl(b as u32 & 31)));
                }
                Op::IShr => {
                    let b = pop_int!();
                    let a = pop_int!();
                    stack.push(Value::Int(a.wrapping_shr(b as u32 & 31)));
                }
                Op::ALoad(s) => {
                    let v = locals[local!(s)];
                    match v {
                        Value::Ref(_) | Value::Null => stack.push(v),
                        Value::Int(_) => return Err(VmError::TypeMismatch { pc }),
                    }
                }
                Op::AStore(s) => {
                    let v = pop!();
                    let idx = local!(s);
                    match v {
                        Value::Ref(_) | Value::Null => locals[idx] = v,
                        Value::Int(_) => return Err(VmError::TypeMismatch { pc }),
                    }
                }
                Op::AConst(i) => {
                    let obj = self
                        .pool
                        .get(i as usize)
                        .copied()
                        .ok_or(VmError::BadPoolIndex { index: i })?;
                    stack.push(Value::Ref(obj));
                }
                Op::ALoadPool => {
                    let i = pop_int!();
                    let obj = usize::try_from(i)
                        .ok()
                        .and_then(|i| self.pool.get(i).copied())
                        .ok_or(VmError::BadPoolIndex { index: i as u32 })?;
                    stack.push(Value::Ref(obj));
                }
                Op::GetField(i) => {
                    let obj = pop_obj!();
                    let heap = self.protocol.heap();
                    if usize::from(i) >= heap.fields_per_object() {
                        return Err(VmError::BadField { index: i });
                    }
                    self.trace_field(token, obj, i, false);
                    let v = heap
                        .field(obj, usize::from(i))
                        .load(std::sync::atomic::Ordering::Relaxed);
                    stack.push(Value::Int(v));
                }
                Op::PutField(i) => {
                    let v = pop_int!();
                    let obj = pop_obj!();
                    let heap = self.protocol.heap();
                    if usize::from(i) >= heap.fields_per_object() {
                        return Err(VmError::BadField { index: i });
                    }
                    self.trace_field(token, obj, i, true);
                    heap.field(obj, usize::from(i))
                        .store(v, std::sync::atomic::Ordering::Relaxed);
                }
                Op::GetFieldDyn => {
                    let i = pop_int!();
                    let obj = pop_obj!();
                    let heap = self.protocol.heap();
                    let idx = usize::try_from(i)
                        .ok()
                        .filter(|&i| i < heap.fields_per_object())
                        .ok_or(VmError::BadField { index: i as u16 })?;
                    self.trace_field(token, obj, idx as u16, false);
                    let v = heap
                        .field(obj, idx)
                        .load(std::sync::atomic::Ordering::Relaxed);
                    stack.push(Value::Int(v));
                }
                Op::PutFieldDyn => {
                    let v = pop_int!();
                    let i = pop_int!();
                    let obj = pop_obj!();
                    let heap = self.protocol.heap();
                    let idx = usize::try_from(i)
                        .ok()
                        .filter(|&i| i < heap.fields_per_object())
                        .ok_or(VmError::BadField { index: i as u16 })?;
                    self.trace_field(token, obj, idx as u16, true);
                    heap.field(obj, idx)
                        .store(v, std::sync::atomic::Ordering::Relaxed);
                }
                Op::Dup => {
                    let v = *stack.last().ok_or(VmError::StackUnderflow { pc })?;
                    stack.push(v);
                }
                Op::Pop => {
                    let _ = pop!();
                }
                Op::Goto(t) => next = t,
                Op::IfICmpLt(t) => {
                    let b = pop_int!();
                    let a = pop_int!();
                    if a < b {
                        next = t;
                    }
                }
                Op::IfICmpGe(t) => {
                    let b = pop_int!();
                    let a = pop_int!();
                    if a >= b {
                        next = t;
                    }
                }
                Op::IfICmpEq(t) => {
                    let b = pop_int!();
                    let a = pop_int!();
                    if a == b {
                        next = t;
                    }
                }
                Op::IfEq(t) => {
                    if pop_int!() == 0 {
                        next = t;
                    }
                }
                Op::MonitorEnter => {
                    let obj = pop_obj!();
                    self.protocol.lock(obj, token)?;
                }
                Op::MonitorExit => {
                    let obj = pop_obj!();
                    self.protocol.unlock(obj, token)?;
                }
                Op::Wait => {
                    let obj = pop_obj!();
                    // A bounded wait keeps single-threaded executions (and
                    // schedules where every notifier has already finished)
                    // live: a timed-out waiter simply re-acquires and
                    // proceeds, per JLS spurious-wakeup rules.
                    self.protocol
                        .wait(obj, token, Some(std::time::Duration::from_millis(1)))?;
                }
                Op::Notify => {
                    let obj = pop_obj!();
                    self.protocol.notify(obj, token)?;
                }
                Op::Invoke(id) => {
                    let callee = self.program.method(id).ok_or(VmError::BadMethod { id })?;
                    let argc = usize::from(callee.arg_count());
                    if stack.len() < argc {
                        return Err(VmError::StackUnderflow { pc });
                    }
                    let base = stack.len() - argc;
                    let call_args: Vec<Value> = stack.drain(base..).collect();
                    match self.call(id, token, &call_args, fuel)? {
                        Exec::Return(returned) => match (callee.flags().returns_value, returned) {
                            (true, Some(v)) => stack.push(v),
                            (false, None) => {}
                            _ => return Err(VmError::TypeMismatch { pc }),
                        },
                        Exec::Threw(e) => match Self::dispatch_handler(method, pc, e, &mut stack) {
                            Some(target) => next = target,
                            None => return Ok(Exec::Threw(e)),
                        },
                    }
                }
                Op::Throw => {
                    let e = pop_obj!();
                    match Self::dispatch_handler(method, pc, e, &mut stack) {
                        Some(target) => next = target,
                        None => return Ok(Exec::Threw(e)),
                    }
                }
                Op::Return => return Ok(Exec::Return(None)),
                Op::IReturn => {
                    let v = pop_int!();
                    return Ok(Exec::Return(Some(Value::Int(v))));
                }
                Op::Nop => {}
            }
            pc = next;
        }
    }
}

impl<'p, P: SyncProtocol + ?Sized> fmt::Debug for Vm<'p, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Vm")
            .field("protocol", &self.protocol.name())
            .field("methods", &self.program.methods().len())
            .field("pool", &self.pool.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::MethodFlags;
    use thinlock::ThinLocks;

    fn setup(pool: u32, fields: usize) -> (ThinLocks, Vec<ObjRef>) {
        let heap = std::sync::Arc::new(thinlock_runtime::heap::Heap::with_capacity_and_fields(
            pool as usize + 4,
            fields,
        ));
        let locks = ThinLocks::new(heap, thinlock_runtime::registry::ThreadRegistry::new());
        let objs: Vec<ObjRef> = (0..pool).map(|_| locks.heap().alloc().unwrap()).collect();
        (locks, objs)
    }

    fn flags(returns: bool) -> MethodFlags {
        MethodFlags {
            synchronized: false,
            returns_value: returns,
        }
    }

    #[test]
    fn arithmetic_and_locals() {
        let (locks, _) = setup(0, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(0);
        // int f(int a, int b) { return (a + b) - 1; }
        p.add_method(Method::new(
            "f",
            2,
            2,
            flags(true),
            vec![
                Op::ILoad(0),
                Op::ILoad(1),
                Op::IAdd,
                Op::IConst(1),
                Op::ISub,
                Op::IReturn,
            ],
        ));
        let vm = Vm::new(&locks, &p, vec![]).unwrap();
        let out = vm
            .run("f", reg.token(), &[Value::Int(40), Value::Int(3)])
            .unwrap();
        assert_eq!(out, Some(Value::Int(42)));
    }

    #[test]
    fn loop_with_iinc_and_branch() {
        let (locks, _) = setup(0, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(0);
        // int count(int n) { int i = 0; while (i < n) i++; return i; }
        p.add_method(Method::new(
            "count",
            1,
            2,
            flags(true),
            vec![
                Op::IConst(0),   // 0
                Op::IStore(1),   // 1
                Op::ILoad(1),    // 2: loop
                Op::ILoad(0),    // 3
                Op::IfICmpGe(7), // 4
                Op::IInc(1, 1),  // 5
                Op::Goto(2),     // 6
                Op::ILoad(1),    // 7: end
                Op::IReturn,     // 8
            ],
        ));
        let vm = Vm::new(&locks, &p, vec![]).unwrap();
        let (out, steps) = vm
            .run_with_fuel("count", reg.token(), &[Value::Int(100)], 10_000)
            .unwrap();
        assert_eq!(out, Some(Value::Int(100)));
        assert!(steps > 400, "100 iterations cost real dispatch steps");
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let (locks, _) = setup(0, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(0);
        p.add_method(Method::new("spin", 0, 0, flags(false), vec![Op::Goto(0)]));
        let vm = Vm::new(&locks, &p, vec![]).unwrap();
        assert_eq!(
            vm.run_with_fuel("spin", reg.token(), &[], 100).unwrap_err(),
            VmError::OutOfFuel
        );
    }

    #[test]
    fn monitorenter_exit_changes_lock_word() {
        let (locks, pool) = setup(1, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(1);
        // void f() { synchronized(pool[0]) {} } -- unbalanced across pcs
        p.add_method(Method::new(
            "f",
            0,
            0,
            flags(false),
            vec![
                Op::AConst(0),
                Op::MonitorEnter,
                Op::AConst(0),
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        let vm = Vm::new(&locks, &p, pool.clone()).unwrap();
        vm.run("f", reg.token(), &[]).unwrap();
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0);
    }

    #[test]
    fn synchronized_method_locks_receiver() {
        let (locks, pool) = setup(1, 1);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(1);
        // synchronized void bump(this) { this.f0 = this.f0 + 1; }
        p.add_method(Method::new(
            "bump",
            1,
            1,
            MethodFlags {
                synchronized: true,
                returns_value: false,
            },
            vec![
                Op::ALoad(0),
                Op::ALoad(0),
                Op::GetField(0),
                Op::IConst(1),
                Op::IAdd,
                Op::PutField(0),
                Op::Return,
            ],
        ));
        let vm = Vm::new(&locks, &p, pool.clone()).unwrap();
        for _ in 0..3 {
            vm.run("bump", reg.token(), &[Value::Ref(pool[0])]).unwrap();
        }
        let v = locks
            .heap()
            .field(pool[0], 0)
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(v, 3);
        assert!(
            locks.lock_word(pool[0]).is_unlocked(),
            "method exit unlocked"
        );
    }

    #[test]
    fn synchronized_method_unlocks_on_error() {
        let (locks, pool) = setup(1, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(1);
        // synchronized method whose body faults (stack underflow).
        p.add_method(Method::new(
            "explode",
            1,
            1,
            MethodFlags {
                synchronized: true,
                returns_value: false,
            },
            vec![Op::Pop, Op::Return],
        ));
        let vm = Vm::new(&locks, &p, pool.clone()).unwrap();
        let err = vm
            .run("explode", reg.token(), &[Value::Ref(pool[0])])
            .unwrap_err();
        assert_eq!(err, VmError::StackUnderflow { pc: 0 });
        assert!(
            locks.lock_word(pool[0]).is_unlocked(),
            "monitor released during unwind"
        );
    }

    #[test]
    fn nested_calls_and_return_values() {
        let (locks, _) = setup(0, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(0);
        let inner = p.add_method(Method::new(
            "inc",
            1,
            1,
            flags(true),
            vec![Op::ILoad(0), Op::IConst(1), Op::IAdd, Op::IReturn],
        ));
        p.add_method(Method::new(
            "twice",
            1,
            1,
            flags(true),
            vec![
                Op::ILoad(0),
                Op::Invoke(inner),
                Op::Invoke(inner),
                Op::IReturn,
            ],
        ));
        let vm = Vm::new(&locks, &p, vec![]).unwrap();
        let out = vm.run("twice", reg.token(), &[Value::Int(5)]).unwrap();
        assert_eq!(out, Some(Value::Int(7)));
    }

    #[test]
    fn type_errors_are_reported() {
        let (locks, pool) = setup(1, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "bad",
            0,
            1,
            flags(false),
            vec![Op::AConst(0), Op::IStore(0), Op::Return],
        ));
        let vm = Vm::new(&locks, &p, pool).unwrap();
        assert_eq!(
            vm.run("bad", reg.token(), &[]).unwrap_err(),
            VmError::TypeMismatch { pc: 1 }
        );
    }

    #[test]
    fn monitor_on_null_is_an_error() {
        let (locks, _) = setup(0, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(0);
        p.add_method(Method::new(
            "nullmon",
            0,
            1,
            flags(false),
            vec![Op::ALoad(0), Op::MonitorEnter, Op::Return],
        ));
        let vm = Vm::new(&locks, &p, vec![]).unwrap();
        assert_eq!(
            vm.run("nullmon", reg.token(), &[]).unwrap_err(),
            VmError::NullMonitor { pc: 1 }
        );
    }

    #[test]
    fn pool_size_mismatch_rejected() {
        let (locks, pool) = setup(2, 0);
        let p = Program::new(1);
        assert!(Vm::new(&locks, &p, pool).is_err());
    }

    #[test]
    fn aloadpool_indexes_dynamically() {
        let (locks, pool) = setup(3, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(3);
        // lock pool[i] then unlock it, for i = arg0
        p.add_method(Method::new(
            "locki",
            1,
            1,
            flags(false),
            vec![
                Op::ILoad(0),
                Op::ALoadPool,
                Op::MonitorEnter,
                Op::ILoad(0),
                Op::ALoadPool,
                Op::MonitorExit,
                Op::Return,
            ],
        ));
        let vm = Vm::new(&locks, &p, pool.clone()).unwrap();
        for i in 0..3 {
            vm.run("locki", reg.token(), &[Value::Int(i)]).unwrap();
        }
        // Out of range.
        assert!(matches!(
            vm.run("locki", reg.token(), &[Value::Int(7)]).unwrap_err(),
            VmError::BadPoolIndex { .. }
        ));
    }

    #[test]
    fn unbalanced_monitorexit_surfaces_protocol_error() {
        let (locks, pool) = setup(1, 0);
        let reg = locks.registry().register().unwrap();
        let mut p = Program::new(1);
        p.add_method(Method::new(
            "orphan_exit",
            0,
            0,
            flags(false),
            vec![Op::AConst(0), Op::MonitorExit, Op::Return],
        ));
        let vm = Vm::new(&locks, &p, pool).unwrap();
        assert_eq!(
            vm.run("orphan_exit", reg.token(), &[]).unwrap_err(),
            VmError::Sync(thinlock_runtime::SyncError::NotLocked)
        );
    }

    #[test]
    fn debug_formatting() {
        let (locks, _) = setup(0, 0);
        let p = Program::new(0);
        let vm = Vm::new(&locks, &p, vec![]).unwrap();
        assert!(format!("{vm:?}").contains("ThinLock"));
    }
}
