//! A miniature synchronized class library, written in assembly.
//!
//! The paper's motivation is that "designers of general-purpose class
//! libraries must make their classes thread-safe. For instance, the most
//! commonly used public methods of standard utility classes like `Vector`
//! and `Hashtable` are synchronized" — and that single-threaded programs
//! then pay for it (`javalex` alone made "almost one million calls to the
//! synchronized `elementAt` method of the `Vector` class").
//!
//! This module provides those classes as bytecode, every public method
//! `synchronized` on the receiver, plus a `javalex`-shaped workload that
//! hammers them — a macro-benchmark that runs *inside* the interpreter,
//! complementing the trace-replay reproduction of Figure 5.
//!
//! Object layouts (over the heap's per-object `i32` field array):
//!
//! * **Vector** — field 0 = size; fields `1..` = elements.
//! * **Hashtable** — open addressing over `B` buckets; field 0 = count;
//!   bucket `b` occupies fields `1 + 2b` (key, 0 = empty; keys must be
//!   positive) and `2 + 2b` (value).

use crate::asm::assemble;
use crate::program::Program;

/// Method ids of an installed Vector library (see [`install_vector`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorLib {
    /// `synchronized void addElement(this, v)`.
    pub add: u16,
    /// `synchronized int elementAt(this, i)`.
    pub get: u16,
    /// `synchronized int size(this)`.
    pub size: u16,
}

/// The assembly source of the Vector class methods. Kept as text so the
/// library also exercises the assembler end to end.
const VECTOR_METHODS: &str = "\
; synchronized void Vector.addElement(this, v)
method vector_add args=2 locals=3 sync {
  aload 0
  getfield 0
  istore 2          ; idx = size
  aload 0
  iload 2
  iconst 1
  iadd
  iload 1
  putfielddyn       ; this[idx + 1] = v
  aload 0
  iload 2
  iconst 1
  iadd
  putfield 0        ; size = idx + 1
  return
}
; synchronized int Vector.elementAt(this, i)
method vector_get args=2 locals=2 sync returns {
  aload 0
  iload 1
  iconst 1
  iadd
  getfielddyn
  ireturn
}
; synchronized int Vector.size(this)
method vector_size args=1 locals=1 sync returns {
  aload 0
  getfield 0
  ireturn
}
";

/// Appends the Vector methods to `program`, returning their ids.
///
/// # Panics
///
/// Panics if the embedded assembly fails to assemble (a library bug, not
/// an input condition).
pub fn install_vector(program: &mut Program) -> VectorLib {
    let src = format!("pool {}\n{}", program.pool_size(), VECTOR_METHODS);
    let lib = assemble(&src).expect("vector library assembles");
    let mut ids = Vec::new();
    for m in lib.methods() {
        ids.push(program.add_method(m.clone()));
    }
    VectorLib {
        add: ids[0],
        get: ids[1],
        size: ids[2],
    }
}

/// Method ids of an installed hashtable library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashtableLib {
    /// `synchronized void put(this, key, value)` — `key` must be positive.
    pub put: u16,
    /// `synchronized int get(this, key)` — 0 when absent.
    pub get: u16,
    /// Bucket count the methods were compiled for.
    pub buckets: u16,
}

/// Appends open-addressing Hashtable methods (compiled for `buckets`
/// buckets) to `program`. The receiving object needs at least
/// `1 + 2 * buckets` fields; the caller must keep the load factor below 1
/// or `put` probes forever, as in any open-addressing table without
/// resizing.
///
/// # Panics
///
/// Panics if `buckets` is 0 or the embedded assembly fails to assemble.
pub fn install_hashtable(program: &mut Program, buckets: u16) -> HashtableLib {
    assert!(buckets > 0, "hashtable needs at least one bucket");
    let b = buckets;
    let src = format!(
        "\
pool {pool}
; synchronized void Hashtable.put(this, k, v)   locals: 3=bucket 4=key
method ht_put args=3 locals=5 sync {{
  iload 1
  iconst {b}
  irem
  istore 3
probe:
  aload 0
  iconst 2
  iload 3
  imul
  iconst 1
  iadd
  getfielddyn
  istore 4          ; key at bucket
  iload 4
  ifeq fresh        ; empty slot: insert
  iload 4
  iload 1
  isub
  ifeq store        ; same key: overwrite value only
  iload 3
  iconst 1
  iadd
  iconst {b}
  irem
  istore 3
  goto probe
fresh:
  aload 0
  aload 0
  getfield 0
  iconst 1
  iadd
  putfield 0        ; count++
  aload 0
  iconst 2
  iload 3
  imul
  iconst 1
  iadd
  iload 1
  putfielddyn       ; key slot = k
store:
  aload 0
  iconst 2
  iload 3
  imul
  iconst 2
  iadd
  iload 2
  putfielddyn       ; value slot = v
  return
}}
; synchronized int Hashtable.get(this, k)   locals: 2=bucket 3=key
method ht_get args=2 locals=4 sync returns {{
  iload 1
  iconst {b}
  irem
  istore 2
probe:
  aload 0
  iconst 2
  iload 2
  imul
  iconst 1
  iadd
  getfielddyn
  istore 3
  iload 3
  ifeq miss
  iload 3
  iload 1
  isub
  ifeq hit
  iload 2
  iconst 1
  iadd
  iconst {b}
  irem
  istore 2
  goto probe
hit:
  aload 0
  iconst 2
  iload 2
  imul
  iconst 2
  iadd
  getfielddyn
  ireturn
miss:
  iconst 0
  ireturn
}}
",
        pool = program.pool_size(),
    );
    let lib = assemble(&src).expect("hashtable library assembles");
    let mut ids = Vec::new();
    for m in lib.methods() {
        ids.push(program.add_method(m.clone()));
    }
    HashtableLib {
        put: ids[0],
        get: ids[1],
        buckets,
    }
}

/// Number of scan passes the javalex-shaped workload performs.
pub const JAVALEX_SCAN_PASSES: i32 = 10;

/// A `javalex`-shaped workload: `main(n)` fills a Vector (pool object 0)
/// with `0..n` through the synchronized `addElement`, then makes
/// [`JAVALEX_SCAN_PASSES`] full passes through the synchronized
/// `elementAt`/`size`, returning the checksum — so the dominant cost is
/// exactly the paper's "synchronized method invocation on an uncontended
/// lock", about `(1 + passes) * n` of them.
///
/// The receiving heap object needs at least `n + 1` fields.
pub fn javalex_like() -> Program {
    let mut program = Program::new(1);
    // Reserve id 0 for main; install the library first into a scratch
    // program to learn the source, then build for real with main first.
    let main_src = format!(
        "\
pool 1
; int main(n)  locals: 1=i 2=sum 3=pass
method main args=1 locals=4 returns {{
  iconst 0
  istore 1
build:
  iload 1
  iload 0
  if_icmpge scan_init
  aconst 0
  iload 1
  invoke {add}
  iinc 1 1
  goto build
scan_init:
  iconst 0
  istore 2
  iconst 0
  istore 3
pass_loop:
  iload 3
  iconst {passes}
  if_icmpge done
  iconst 0
  istore 1
scan:
  iload 1
  aconst 0
  invoke {size}
  if_icmpge pass_end
  iload 2
  aconst 0
  iload 1
  invoke {get}
  iadd
  istore 2
  iinc 1 1
  goto scan
pass_end:
  iinc 3 1
  goto pass_loop
done:
  iload 2
  ireturn
}}
",
        add = 1,
        get = 2,
        size = 3,
        passes = JAVALEX_SCAN_PASSES,
    );
    let main = assemble(&main_src).expect("javalex main assembles");
    program.add_method(main.methods()[0].clone());
    let lib = install_vector(&mut program);
    debug_assert_eq!((lib.add, lib.get, lib.size), (1, 2, 3));
    program
}

/// Expected return value of [`javalex_like`]'s `main(n)`: the wrapping
/// checksum of scanning `0..n` for [`JAVALEX_SCAN_PASSES`] passes.
pub fn javalex_expected(n: i32) -> i32 {
    let one_pass: i32 = (0..n).fold(0i32, |acc, v| acc.wrapping_add(v));
    (0..JAVALEX_SCAN_PASSES).fold(0i32, |acc, _| acc.wrapping_add(one_pass))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::value::Value;
    use crate::verify::{verify_program, VerifyOptions};
    use std::sync::Arc;
    use thinlock::ThinLocks;
    use thinlock_runtime::heap::{Heap, ObjRef};
    use thinlock_runtime::protocol::SyncProtocol;
    use thinlock_runtime::registry::ThreadRegistry;

    fn locks_with_fields(objects: usize, fields: usize) -> (ThinLocks, Vec<ObjRef>) {
        let heap = Arc::new(Heap::with_capacity_and_fields(objects, fields));
        let locks = ThinLocks::new(heap, ThreadRegistry::new());
        let pool = (0..objects)
            .map(|_| locks.heap().alloc().unwrap())
            .collect();
        (locks, pool)
    }

    #[test]
    fn vector_methods_work_and_stay_synchronized() {
        let (locks, pool) = locks_with_fields(1, 16);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let mut program = Program::new(1);
        // Driver: main(n) adds 0..n then returns get(n-1) + size().
        let main_src = "\
pool 1
method main args=1 locals=2 returns {
  iconst 0
  istore 1
loop:
  iload 1
  iload 0
  if_icmpge end
  aconst 0
  iload 1
  invoke 1
  iinc 1 1
  goto loop
end:
  aconst 0
  iload 0
  iconst 1
  isub
  invoke 2
  aconst 0
  invoke 3
  iadd
  ireturn
}
";
        let main = assemble(main_src).unwrap();
        program.add_method(main.methods()[0].clone());
        let lib = install_vector(&mut program);
        assert_eq!((lib.add, lib.get, lib.size), (1, 2, 3));
        verify_program(&program, VerifyOptions::default()).unwrap();

        let vm = Vm::new(&locks, &program, pool.clone()).unwrap();
        let out = vm.run("main", t, &[Value::Int(10)]).unwrap();
        // get(9) = 9, size = 10.
        assert_eq!(out, Some(Value::Int(19)));
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0, "single-threaded: all thin");
    }

    #[test]
    fn hashtable_put_get_roundtrip() {
        const B: u16 = 8;
        let (locks, pool) = locks_with_fields(1, 1 + 2 * B as usize);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let mut program = Program::new(1);
        // main(k): put(k, k*3); put(k+B, k+100) -- same bucket, probes;
        // return get(k) + get(k+B) + get(999 absent).
        let main_src = format!(
            "\
pool 1
method main args=1 locals=1 returns {{
  aconst 0
  iload 0
  iload 0
  iconst 3
  imul
  invoke 1
  aconst 0
  iload 0
  iconst {B}
  iadd
  iload 0
  iconst 100
  iadd
  invoke 1
  aconst 0
  iload 0
  invoke 2
  aconst 0
  iload 0
  iconst {B}
  iadd
  invoke 2
  iadd
  aconst 0
  iconst 999
  invoke 2
  iadd
  ireturn
}}
"
        );
        let main = assemble(&main_src).unwrap();
        program.add_method(main.methods()[0].clone());
        let lib = install_hashtable(&mut program, B);
        assert_eq!((lib.put, lib.get), (1, 2));
        verify_program(&program, VerifyOptions::default()).unwrap();

        let vm = Vm::new(&locks, &program, pool).unwrap();
        let k = 5;
        let out = vm.run("main", t, &[Value::Int(k)]).unwrap();
        // get(5)=15, get(13)=105 (collides with bucket 5, probed), get(999)=0.
        assert_eq!(out, Some(Value::Int(15 + 105)));
    }

    #[test]
    fn hashtable_overwrite_does_not_grow_count() {
        const B: u16 = 4;
        let (locks, pool) = locks_with_fields(1, 1 + 2 * B as usize);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let mut program = Program::new(1);
        let main_src = "\
pool 1
method main args=1 locals=1 returns {
  aconst 0
  iload 0
  iconst 1
  invoke 1
  aconst 0
  iload 0
  iconst 2
  invoke 1          ; overwrite same key
  aconst 0
  iload 0
  invoke 2
  ireturn
}
";
        let main = assemble(main_src).unwrap();
        program.add_method(main.methods()[0].clone());
        install_hashtable(&mut program, B);
        let vm = Vm::new(&locks, &program, pool.clone()).unwrap();
        let out = vm.run("main", t, &[Value::Int(7)]).unwrap();
        assert_eq!(out, Some(Value::Int(2)), "second put overwrote");
        // count (field 0) is 1, not 2.
        let count = locks
            .heap()
            .field(pool[0], 0)
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(count, 1);
    }

    #[test]
    fn javalex_workload_computes_checksum_and_stays_thin() {
        let n = 50;
        let (locks, pool) = locks_with_fields(1, n as usize + 1);
        let reg = locks.registry().register().unwrap();
        let t = reg.token();
        let program = javalex_like();
        verify_program(&program, VerifyOptions::default()).unwrap();
        let vm = Vm::new(&locks, &program, pool.clone()).unwrap();
        let out = vm.run("main", t, &[Value::Int(n)]).unwrap();
        assert_eq!(out, Some(Value::Int(javalex_expected(n))));
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(
            locks.inflated_count(),
            0,
            "the library tax is pure uncontended synchronization"
        );
    }

    #[test]
    fn javalex_expected_matches_closed_form_for_small_n() {
        // 0+1+..+9 = 45, times 10 passes.
        assert_eq!(javalex_expected(10), 450);
        assert_eq!(javalex_expected(0), 0);
    }

    #[test]
    fn division_by_zero_in_irem_is_reported() {
        let (locks, _) = locks_with_fields(1, 1);
        let reg = locks.registry().register().unwrap();
        let mut program = Program::new(0);
        let src = "\
pool 0
method main args=0 locals=0 returns {
  iconst 1
  iconst 0
  irem
  ireturn
}
";
        let m = assemble(src).unwrap();
        program.add_method(m.methods()[0].clone());
        let vm = Vm::new(&locks, &program, vec![]).unwrap();
        assert_eq!(
            vm.run("main", reg.token(), &[]).unwrap_err(),
            crate::error::VmError::DivisionByZero { pc: 2 }
        );
    }
}
