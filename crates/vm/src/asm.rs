//! Textual assembler and disassembler for the miniature VM.
//!
//! The format is line-oriented:
//!
//! ```text
//! pool 2
//! method main args=1 locals=3 returns {
//!   iconst 0
//!   istore 1
//! loop:
//!   iload 1
//!   iload 0
//!   if_icmpge done
//!   aconst 0
//!   monitorenter
//!   iinc 2 1
//!   aconst 0
//!   monitorexit
//!   iinc 1 1
//!   goto loop
//! done:
//!   iload 2
//!   ireturn
//! }
//! ```
//!
//! `sync` and `returns` after the locals declaration set the method flags;
//! labels (`name:`) may be used as branch targets; `;` and `#` start
//! comments. [`disassemble`] produces text that [`assemble`] parses back
//! to an equal [`Program`] (a property test in the crate's test suite).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::bytecode::Op;
use crate::program::{Handler, Method, MethodFlags, Program};

/// An assembly syntax error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Parses assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the first offending line.
///
/// # Example
///
/// ```
/// let src = "pool 0\nmethod f args=0 locals=0 returns {\n  iconst 7\n  ireturn\n}\n";
/// let program = thinlock_vm::asm::assemble(src)?;
/// assert_eq!(program.methods().len(), 1);
/// # Ok::<(), thinlock_vm::asm::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut program: Option<Program> = None;
    let mut current: Option<MethodBuilder> = None;

    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("pool ") {
            if program.is_some() {
                return Err(err(line_no, "duplicate pool declaration"));
            }
            let n: u32 = rest
                .trim()
                .parse()
                .map_err(|_| err(line_no, "invalid pool size"))?;
            program = Some(Program::new(n));
            continue;
        }

        let program_ref = program
            .as_mut()
            .ok_or_else(|| err(line_no, "missing `pool N` header"))?;

        if let Some(rest) = line.strip_prefix("method ") {
            if current.is_some() {
                return Err(err(line_no, "nested method declaration"));
            }
            current = Some(MethodBuilder::parse_header(rest, line_no)?);
            continue;
        }

        if line == "}" {
            let builder = current
                .take()
                .ok_or_else(|| err(line_no, "`}` outside a method"))?;
            program_ref.add_method(builder.finish(line_no)?);
            continue;
        }

        let builder = current
            .as_mut()
            .ok_or_else(|| err(line_no, "instruction outside a method"))?;

        if let Some(rest) = line.strip_prefix(".catch ") {
            builder.push_catch(rest, line_no)?;
        } else if let Some(label) = line.strip_suffix(':') {
            builder.define_label(label.trim(), line_no)?;
        } else {
            builder.push_instruction(line, line_no)?;
        }
    }

    if current.is_some() {
        return Err(err(source.lines().count(), "unterminated method"));
    }
    program.ok_or_else(|| err(1, "empty source: missing `pool N` header"))
}

/// Renders a program as assembly text that [`assemble`] can parse back.
pub fn disassemble(program: &Program) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "pool {}", program.pool_size());
    for m in program.methods() {
        // Collect branch targets so they can be labelled.
        let mut targets: Vec<usize> = m
            .code()
            .iter()
            .filter_map(|op| op.branch_target())
            .collect();
        targets.sort_unstable();
        targets.dedup();
        let label_of = |pc: usize| -> Option<String> {
            targets.binary_search(&pc).ok().map(|i| format!("L{i}"))
        };

        let mut header = format!(
            "method {} args={} locals={}",
            m.name(),
            m.arg_count(),
            m.max_locals()
        );
        if m.flags().synchronized {
            header.push_str(" sync");
        }
        if m.flags().returns_value {
            header.push_str(" returns");
        }
        let _ = writeln!(out, "{header} {{");
        for (pc, op) in m.code().iter().enumerate() {
            if let Some(label) = label_of(pc) {
                let _ = writeln!(out, "{label}:");
            }
            let text = match op.branch_target() {
                Some(t) => format!(
                    "{} {}",
                    op.mnemonic(),
                    label_of(t).expect("every target is labelled")
                ),
                None => op.to_string(),
            };
            let _ = writeln!(out, "  {text}");
        }
        for h in m.handlers() {
            let _ = writeln!(out, "  .catch {} {} {}", h.start, h.end, h.target);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

#[derive(Debug)]
struct MethodBuilder {
    name: String,
    arg_count: u8,
    max_locals: u8,
    flags: MethodFlags,
    code: Vec<PendingOp>,
    labels: HashMap<String, usize>,
    catches: Vec<(String, String, String, usize)>,
}

#[derive(Debug)]
enum PendingOp {
    Ready(Op),
    Branch {
        mnemonic: String,
        target: String,
        line: usize,
    },
}

impl MethodBuilder {
    fn parse_header(rest: &str, line: usize) -> Result<Self, AsmError> {
        let mut tokens = rest.split_whitespace().collect::<Vec<_>>();
        if tokens.last() != Some(&"{") {
            return Err(err(line, "method header must end with `{`"));
        }
        tokens.pop();
        let mut it = tokens.into_iter();
        let name = it
            .next()
            .ok_or_else(|| err(line, "missing method name"))?
            .to_string();
        let mut arg_count = None;
        let mut max_locals = None;
        let mut flags = MethodFlags::default();
        for tok in it {
            if let Some(v) = tok.strip_prefix("args=") {
                arg_count = Some(v.parse().map_err(|_| err(line, "invalid args="))?);
            } else if let Some(v) = tok.strip_prefix("locals=") {
                max_locals = Some(v.parse().map_err(|_| err(line, "invalid locals="))?);
            } else if tok == "sync" {
                flags.synchronized = true;
            } else if tok == "returns" {
                flags.returns_value = true;
            } else {
                return Err(err(line, format!("unknown method attribute `{tok}`")));
            }
        }
        Ok(MethodBuilder {
            name,
            arg_count: arg_count.ok_or_else(|| err(line, "missing args="))?,
            max_locals: max_locals.ok_or_else(|| err(line, "missing locals="))?,
            flags,
            code: Vec::new(),
            labels: HashMap::new(),
            catches: Vec::new(),
        })
    }

    fn push_catch(&mut self, rest: &str, line: usize) -> Result<(), AsmError> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(err(line, "`.catch` expects `start end target`"));
        }
        self.catches.push((
            parts[0].to_string(),
            parts[1].to_string(),
            parts[2].to_string(),
            line,
        ));
        Ok(())
    }

    fn define_label(&mut self, label: &str, line: usize) -> Result<(), AsmError> {
        if label.is_empty() {
            return Err(err(line, "empty label"));
        }
        if self
            .labels
            .insert(label.to_string(), self.code.len())
            .is_some()
        {
            return Err(err(line, format!("duplicate label `{label}`")));
        }
        Ok(())
    }

    fn push_instruction(&mut self, text: &str, line: usize) -> Result<(), AsmError> {
        let mut parts = text.split_whitespace();
        let mnemonic = parts.next().expect("non-empty line");
        let operands: Vec<&str> = parts.collect();
        let want = |n: usize| -> Result<(), AsmError> {
            if operands.len() == n {
                Ok(())
            } else {
                Err(err(
                    line,
                    format!(
                        "`{mnemonic}` expects {n} operand(s), got {}",
                        operands.len()
                    ),
                ))
            }
        };
        let int = |s: &str| -> Result<i64, AsmError> {
            s.parse()
                .map_err(|_| err(line, format!("invalid operand `{s}`")))
        };

        let op = match mnemonic {
            "iconst" => {
                want(1)?;
                Op::IConst(int(operands[0])? as i32)
            }
            "iload" => {
                want(1)?;
                Op::ILoad(int(operands[0])? as u8)
            }
            "istore" => {
                want(1)?;
                Op::IStore(int(operands[0])? as u8)
            }
            "iinc" => {
                want(2)?;
                Op::IInc(int(operands[0])? as u8, int(operands[1])? as i16)
            }
            "iadd" => {
                want(0)?;
                Op::IAdd
            }
            "isub" => {
                want(0)?;
                Op::ISub
            }
            "imul" => {
                want(0)?;
                Op::IMul
            }
            "irem" => {
                want(0)?;
                Op::IRem
            }
            "ineg" => {
                want(0)?;
                Op::INeg
            }
            "iand" => {
                want(0)?;
                Op::IAnd
            }
            "ior" => {
                want(0)?;
                Op::IOr
            }
            "ixor" => {
                want(0)?;
                Op::IXor
            }
            "ishl" => {
                want(0)?;
                Op::IShl
            }
            "ishr" => {
                want(0)?;
                Op::IShr
            }
            "aload" => {
                want(1)?;
                Op::ALoad(int(operands[0])? as u8)
            }
            "astore" => {
                want(1)?;
                Op::AStore(int(operands[0])? as u8)
            }
            "aconst" => {
                want(1)?;
                Op::AConst(int(operands[0])? as u32)
            }
            "aloadpool" => {
                want(0)?;
                Op::ALoadPool
            }
            "getfield" => {
                want(1)?;
                Op::GetField(int(operands[0])? as u16)
            }
            "putfield" => {
                want(1)?;
                Op::PutField(int(operands[0])? as u16)
            }
            "getfielddyn" => {
                want(0)?;
                Op::GetFieldDyn
            }
            "putfielddyn" => {
                want(0)?;
                Op::PutFieldDyn
            }
            "dup" => {
                want(0)?;
                Op::Dup
            }
            "pop" => {
                want(0)?;
                Op::Pop
            }
            "monitorenter" => {
                want(0)?;
                Op::MonitorEnter
            }
            "monitorexit" => {
                want(0)?;
                Op::MonitorExit
            }
            "wait" => {
                want(0)?;
                Op::Wait
            }
            "notify" => {
                want(0)?;
                Op::Notify
            }
            "invoke" => {
                want(1)?;
                Op::Invoke(int(operands[0])? as u16)
            }
            "return" => {
                want(0)?;
                Op::Return
            }
            "ireturn" => {
                want(0)?;
                Op::IReturn
            }
            "nop" => {
                want(0)?;
                Op::Nop
            }
            "athrow" => {
                want(0)?;
                Op::Throw
            }
            "goto" | "if_icmplt" | "if_icmpge" | "if_icmpeq" | "ifeq" => {
                want(1)?;
                self.code.push(PendingOp::Branch {
                    mnemonic: mnemonic.to_string(),
                    target: operands[0].to_string(),
                    line,
                });
                return Ok(());
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        self.code.push(PendingOp::Ready(op));
        Ok(())
    }

    fn finish(self, end_line: usize) -> Result<Method, AsmError> {
        let labels = self.labels;
        let len = self.code.len();
        let resolve = |target: &str, line: usize| -> Result<usize, AsmError> {
            if let Ok(pc) = target.parse::<usize>() {
                return Ok(pc);
            }
            labels
                .get(target)
                .copied()
                .ok_or_else(|| err(line, format!("undefined label `{target}`")))
        };
        let mut code = Vec::with_capacity(len);
        for pending in self.code {
            code.push(match pending {
                PendingOp::Ready(op) => op,
                PendingOp::Branch {
                    mnemonic,
                    target,
                    line,
                } => {
                    let pc = resolve(&target, line)?;
                    match mnemonic.as_str() {
                        "goto" => Op::Goto(pc),
                        "if_icmplt" => Op::IfICmpLt(pc),
                        "if_icmpge" => Op::IfICmpGe(pc),
                        "if_icmpeq" => Op::IfICmpEq(pc),
                        "ifeq" => Op::IfEq(pc),
                        _ => unreachable!("mnemonic filtered at parse time"),
                    }
                }
            });
        }
        if code.is_empty() {
            return Err(err(end_line, "empty method body"));
        }
        let mut method = Method::new(self.name, self.arg_count, self.max_locals, self.flags, code);
        for (start, end, target, line) in self.catches {
            method = method.with_handler(Handler {
                start: resolve(&start, line)?,
                end: resolve(&end, line)?,
                target: resolve(&target, line)?,
            });
        }
        method.validate().map_err(|m| err(end_line, m))?;
        Ok(method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "\
pool 1
; count to n while locking pool[0] each round
method main args=1 locals=3 returns {
  iconst 0
  istore 1
loop:
  iload 1
  iload 0
  if_icmpge done
  aconst 0
  monitorenter
  iinc 2 1
  aconst 0
  monitorexit
  iinc 1 1
  goto loop
done:
  iload 2
  ireturn
}
";

    #[test]
    fn assembles_counter_program() {
        let p = assemble(COUNTER).unwrap();
        assert_eq!(p.pool_size(), 1);
        let m = p.method(0).unwrap();
        assert_eq!(m.name(), "main");
        assert!(m.flags().returns_value);
        assert!(!m.flags().synchronized);
        assert!(m.code().contains(&Op::MonitorEnter));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn numeric_branch_targets_work() {
        let src = "pool 0\nmethod f args=0 locals=0 {\n  goto 1\n  return\n}\n";
        let p = assemble(src).unwrap();
        assert_eq!(p.method(0).unwrap().code()[0], Op::Goto(1));
    }

    #[test]
    fn sync_flag_parses() {
        let src = "pool 0\nmethod m args=1 locals=1 sync {\n  return\n}\n";
        let p = assemble(src).unwrap();
        assert!(p.method(0).unwrap().flags().synchronized);
    }

    #[test]
    fn error_reporting_names_lines() {
        let cases = [
            ("method m args=0 locals=0 {\n return\n}\n", "pool"),
            ("pool 0\n frobnicate\n", "outside a method"),
            (
                "pool 0\nmethod m args=0 locals=0 {\n bogus_op\n}\n",
                "unknown mnemonic",
            ),
            (
                "pool 0\nmethod m args=0 locals=0 {\n goto nowhere\n}\n",
                "undefined label",
            ),
            (
                "pool 0\nmethod m args=0 locals=0 {\n iconst\n}\n",
                "expects 1",
            ),
            ("pool 0\nmethod m args=0 locals=0 {\n", "unterminated"),
            ("pool 0\nmethod m args=0 {\n return\n}\n", "missing locals="),
            ("pool x\n", "invalid pool size"),
        ];
        for (src, needle) in cases {
            let e = assemble(src).unwrap_err();
            assert!(
                e.to_string().contains(needle),
                "error {e} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn duplicate_label_rejected() {
        let src = "pool 0\nmethod m args=0 locals=0 {\na:\na:\n return\n}\n";
        assert!(assemble(src).unwrap_err().to_string().contains("duplicate"));
    }

    #[test]
    fn round_trip_through_disassembler() {
        let p = assemble(COUNTER).unwrap();
        let text = disassemble(&p);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p, p2, "disassemble . assemble is identity:\n{text}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "\n; leading comment\npool 0\n# another\nmethod f args=0 locals=0 {\n\n  nop ; trailing\n  return\n}\n";
        let p = assemble(src).unwrap();
        assert_eq!(p.method(0).unwrap().code().len(), 2);
    }
}
