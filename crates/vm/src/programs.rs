//! The micro-benchmark programs of Table 2 (plus Figure 6's `MixedSync`).
//!
//! Each benchmark "runs a tight loop for a specified number of iterations;
//! inside the loop an integer variable is incremented. The benchmarks
//! differ in what occurs between the outer loop and the inner variable
//! update" (Section 3.3). The generators here produce the corresponding
//! bytecode:
//!
//! | program          | loop body                                          |
//! |------------------|----------------------------------------------------|
//! | `NoSync`         | nothing — pure interpretation cost                 |
//! | `Sync`           | `synchronized(o) { count++ }` on an unlocked `o`   |
//! | `NestedSync`     | same, but `o` is already locked outside the loop   |
//! | `MultiSync n`    | synchronizes each of `n` objects every iteration   |
//! | `Call`           | calls a non-synchronized method                    |
//! | `CallSync`       | calls a synchronized method (initial lock)         |
//! | `NestedCallSync` | calls a synchronized method while holding the lock |
//! | `Threads n`      | the `Sync` body run concurrently by `n` threads    |
//! | `MixedSync`      | three nested locks of one object per iteration     |
//!
//! Every `main` takes the iteration count as argument 0 and returns it, so
//! harnesses can verify a run did what it claims.
//!
//! Beyond Table 2, [`concurrent_library`] provides seeded concurrent
//! programs with ground-truth race labels: statically race-free
//! counters (every shared-field access under a consistent lock) and
//! deliberately racy variants, used to validate the `lockcheck` guards
//! pass against the dynamic Eraser sanitizer.

use std::fmt;

use crate::bytecode::Op;
use crate::program::{Method, MethodFlags, Program};

/// Identifier of a Table 2 micro-benchmark (plus `MixedSync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroBench {
    /// No locking — the reference benchmark.
    NoSync,
    /// Initial lock with a `synchronized()` statement.
    Sync,
    /// Nested lock with a `synchronized()` statement.
    NestedSync,
    /// Like `Sync`, but synchronizes `n` objects every iteration.
    MultiSync(u32),
    /// Calls a non-synchronized method — reference benchmark.
    Call,
    /// Calls a synchronized method to obtain an initial lock.
    CallSync,
    /// Calls a synchronized method to obtain a nested lock.
    NestedCallSync,
    /// Initial locking performed concurrently by `n` competing threads;
    /// the program is the `Sync` program, run on `n` threads by the
    /// harness.
    Threads(u32),
    /// Figure 6's cross of `Sync` and `NestedSync`: three nested locks of
    /// the same object on every iteration.
    MixedSync,
}

impl MicroBench {
    /// The benchmarks of Table 2 in presentation order, with the sweep
    /// parameters used in Figure 4.
    pub fn table2() -> Vec<MicroBench> {
        vec![
            MicroBench::NoSync,
            MicroBench::Sync,
            MicroBench::NestedSync,
            MicroBench::MultiSync(64),
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
            MicroBench::Threads(4),
        ]
    }

    /// Number of pooled objects the benchmark's program needs.
    pub fn pool_size(self) -> u32 {
        match self {
            MicroBench::NoSync => 0,
            MicroBench::MultiSync(n) => n.max(1),
            _ => 1,
        }
    }

    /// Builds the benchmark's bytecode program. The entry point is always
    /// a method named `main` taking the iteration count.
    pub fn program(self) -> Program {
        match self {
            MicroBench::NoSync => looped_program(0, vec![]),
            MicroBench::Sync | MicroBench::Threads(_) => looped_program(
                1,
                vec![
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::IInc(2, 1),
                    Op::AConst(0),
                    Op::MonitorExit,
                ],
            ),
            MicroBench::NestedSync => {
                let body = vec![
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::IInc(2, 1),
                    Op::AConst(0),
                    Op::MonitorExit,
                ];
                wrapped_looped_program(1, body)
            }
            MicroBench::MultiSync(n) => {
                let n = n.max(1);
                let mut body = Vec::with_capacity(5 * n as usize);
                for k in 0..n {
                    body.extend([
                        Op::AConst(k),
                        Op::MonitorEnter,
                        Op::IInc(2, 1),
                        Op::AConst(k),
                        Op::MonitorExit,
                    ]);
                }
                looped_program(n, body)
            }
            MicroBench::Call => call_program(false, false),
            MicroBench::CallSync => call_program(true, false),
            MicroBench::NestedCallSync => call_program(true, true),
            MicroBench::MixedSync => looped_program(
                1,
                vec![
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::IInc(2, 1),
                    Op::AConst(0),
                    Op::MonitorExit,
                    Op::AConst(0),
                    Op::MonitorExit,
                    Op::AConst(0),
                    Op::MonitorExit,
                ],
            ),
        }
    }

    /// Expected return value of `main(iters)` — the iteration count.
    pub fn expected(self, iters: i32) -> i32 {
        iters
    }

    /// For the threaded benchmark, the thread count; 1 otherwise.
    pub fn thread_count(self) -> u32 {
        match self {
            MicroBench::Threads(n) => n.max(1),
            _ => 1,
        }
    }
}

impl fmt::Display for MicroBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroBench::NoSync => f.write_str("NoSync"),
            MicroBench::Sync => f.write_str("Sync"),
            MicroBench::NestedSync => f.write_str("NestedSync"),
            MicroBench::MultiSync(n) => write!(f, "MultiSync {n}"),
            MicroBench::Call => f.write_str("Call"),
            MicroBench::CallSync => f.write_str("CallSync"),
            MicroBench::NestedCallSync => f.write_str("NestedCallSync"),
            MicroBench::Threads(n) => write!(f, "Threads {n}"),
            MicroBench::MixedSync => f.write_str("MixedSync"),
        }
    }
}

/// `name(iters)`: the canonical tight loop with `body` between the bounds
/// check and the induction increment. Locals: 0 = iters, 1 = i,
/// 2 = counter. Returns the iteration count.
fn looped_method(name: &str, body: Vec<Op>) -> Method {
    let mut code = vec![
        Op::IConst(0),   // 0
        Op::IStore(1),   // 1: i = 0
        Op::IConst(0),   // 2
        Op::IStore(2),   // 3: counter = 0
        Op::ILoad(1),    // 4: loop head
        Op::ILoad(0),    // 5
        Op::IfICmpGe(0), // 6: patched to END below
    ];
    code.extend(body);
    let back_edge = code.len();
    code.push(Op::IInc(1, 1)); // back_edge
    code.push(Op::Goto(4));
    let end = code.len();
    code[6] = Op::IfICmpGe(end);
    code.push(Op::ILoad(1));
    code.push(Op::IReturn);
    debug_assert!(back_edge > 6);

    Method::new(
        name,
        1,
        3,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        code,
    )
}

/// A one-method program whose `main` is [`looped_method`].
fn looped_program(pool: u32, body: Vec<Op>) -> Program {
    let mut program = Program::new(pool);
    program.add_method(looped_method("main", body));
    program
}

/// Like [`looped_program`] but the whole loop runs inside
/// `synchronized(pool[0]) { ... }` — the `NestedSync` shape.
fn wrapped_looped_program(pool: u32, body: Vec<Op>) -> Program {
    let mut code = vec![
        Op::AConst(0),
        Op::MonitorEnter,
        Op::IConst(0),   // 2
        Op::IStore(1),   // 3: i = 0
        Op::IConst(0),   // 4
        Op::IStore(2),   // 5: counter = 0
        Op::ILoad(1),    // 6: loop head
        Op::ILoad(0),    // 7
        Op::IfICmpGe(0), // 8: patched
    ];
    code.extend(body);
    code.push(Op::IInc(1, 1));
    code.push(Op::Goto(6));
    let end = code.len();
    code[8] = Op::IfICmpGe(end);
    code.push(Op::AConst(0));
    code.push(Op::MonitorExit);
    code.push(Op::ILoad(1));
    code.push(Op::IReturn);

    let mut program = Program::new(pool);
    program.add_method(Method::new(
        "main",
        1,
        3,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        code,
    ));
    program
}

/// The `Call`/`CallSync`/`NestedCallSync` programs: the loop body invokes
/// `bump(pool[0])`, which increments the object's field 0. `sync` makes
/// `bump` synchronized; `hold` wraps the whole loop in
/// `synchronized(pool[0])` so every call-site lock is nested.
fn call_program(sync: bool, hold: bool) -> Program {
    let mut program = Program::new(1);

    // Placeholder id 0 is main; bump becomes id 1 after both adds. Build
    // bump first to learn its id, then main referencing it.
    let bump = Method::new(
        "bump",
        1,
        1,
        MethodFlags {
            synchronized: sync,
            returns_value: false,
        },
        vec![
            Op::ALoad(0),
            Op::ALoad(0),
            Op::GetField(0),
            Op::IConst(1),
            Op::IAdd,
            Op::PutField(0),
            Op::Return,
        ],
    );

    let body = |bump_id: u16| vec![Op::AConst(0), Op::Invoke(bump_id)];

    // main is id 0 by convention (added first).
    let main_flags = MethodFlags {
        synchronized: false,
        returns_value: true,
    };
    let bump_id: u16 = 1;
    let mut code;
    if hold {
        code = vec![
            Op::AConst(0),
            Op::MonitorEnter,
            Op::IConst(0),
            Op::IStore(1),
            Op::ILoad(1), // 4: loop
            Op::ILoad(0),
            Op::IfICmpGe(0), // 6: patched
        ];
        code.extend(body(bump_id));
        code.push(Op::IInc(1, 1));
        code.push(Op::Goto(4));
        let end = code.len();
        code[6] = Op::IfICmpGe(end);
        code.push(Op::AConst(0));
        code.push(Op::MonitorExit);
        code.push(Op::ILoad(1));
        code.push(Op::IReturn);
    } else {
        code = vec![
            Op::IConst(0),
            Op::IStore(1),
            Op::ILoad(1), // 2: loop
            Op::ILoad(0),
            Op::IfICmpGe(0), // 4: patched
        ];
        code.extend(body(bump_id));
        code.push(Op::IInc(1, 1));
        code.push(Op::Goto(2));
        let end = code.len();
        code[4] = Op::IfICmpGe(end);
        code.push(Op::ILoad(1));
        code.push(Op::IReturn);
    }
    program.add_method(Method::new("main", 1, 2, main_flags, code));
    let actual_bump_id = program.add_method(bump);
    debug_assert_eq!(actual_bump_id, bump_id);
    program
}

/// A classic lock-order inversion: `left` acquires `pool[0]` then
/// `pool[1]`, `right` acquires them in the opposite order. Two threads
/// interleaving `left` and `right` can deadlock; `lockcheck`'s
/// lock-order pass must flag the `0 <-> 1` cycle. Single-threaded
/// execution is safe, so the program still runs under the dynamic
/// oracle: `main(iters)` calls both once and returns `iters`.
pub fn deadlock_pair() -> Program {
    let ordered = |first: u32, second: u32| {
        vec![
            Op::AConst(first),
            Op::MonitorEnter,
            Op::AConst(second),
            Op::MonitorEnter,
            Op::AConst(second),
            Op::MonitorExit,
            Op::AConst(first),
            Op::MonitorExit,
            Op::Return,
        ]
    };
    let mut program = Program::new(2);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![Op::Invoke(1), Op::Invoke(2), Op::ILoad(0), Op::IReturn],
    ));
    program.add_method(Method::new(
        "left",
        0,
        0,
        MethodFlags::default(),
        ordered(0, 1),
    ));
    program.add_method(Method::new(
        "right",
        0,
        0,
        MethodFlags::default(),
        ordered(1, 0),
    ));
    program
}

/// `main(n)` recurses `n` levels deep, re-locking `pool[0]` at every
/// level — nest depth equals the argument, so no static finite bound
/// exists. With `n > 256` the thin-lock count field overflows and forces
/// inflation mid-critical-section; `lockcheck`'s nest-depth pass must
/// report `pool[0]` as unbounded and emit a pre-inflation hint.
pub fn deep_nest() -> Program {
    let mut program = Program::new(1);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![Op::ILoad(0), Op::Invoke(1), Op::ILoad(0), Op::IReturn],
    ));
    program.add_method(Method::new(
        "rec",
        1,
        1,
        MethodFlags::default(),
        vec![
            Op::ILoad(0),     // 0
            Op::IfEq(10),     // 1: n == 0 -> return
            Op::AConst(0),    // 2
            Op::MonitorEnter, // 3
            Op::ILoad(0),     // 4
            Op::IConst(1),    // 5
            Op::ISub,         // 6
            Op::Invoke(1),    // 7: rec(n - 1) while holding pool[0]
            Op::AConst(0),    // 8
            Op::MonitorExit,  // 9
            Op::Return,       // 10
        ],
    ));
    program
}

/// A `monitorexit` with no matching `monitorenter` on any path — the
/// unbalanced-lock seed `lockcheck` must diagnose at pc 1. Passes the
/// base verifier with structured locking disabled (types are fine).
pub fn unbalanced_exit() -> Program {
    let mut program = Program::new(1);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![Op::AConst(0), Op::MonitorExit, Op::ILoad(0), Op::IReturn],
    ));
    program
}

/// Balanced lock counts but scrambled identity: acquires `pool[0]` then
/// `pool[1]` and releases them outermost-first. The verifier's depth
/// counter cannot see this; the symbolic lock-stack pass must flag the
/// non-LIFO release at pc 5.
pub fn non_lifo_pair() -> Program {
    let mut program = Program::new(2);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(1),    // 2
            Op::MonitorEnter, // 3
            Op::AConst(0),    // 4
            Op::MonitorExit,  // 5: releases the outer lock first
            Op::AConst(1),    // 6
            Op::MonitorExit,  // 7
            Op::ILoad(0),     // 8
            Op::IReturn,      // 9
        ],
    ));
    program
}

/// One worker kind of a [`ConcurrentProgram`]: `threads` threads each
/// run the named entry method concurrently over the shared pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadRole {
    /// Entry method name (each role method takes the iteration count).
    pub method: &'static str,
    /// Number of threads running this role.
    pub threads: u32,
}

/// A seeded concurrent program with its harness contract: which methods
/// run on how many threads, and whether the program contains a data
/// race by construction. The race detectors (static `lockcheck` guards
/// pass and the dynamic Eraser sanitizer) are tested against exactly
/// these ground-truth labels.
///
/// Every racy program has at least two threads whose accesses to the
/// racy field hold *no* lock, so a lockset (Eraser) sanitizer reports
/// it under any thread schedule — the verdict is schedule-independent,
/// not a lucky interleaving.
#[derive(Debug)]
pub struct ConcurrentProgram {
    /// Stable program name, used in reports and bench output.
    pub name: &'static str,
    /// The bytecode.
    pub program: Program,
    /// The worker roles the harness runs.
    pub roles: Vec<ThreadRole>,
    /// Fields per heap object the program touches.
    pub fields: u16,
    /// True when the program contains a seeded data race.
    pub racy: bool,
    /// The `(pool, field)` pairs expected to race (empty when clean).
    pub racy_fields: Vec<(u32, u16)>,
    /// Ground-truth contention shape per pool site, as
    /// `(pool, shape-name)` with the stable lowercase names of the
    /// `lockcheck` contention pass (`"thread-local"`, `"uncontended"`,
    /// `"hot-mutex"`, `"wait-heavy"`, `"churn"`). Labels are plain
    /// strings so this crate stays independent of `thinlock-analysis`;
    /// the static pass is tested against exactly these labels, the same
    /// way the race detectors are tested against `racy_fields`.
    pub expected_shapes: Vec<(u32, &'static str)>,
}

impl ConcurrentProgram {
    /// Total worker threads across all roles.
    pub fn total_threads(&self) -> u32 {
        self.roles.iter().map(|r| r.threads).sum()
    }
}

/// `synchronized(pool[lock]) { pool[obj].f(field)++ }`.
fn guarded_inc(lock: u32, obj: u32, field: u16) -> Vec<Op> {
    vec![
        Op::AConst(lock),
        Op::MonitorEnter,
        Op::AConst(obj),
        Op::AConst(obj),
        Op::GetField(field),
        Op::IConst(1),
        Op::IAdd,
        Op::PutField(field),
        Op::AConst(lock),
        Op::MonitorExit,
    ]
}

/// `pool[obj].f(field)++` with no lock.
fn bare_inc(obj: u32, field: u16) -> Vec<Op> {
    vec![
        Op::AConst(obj),
        Op::AConst(obj),
        Op::GetField(field),
        Op::IConst(1),
        Op::IAdd,
        Op::PutField(field),
    ]
}

/// The increment through `GetFieldDyn`/`PutFieldDyn` with a constant
/// index operand, optionally under `pool[lock]` — exercises the dynamic
/// field forms' constant-index precision in the static passes.
fn dyn_inc(lock: Option<u32>, obj: u32, field: i32) -> Vec<Op> {
    let mut body = Vec::new();
    if let Some(l) = lock {
        body.extend([Op::AConst(l), Op::MonitorEnter]);
    }
    body.extend([
        Op::AConst(obj),   // put receiver
        Op::IConst(field), // put index
        Op::AConst(obj),
        Op::IConst(field),
        Op::GetFieldDyn,
        Op::IConst(1),
        Op::IAdd,
        Op::PutFieldDyn,
    ]);
    if let Some(l) = lock {
        body.extend([Op::AConst(l), Op::MonitorExit]);
    }
    body
}

/// `synchronized(pool[0]) { read pool[0].f0 }`.
fn guarded_read() -> Vec<Op> {
    vec![
        Op::AConst(0),
        Op::MonitorEnter,
        Op::AConst(0),
        Op::GetField(0),
        Op::Pop,
        Op::AConst(0),
        Op::MonitorExit,
    ]
}

/// The seeded concurrent program library: four statically race-free
/// programs and three with a data race by construction. Ground truth
/// for both race detectors.
pub fn concurrent_library() -> Vec<ConcurrentProgram> {
    let worker2 = |method| vec![ThreadRole { method, threads: 2 }];
    let mut library = Vec::new();

    // Clean: every access of pool[0].f0 holds pool[0].
    library.push(ConcurrentProgram {
        name: "guarded-counter",
        program: looped_program(1, guarded_inc(0, 0, 0)),
        roles: worker2("main"),
        fields: 1,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "hot-mutex")],
    });

    // Clean: same discipline through the dynamic field forms.
    library.push(ConcurrentProgram {
        name: "guarded-dyn-counter",
        program: looped_program(1, dyn_inc(Some(0), 0, 0)),
        roles: worker2("main"),
        fields: 1,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "hot-mutex")],
    });

    // Clean: one writer, two readers, all under pool[0].
    let mut read_mostly = Program::new(1);
    read_mostly.add_method(looped_method("writer", guarded_inc(0, 0, 0)));
    read_mostly.add_method(looped_method("reader", guarded_read()));
    library.push(ConcurrentProgram {
        name: "read-mostly",
        program: read_mostly,
        roles: vec![
            ThreadRole {
                method: "writer",
                threads: 1,
            },
            ThreadRole {
                method: "reader",
                threads: 2,
            },
        ],
        fields: 1,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "hot-mutex")],
    });

    // Clean: pool[1] guards pool[0].f0, pool[0] guards pool[0].f1 — the
    // guard need not be the object it protects.
    let mut two_locks = guarded_inc(1, 0, 0);
    two_locks.extend(guarded_inc(0, 0, 1));
    library.push(ConcurrentProgram {
        name: "two-locks-two-fields",
        program: looped_program(2, two_locks),
        roles: worker2("main"),
        fields: 2,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "hot-mutex"), (1, "hot-mutex")],
    });

    // Racy: two threads increment pool[0].f0 with no lock at all.
    library.push(ConcurrentProgram {
        name: "racy-counter",
        program: looped_program(1, bare_inc(0, 0)),
        roles: worker2("main"),
        fields: 1,
        racy: true,
        racy_fields: vec![(0, 0)],
        expected_shapes: vec![(0, "uncontended")],
    });

    // Racy: the same unguarded increment through the dynamic forms.
    library.push(ConcurrentProgram {
        name: "racy-dyn-counter",
        program: looped_program(1, dyn_inc(None, 0, 0)),
        roles: worker2("main"),
        fields: 1,
        racy: true,
        racy_fields: vec![(0, 0)],
        expected_shapes: vec![(0, "uncontended")],
    });

    // Racy: one disciplined writer plus two bare writers — the per-field
    // lockset intersection is empty even though one role locks.
    let mut partial = Program::new(1);
    partial.add_method(looped_method("locked", guarded_inc(0, 0, 0)));
    partial.add_method(looped_method("bare", bare_inc(0, 0)));
    library.push(ConcurrentProgram {
        name: "racy-partial-guard",
        program: partial,
        roles: vec![
            ThreadRole {
                method: "locked",
                threads: 1,
            },
            ThreadRole {
                method: "bare",
                threads: 2,
            },
        ],
        fields: 1,
        racy: true,
        racy_fields: vec![(0, 0)],
        expected_shapes: vec![(0, "uncontended")],
    });

    // Clean, hot: four threads hammer one guarded counter — the
    // canonical hot single-object mutex (the fairness workload's
    // shape). Statically distinguishable from `guarded-counter` only
    // by its thread count.
    library.push(ConcurrentProgram {
        name: "hot-object",
        program: looped_program(1, guarded_inc(0, 0, 0)),
        roles: vec![ThreadRole {
            method: "main",
            threads: 4,
        }],
        fields: 1,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "hot-mutex")],
    });

    // Clean, churning: each iteration locks a *rotating* pool object
    // (`pool[i % 4]`, through `aloadpool` with a loop-varying index)
    // and bumps a field on the locked object itself. No single site is
    // hot, but the monitor population cycles — the deflation story.
    // Race-free: every access of pool[p].f0 holds pool[p]'s own lock.
    library.push(ConcurrentProgram {
        name: "churn-locks",
        program: churn_program(4),
        roles: worker2("main"),
        fields: 1,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "churn"), (1, "churn"), (2, "churn"), (3, "churn")],
    });

    // Clean, wait-heavy: one producer bumps pool[0].f0 and notifies;
    // two consumers wait on pool[0] and read the field, all under
    // pool[0]'s monitor. Parking is part of the protocol, so the site
    // should be fat before the first waiter arrives.
    let mut pipeline = Program::new(1);
    pipeline.add_method(looped_method(
        "producer",
        vec![
            Op::AConst(0),
            Op::MonitorEnter,
            Op::AConst(0),
            Op::AConst(0),
            Op::GetField(0),
            Op::IConst(1),
            Op::IAdd,
            Op::PutField(0),
            Op::AConst(0),
            Op::Notify,
            Op::AConst(0),
            Op::MonitorExit,
        ],
    ));
    pipeline.add_method(looped_method(
        "consumer",
        vec![
            Op::AConst(0),
            Op::MonitorEnter,
            Op::AConst(0),
            Op::Wait,
            Op::AConst(0),
            Op::GetField(0),
            Op::Pop,
            Op::AConst(0),
            Op::MonitorExit,
        ],
    ));
    library.push(ConcurrentProgram {
        name: "wait-pipeline",
        program: pipeline,
        roles: vec![
            ThreadRole {
                method: "producer",
                threads: 1,
            },
            ThreadRole {
                method: "consumer",
                threads: 2,
            },
        ],
        fields: 1,
        racy: false,
        racy_fields: Vec::new(),
        expected_shapes: vec![(0, "wait-heavy")],
    });

    library
}

/// `main(iters)`: lock `pool[i % locks]` each iteration and bump a
/// field on the locked object. Every lock identity is dynamic
/// (`aloadpool` with a loop-varying index), so the lock *population*
/// churns while no single site gets hot. Locals: 0 = iters, 1 = i,
/// 3 = the iteration's lock object.
fn churn_program(locks: u32) -> Program {
    let locks_i32 = i32::try_from(locks).expect("small lock count");
    let code = vec![
        Op::IConst(0),         // 0
        Op::IStore(1),         // 1: i = 0
        Op::ILoad(1),          // 2: loop head
        Op::ILoad(0),          // 3
        Op::IfICmpGe(22),      // 4: -> END
        Op::ILoad(1),          // 5
        Op::IConst(locks_i32), // 6
        Op::IRem,              // 7
        Op::ALoadPool,         // 8: pool[i % locks]
        Op::AStore(3),         // 9
        Op::ALoad(3),          // 10
        Op::MonitorEnter,      // 11
        Op::ALoad(3),          // 12
        Op::ALoad(3),          // 13
        Op::GetField(0),       // 14
        Op::IConst(1),         // 15
        Op::IAdd,              // 16
        Op::PutField(0),       // 17
        Op::ALoad(3),          // 18
        Op::MonitorExit,       // 19
        Op::IInc(1, 1),        // 20
        Op::Goto(2),           // 21
        Op::ILoad(1),          // 22: END
        Op::IReturn,           // 23
    ];
    let mut program = Program::new(locks);
    program.add_method(Method::new(
        "main",
        1,
        4,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        code,
    ));
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::value::Value;
    use std::sync::Arc;
    use thinlock::ThinLocks;
    use thinlock_runtime::heap::{Heap, ObjRef};
    use thinlock_runtime::protocol::SyncProtocol;
    use thinlock_runtime::registry::ThreadRegistry;

    fn run_bench(bench: MicroBench, iters: i32) -> (i32, ThinLocks, Vec<ObjRef>) {
        let pool_size = bench.pool_size() as usize;
        let heap = Arc::new(Heap::with_capacity_and_fields(pool_size + 1, 1));
        let locks = ThinLocks::new(heap, ThreadRegistry::new());
        let pool: Vec<ObjRef> = (0..pool_size)
            .map(|_| locks.heap().alloc().unwrap())
            .collect();
        let program = bench.program();
        program
            .validate()
            .expect("generated program is well-formed");
        let reg = locks.registry().register().unwrap();
        let out = {
            let vm = Vm::new(&locks, &program, pool.clone()).unwrap();
            vm.run("main", reg.token(), &[Value::Int(iters)])
                .unwrap()
                .and_then(Value::as_int)
                .unwrap()
        };
        (out, locks, pool)
    }

    #[test]
    fn every_generated_program_validates() {
        let all = [
            MicroBench::NoSync,
            MicroBench::Sync,
            MicroBench::NestedSync,
            MicroBench::MultiSync(1),
            MicroBench::MultiSync(64),
            MicroBench::MultiSync(1024),
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
            MicroBench::Threads(8),
            MicroBench::MixedSync,
        ];
        for b in all {
            b.program()
                .validate()
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn no_sync_counts_iterations() {
        let (out, locks, _) = run_bench(MicroBench::NoSync, 500);
        assert_eq!(out, 500);
        assert_eq!(locks.inflated_count(), 0);
    }

    #[test]
    fn sync_locks_and_releases_each_iteration() {
        let (out, locks, pool) = run_bench(MicroBench::Sync, 200);
        assert_eq!(out, 200);
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0, "single thread: stays thin");
    }

    #[test]
    fn nested_sync_nests_within_outer_lock() {
        let (out, locks, pool) = run_bench(MicroBench::NestedSync, 200);
        assert_eq!(out, 200);
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(
            locks.inflated_count(),
            0,
            "nesting depth 2 never overflows the count"
        );
    }

    #[test]
    fn multi_sync_touches_every_object() {
        let n = 16;
        let (out, locks, pool) = run_bench(MicroBench::MultiSync(n), 50);
        assert_eq!(out, 50);
        assert_eq!(pool.len(), n as usize);
        for o in pool {
            assert!(locks.lock_word(o).is_unlocked());
        }
    }

    #[test]
    fn call_benchmarks_update_the_field() {
        for bench in [
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
        ] {
            let (out, locks, pool) = run_bench(bench, 100);
            assert_eq!(out, 100, "{bench}");
            let field = locks
                .heap()
                .field(pool[0], 0)
                .load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(field, 100, "{bench}: bump ran once per iteration");
            assert!(locks.lock_word(pool[0]).is_unlocked(), "{bench}");
        }
    }

    #[test]
    fn mixed_sync_three_nested_locks() {
        let (out, locks, pool) = run_bench(MicroBench::MixedSync, 100);
        assert_eq!(out, 100);
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0, "depth 3 stays thin");
    }

    #[test]
    fn threads_program_is_shared_safely() {
        let bench = MicroBench::Threads(4);
        let heap = Arc::new(Heap::with_capacity(2));
        let locks = Arc::new(ThinLocks::new(heap, ThreadRegistry::new()));
        let pool = vec![locks.heap().alloc().unwrap()];
        let program = Arc::new(bench.program());
        let mut handles = Vec::new();
        for _ in 0..bench.thread_count() {
            let locks = Arc::clone(&locks);
            let program = Arc::clone(&program);
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let reg = locks.registry().register().unwrap();
                let vm = Vm::new(&*locks, &program, pool).unwrap();
                vm.run("main", reg.token(), &[Value::Int(200)])
                    .unwrap()
                    .and_then(Value::as_int)
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 200);
        }
        // The shared object's lock must be fully released at the end.
        let reg = locks.registry().register().unwrap();
        assert!(!locks.holds_lock(pool[0], reg.token()));
    }

    #[test]
    fn concurrent_library_programs_validate_and_run() {
        let library = concurrent_library();
        assert_eq!(library.len(), 10);
        for entry in &library {
            entry
                .program
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
            assert!(entry.total_threads() >= 2, "{}", entry.name);
            assert_eq!(entry.racy, !entry.racy_fields.is_empty(), "{}", entry.name);
            // Each role method runs single-threaded to completion.
            let pool_size = entry.program.pool_size() as usize;
            let heap = Arc::new(Heap::with_capacity_and_fields(
                pool_size + 1,
                usize::from(entry.fields),
            ));
            let locks = ThinLocks::new(heap, ThreadRegistry::new());
            let pool: Vec<ObjRef> = (0..pool_size)
                .map(|_| locks.heap().alloc().unwrap())
                .collect();
            let reg = locks.registry().register().unwrap();
            for role in &entry.roles {
                let vm = Vm::new(&locks, &entry.program, pool.clone()).unwrap();
                let out = vm
                    .run(role.method, reg.token(), &[Value::Int(25)])
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", entry.name, role.method))
                    .and_then(Value::as_int)
                    .unwrap();
                assert_eq!(out, 25, "{}/{}", entry.name, role.method);
            }
            for o in &pool {
                // `wait` inflates under the one-way thin backend, so
                // check ownership, not the thin word shape.
                assert!(locks.owner_of(*o).is_none(), "{}", entry.name);
            }
        }
    }

    #[test]
    fn concurrent_library_counters_add_up_under_contention() {
        // The guarded counter is exact under real concurrency: 2 threads
        // x 100 guarded increments must land on 200.
        let entry = concurrent_library()
            .into_iter()
            .find(|e| e.name == "guarded-counter")
            .unwrap();
        let heap = Arc::new(Heap::with_capacity_and_fields(2, 1));
        let locks = Arc::new(ThinLocks::new(heap, ThreadRegistry::new()));
        let pool = vec![locks.heap().alloc().unwrap()];
        let program = Arc::new(entry.program);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let locks = Arc::clone(&locks);
            let program = Arc::clone(&program);
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let reg = locks.registry().register().unwrap();
                let vm = Vm::new(&*locks, &program, pool).unwrap();
                vm.run("main", reg.token(), &[Value::Int(100)]).unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let field = locks
            .heap()
            .field(pool[0], 0)
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(field, 200);
    }

    #[test]
    fn table2_listing_and_names() {
        let names: Vec<String> = MicroBench::table2().iter().map(|b| b.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "NoSync",
                "Sync",
                "NestedSync",
                "MultiSync 64",
                "Call",
                "CallSync",
                "NestedCallSync",
                "Threads 4"
            ]
        );
        assert_eq!(MicroBench::Threads(4).thread_count(), 4);
        assert_eq!(MicroBench::Sync.thread_count(), 1);
        assert_eq!(MicroBench::Sync.expected(7), 7);
    }
}
