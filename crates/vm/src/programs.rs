//! The micro-benchmark programs of Table 2 (plus Figure 6's `MixedSync`).
//!
//! Each benchmark "runs a tight loop for a specified number of iterations;
//! inside the loop an integer variable is incremented. The benchmarks
//! differ in what occurs between the outer loop and the inner variable
//! update" (Section 3.3). The generators here produce the corresponding
//! bytecode:
//!
//! | program          | loop body                                          |
//! |------------------|----------------------------------------------------|
//! | `NoSync`         | nothing — pure interpretation cost                 |
//! | `Sync`           | `synchronized(o) { count++ }` on an unlocked `o`   |
//! | `NestedSync`     | same, but `o` is already locked outside the loop   |
//! | `MultiSync n`    | synchronizes each of `n` objects every iteration   |
//! | `Call`           | calls a non-synchronized method                    |
//! | `CallSync`       | calls a synchronized method (initial lock)         |
//! | `NestedCallSync` | calls a synchronized method while holding the lock |
//! | `Threads n`      | the `Sync` body run concurrently by `n` threads    |
//! | `MixedSync`      | three nested locks of one object per iteration     |
//!
//! Every `main` takes the iteration count as argument 0 and returns it, so
//! harnesses can verify a run did what it claims.

use std::fmt;

use crate::bytecode::Op;
use crate::program::{Method, MethodFlags, Program};

/// Identifier of a Table 2 micro-benchmark (plus `MixedSync`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroBench {
    /// No locking — the reference benchmark.
    NoSync,
    /// Initial lock with a `synchronized()` statement.
    Sync,
    /// Nested lock with a `synchronized()` statement.
    NestedSync,
    /// Like `Sync`, but synchronizes `n` objects every iteration.
    MultiSync(u32),
    /// Calls a non-synchronized method — reference benchmark.
    Call,
    /// Calls a synchronized method to obtain an initial lock.
    CallSync,
    /// Calls a synchronized method to obtain a nested lock.
    NestedCallSync,
    /// Initial locking performed concurrently by `n` competing threads;
    /// the program is the `Sync` program, run on `n` threads by the
    /// harness.
    Threads(u32),
    /// Figure 6's cross of `Sync` and `NestedSync`: three nested locks of
    /// the same object on every iteration.
    MixedSync,
}

impl MicroBench {
    /// The benchmarks of Table 2 in presentation order, with the sweep
    /// parameters used in Figure 4.
    pub fn table2() -> Vec<MicroBench> {
        vec![
            MicroBench::NoSync,
            MicroBench::Sync,
            MicroBench::NestedSync,
            MicroBench::MultiSync(64),
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
            MicroBench::Threads(4),
        ]
    }

    /// Number of pooled objects the benchmark's program needs.
    pub fn pool_size(self) -> u32 {
        match self {
            MicroBench::NoSync => 0,
            MicroBench::MultiSync(n) => n.max(1),
            _ => 1,
        }
    }

    /// Builds the benchmark's bytecode program. The entry point is always
    /// a method named `main` taking the iteration count.
    pub fn program(self) -> Program {
        match self {
            MicroBench::NoSync => looped_program(0, vec![]),
            MicroBench::Sync | MicroBench::Threads(_) => looped_program(
                1,
                vec![
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::IInc(2, 1),
                    Op::AConst(0),
                    Op::MonitorExit,
                ],
            ),
            MicroBench::NestedSync => {
                let body = vec![
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::IInc(2, 1),
                    Op::AConst(0),
                    Op::MonitorExit,
                ];
                wrapped_looped_program(1, body)
            }
            MicroBench::MultiSync(n) => {
                let n = n.max(1);
                let mut body = Vec::with_capacity(5 * n as usize);
                for k in 0..n {
                    body.extend([
                        Op::AConst(k),
                        Op::MonitorEnter,
                        Op::IInc(2, 1),
                        Op::AConst(k),
                        Op::MonitorExit,
                    ]);
                }
                looped_program(n, body)
            }
            MicroBench::Call => call_program(false, false),
            MicroBench::CallSync => call_program(true, false),
            MicroBench::NestedCallSync => call_program(true, true),
            MicroBench::MixedSync => looped_program(
                1,
                vec![
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::AConst(0),
                    Op::MonitorEnter,
                    Op::IInc(2, 1),
                    Op::AConst(0),
                    Op::MonitorExit,
                    Op::AConst(0),
                    Op::MonitorExit,
                    Op::AConst(0),
                    Op::MonitorExit,
                ],
            ),
        }
    }

    /// Expected return value of `main(iters)` — the iteration count.
    pub fn expected(self, iters: i32) -> i32 {
        iters
    }

    /// For the threaded benchmark, the thread count; 1 otherwise.
    pub fn thread_count(self) -> u32 {
        match self {
            MicroBench::Threads(n) => n.max(1),
            _ => 1,
        }
    }
}

impl fmt::Display for MicroBench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroBench::NoSync => f.write_str("NoSync"),
            MicroBench::Sync => f.write_str("Sync"),
            MicroBench::NestedSync => f.write_str("NestedSync"),
            MicroBench::MultiSync(n) => write!(f, "MultiSync {n}"),
            MicroBench::Call => f.write_str("Call"),
            MicroBench::CallSync => f.write_str("CallSync"),
            MicroBench::NestedCallSync => f.write_str("NestedCallSync"),
            MicroBench::Threads(n) => write!(f, "Threads {n}"),
            MicroBench::MixedSync => f.write_str("MixedSync"),
        }
    }
}

/// `main(iters)`: the canonical tight loop with `body` between the bounds
/// check and the induction increment. Locals: 0 = iters, 1 = i,
/// 2 = counter.
fn looped_program(pool: u32, body: Vec<Op>) -> Program {
    let mut code = vec![
        Op::IConst(0),   // 0
        Op::IStore(1),   // 1: i = 0
        Op::IConst(0),   // 2
        Op::IStore(2),   // 3: counter = 0
        Op::ILoad(1),    // 4: loop head
        Op::ILoad(0),    // 5
        Op::IfICmpGe(0), // 6: patched to END below
    ];
    code.extend(body);
    let back_edge = code.len();
    code.push(Op::IInc(1, 1)); // back_edge
    code.push(Op::Goto(4));
    let end = code.len();
    code[6] = Op::IfICmpGe(end);
    code.push(Op::ILoad(1));
    code.push(Op::IReturn);
    debug_assert!(back_edge > 6);

    let mut program = Program::new(pool);
    program.add_method(Method::new(
        "main",
        1,
        3,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        code,
    ));
    program
}

/// Like [`looped_program`] but the whole loop runs inside
/// `synchronized(pool[0]) { ... }` — the `NestedSync` shape.
fn wrapped_looped_program(pool: u32, body: Vec<Op>) -> Program {
    let mut code = vec![
        Op::AConst(0),
        Op::MonitorEnter,
        Op::IConst(0),   // 2
        Op::IStore(1),   // 3: i = 0
        Op::IConst(0),   // 4
        Op::IStore(2),   // 5: counter = 0
        Op::ILoad(1),    // 6: loop head
        Op::ILoad(0),    // 7
        Op::IfICmpGe(0), // 8: patched
    ];
    code.extend(body);
    code.push(Op::IInc(1, 1));
    code.push(Op::Goto(6));
    let end = code.len();
    code[8] = Op::IfICmpGe(end);
    code.push(Op::AConst(0));
    code.push(Op::MonitorExit);
    code.push(Op::ILoad(1));
    code.push(Op::IReturn);

    let mut program = Program::new(pool);
    program.add_method(Method::new(
        "main",
        1,
        3,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        code,
    ));
    program
}

/// The `Call`/`CallSync`/`NestedCallSync` programs: the loop body invokes
/// `bump(pool[0])`, which increments the object's field 0. `sync` makes
/// `bump` synchronized; `hold` wraps the whole loop in
/// `synchronized(pool[0])` so every call-site lock is nested.
fn call_program(sync: bool, hold: bool) -> Program {
    let mut program = Program::new(1);

    // Placeholder id 0 is main; bump becomes id 1 after both adds. Build
    // bump first to learn its id, then main referencing it.
    let bump = Method::new(
        "bump",
        1,
        1,
        MethodFlags {
            synchronized: sync,
            returns_value: false,
        },
        vec![
            Op::ALoad(0),
            Op::ALoad(0),
            Op::GetField(0),
            Op::IConst(1),
            Op::IAdd,
            Op::PutField(0),
            Op::Return,
        ],
    );

    let body = |bump_id: u16| vec![Op::AConst(0), Op::Invoke(bump_id)];

    // main is id 0 by convention (added first).
    let main_flags = MethodFlags {
        synchronized: false,
        returns_value: true,
    };
    let bump_id: u16 = 1;
    let mut code;
    if hold {
        code = vec![
            Op::AConst(0),
            Op::MonitorEnter,
            Op::IConst(0),
            Op::IStore(1),
            Op::ILoad(1), // 4: loop
            Op::ILoad(0),
            Op::IfICmpGe(0), // 6: patched
        ];
        code.extend(body(bump_id));
        code.push(Op::IInc(1, 1));
        code.push(Op::Goto(4));
        let end = code.len();
        code[6] = Op::IfICmpGe(end);
        code.push(Op::AConst(0));
        code.push(Op::MonitorExit);
        code.push(Op::ILoad(1));
        code.push(Op::IReturn);
    } else {
        code = vec![
            Op::IConst(0),
            Op::IStore(1),
            Op::ILoad(1), // 2: loop
            Op::ILoad(0),
            Op::IfICmpGe(0), // 4: patched
        ];
        code.extend(body(bump_id));
        code.push(Op::IInc(1, 1));
        code.push(Op::Goto(2));
        let end = code.len();
        code[4] = Op::IfICmpGe(end);
        code.push(Op::ILoad(1));
        code.push(Op::IReturn);
    }
    program.add_method(Method::new("main", 1, 2, main_flags, code));
    let actual_bump_id = program.add_method(bump);
    debug_assert_eq!(actual_bump_id, bump_id);
    program
}

/// A classic lock-order inversion: `left` acquires `pool[0]` then
/// `pool[1]`, `right` acquires them in the opposite order. Two threads
/// interleaving `left` and `right` can deadlock; `lockcheck`'s
/// lock-order pass must flag the `0 <-> 1` cycle. Single-threaded
/// execution is safe, so the program still runs under the dynamic
/// oracle: `main(iters)` calls both once and returns `iters`.
pub fn deadlock_pair() -> Program {
    let ordered = |first: u32, second: u32| {
        vec![
            Op::AConst(first),
            Op::MonitorEnter,
            Op::AConst(second),
            Op::MonitorEnter,
            Op::AConst(second),
            Op::MonitorExit,
            Op::AConst(first),
            Op::MonitorExit,
            Op::Return,
        ]
    };
    let mut program = Program::new(2);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![Op::Invoke(1), Op::Invoke(2), Op::ILoad(0), Op::IReturn],
    ));
    program.add_method(Method::new(
        "left",
        0,
        0,
        MethodFlags::default(),
        ordered(0, 1),
    ));
    program.add_method(Method::new(
        "right",
        0,
        0,
        MethodFlags::default(),
        ordered(1, 0),
    ));
    program
}

/// `main(n)` recurses `n` levels deep, re-locking `pool[0]` at every
/// level — nest depth equals the argument, so no static finite bound
/// exists. With `n > 256` the thin-lock count field overflows and forces
/// inflation mid-critical-section; `lockcheck`'s nest-depth pass must
/// report `pool[0]` as unbounded and emit a pre-inflation hint.
pub fn deep_nest() -> Program {
    let mut program = Program::new(1);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![Op::ILoad(0), Op::Invoke(1), Op::ILoad(0), Op::IReturn],
    ));
    program.add_method(Method::new(
        "rec",
        1,
        1,
        MethodFlags::default(),
        vec![
            Op::ILoad(0),     // 0
            Op::IfEq(10),     // 1: n == 0 -> return
            Op::AConst(0),    // 2
            Op::MonitorEnter, // 3
            Op::ILoad(0),     // 4
            Op::IConst(1),    // 5
            Op::ISub,         // 6
            Op::Invoke(1),    // 7: rec(n - 1) while holding pool[0]
            Op::AConst(0),    // 8
            Op::MonitorExit,  // 9
            Op::Return,       // 10
        ],
    ));
    program
}

/// A `monitorexit` with no matching `monitorenter` on any path — the
/// unbalanced-lock seed `lockcheck` must diagnose at pc 1. Passes the
/// base verifier with structured locking disabled (types are fine).
pub fn unbalanced_exit() -> Program {
    let mut program = Program::new(1);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![Op::AConst(0), Op::MonitorExit, Op::ILoad(0), Op::IReturn],
    ));
    program
}

/// Balanced lock counts but scrambled identity: acquires `pool[0]` then
/// `pool[1]` and releases them outermost-first. The verifier's depth
/// counter cannot see this; the symbolic lock-stack pass must flag the
/// non-LIFO release at pc 5.
pub fn non_lifo_pair() -> Program {
    let mut program = Program::new(2);
    program.add_method(Method::new(
        "main",
        1,
        1,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(1),    // 2
            Op::MonitorEnter, // 3
            Op::AConst(0),    // 4
            Op::MonitorExit,  // 5: releases the outer lock first
            Op::AConst(1),    // 6
            Op::MonitorExit,  // 7
            Op::ILoad(0),     // 8
            Op::IReturn,      // 9
        ],
    ));
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Vm;
    use crate::value::Value;
    use std::sync::Arc;
    use thinlock::ThinLocks;
    use thinlock_runtime::heap::{Heap, ObjRef};
    use thinlock_runtime::protocol::SyncProtocol;
    use thinlock_runtime::registry::ThreadRegistry;

    fn run_bench(bench: MicroBench, iters: i32) -> (i32, ThinLocks, Vec<ObjRef>) {
        let pool_size = bench.pool_size() as usize;
        let heap = Arc::new(Heap::with_capacity_and_fields(pool_size + 1, 1));
        let locks = ThinLocks::new(heap, ThreadRegistry::new());
        let pool: Vec<ObjRef> = (0..pool_size)
            .map(|_| locks.heap().alloc().unwrap())
            .collect();
        let program = bench.program();
        program
            .validate()
            .expect("generated program is well-formed");
        let reg = locks.registry().register().unwrap();
        let out = {
            let vm = Vm::new(&locks, &program, pool.clone()).unwrap();
            vm.run("main", reg.token(), &[Value::Int(iters)])
                .unwrap()
                .and_then(Value::as_int)
                .unwrap()
        };
        (out, locks, pool)
    }

    #[test]
    fn every_generated_program_validates() {
        let all = [
            MicroBench::NoSync,
            MicroBench::Sync,
            MicroBench::NestedSync,
            MicroBench::MultiSync(1),
            MicroBench::MultiSync(64),
            MicroBench::MultiSync(1024),
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
            MicroBench::Threads(8),
            MicroBench::MixedSync,
        ];
        for b in all {
            b.program()
                .validate()
                .unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn no_sync_counts_iterations() {
        let (out, locks, _) = run_bench(MicroBench::NoSync, 500);
        assert_eq!(out, 500);
        assert_eq!(locks.inflated_count(), 0);
    }

    #[test]
    fn sync_locks_and_releases_each_iteration() {
        let (out, locks, pool) = run_bench(MicroBench::Sync, 200);
        assert_eq!(out, 200);
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0, "single thread: stays thin");
    }

    #[test]
    fn nested_sync_nests_within_outer_lock() {
        let (out, locks, pool) = run_bench(MicroBench::NestedSync, 200);
        assert_eq!(out, 200);
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(
            locks.inflated_count(),
            0,
            "nesting depth 2 never overflows the count"
        );
    }

    #[test]
    fn multi_sync_touches_every_object() {
        let n = 16;
        let (out, locks, pool) = run_bench(MicroBench::MultiSync(n), 50);
        assert_eq!(out, 50);
        assert_eq!(pool.len(), n as usize);
        for o in pool {
            assert!(locks.lock_word(o).is_unlocked());
        }
    }

    #[test]
    fn call_benchmarks_update_the_field() {
        for bench in [
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
        ] {
            let (out, locks, pool) = run_bench(bench, 100);
            assert_eq!(out, 100, "{bench}");
            let field = locks
                .heap()
                .field(pool[0], 0)
                .load(std::sync::atomic::Ordering::Relaxed);
            assert_eq!(field, 100, "{bench}: bump ran once per iteration");
            assert!(locks.lock_word(pool[0]).is_unlocked(), "{bench}");
        }
    }

    #[test]
    fn mixed_sync_three_nested_locks() {
        let (out, locks, pool) = run_bench(MicroBench::MixedSync, 100);
        assert_eq!(out, 100);
        assert!(locks.lock_word(pool[0]).is_unlocked());
        assert_eq!(locks.inflated_count(), 0, "depth 3 stays thin");
    }

    #[test]
    fn threads_program_is_shared_safely() {
        let bench = MicroBench::Threads(4);
        let heap = Arc::new(Heap::with_capacity(2));
        let locks = Arc::new(ThinLocks::new(heap, ThreadRegistry::new()));
        let pool = vec![locks.heap().alloc().unwrap()];
        let program = Arc::new(bench.program());
        let mut handles = Vec::new();
        for _ in 0..bench.thread_count() {
            let locks = Arc::clone(&locks);
            let program = Arc::clone(&program);
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                let reg = locks.registry().register().unwrap();
                let vm = Vm::new(&*locks, &program, pool).unwrap();
                vm.run("main", reg.token(), &[Value::Int(200)])
                    .unwrap()
                    .and_then(Value::as_int)
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 200);
        }
        // The shared object's lock must be fully released at the end.
        let reg = locks.registry().register().unwrap();
        assert!(!locks.holds_lock(pool[0], reg.token()));
    }

    #[test]
    fn table2_listing_and_names() {
        let names: Vec<String> = MicroBench::table2().iter().map(|b| b.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "NoSync",
                "Sync",
                "NestedSync",
                "MultiSync 64",
                "Call",
                "CallSync",
                "NestedCallSync",
                "Threads 4"
            ]
        );
        assert_eq!(MicroBench::Threads(4).thread_count(), 4);
        assert_eq!(MicroBench::Sync.thread_count(), 1);
        assert_eq!(MicroBench::Sync.expected(7), 7);
    }
}
