//! Interpreter error type.

use std::error::Error;
use std::fmt;

use thinlock_runtime::error::SyncError;
use thinlock_runtime::heap::ObjRef;

/// Errors raised while executing bytecode.
///
/// In the real JVM most of these are ruled out statically by the bytecode
/// verifier; the miniature VM checks them dynamically and reports them as
/// errors rather than undefined behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmError {
    /// An instruction popped from an empty operand stack.
    StackUnderflow {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// An instruction found a value of the wrong kind.
    TypeMismatch {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// A local-variable index exceeded the method's `max_locals`.
    BadLocal {
        /// The out-of-range slot.
        slot: u8,
    },
    /// A branch or fall-through left the method's code.
    BadPc {
        /// The out-of-range target.
        target: usize,
    },
    /// An `invoke` referenced a method id not present in the program.
    BadMethod {
        /// The unresolved method id.
        id: u16,
    },
    /// An `aconst`/`aloadpool` referenced a missing object-pool entry.
    BadPoolIndex {
        /// The unresolved pool index.
        index: u32,
    },
    /// A field access was out of range for the heap's field count.
    BadField {
        /// The out-of-range field index.
        index: u16,
    },
    /// `monitorenter`/`monitorexit`/method sync touched `null`.
    NullMonitor {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// An exception object was thrown (`athrow`) and no handler in any
    /// frame caught it.
    UncaughtException {
        /// The thrown exception object.
        object: ObjRef,
    },
    /// Integer remainder/divide by zero (Java's `ArithmeticException`).
    DivisionByZero {
        /// Program counter of the faulting instruction.
        pc: usize,
    },
    /// The step budget was exhausted (runaway loop protection in tests).
    OutOfFuel,
    /// A synchronization operation failed.
    Sync(SyncError),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::StackUnderflow { pc } => write!(f, "operand stack underflow at pc {pc}"),
            VmError::TypeMismatch { pc } => write!(f, "operand type mismatch at pc {pc}"),
            VmError::BadLocal { slot } => write!(f, "local slot {slot} out of range"),
            VmError::BadPc { target } => write!(f, "branch target {target} out of range"),
            VmError::BadMethod { id } => write!(f, "unknown method id {id}"),
            VmError::BadPoolIndex { index } => write!(f, "object pool index {index} out of range"),
            VmError::BadField { index } => write!(f, "field index {index} out of range"),
            VmError::NullMonitor { pc } => write!(f, "monitor operation on null at pc {pc}"),
            VmError::UncaughtException { object } => {
                write!(f, "uncaught exception: {object}")
            }
            VmError::DivisionByZero { pc } => write!(f, "division by zero at pc {pc}"),
            VmError::OutOfFuel => f.write_str("execution fuel exhausted"),
            VmError::Sync(e) => write!(f, "synchronization failed: {e}"),
        }
    }
}

impl Error for VmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VmError::Sync(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SyncError> for VmError {
    fn from(e: SyncError) -> Self {
        VmError::Sync(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            VmError::StackUnderflow { pc: 3 }.to_string(),
            "operand stack underflow at pc 3"
        );
        assert!(VmError::Sync(SyncError::NotOwner)
            .to_string()
            .contains("synchronization"));
    }

    #[test]
    fn source_chains_to_sync_error() {
        let e = VmError::from(SyncError::NotLocked);
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&VmError::OutOfFuel).is_none());
    }
}
