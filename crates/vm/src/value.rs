//! Runtime values of the miniature VM.

use std::fmt;

use thinlock_runtime::heap::ObjRef;

/// A VM stack/local value: a 32-bit integer, an object reference, or null.
///
/// The interpreter type-checks at run time (`iload` on a `Ref` is a
/// [`VmError::TypeMismatch`](crate::error::VmError::TypeMismatch)), which
/// stands in for the JVM's bytecode verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// A 32-bit signed integer (`int`).
    Int(i32),
    /// A reference to a heap object.
    Ref(ObjRef),
    /// The null reference.
    Null,
}

impl Value {
    /// Extracts an integer.
    pub fn as_int(self) -> Option<i32> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Extracts an object reference.
    pub fn as_ref(self) -> Option<ObjRef> {
        match self {
            Value::Ref(r) => Some(r),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }
}

impl Default for Value {
    /// Fresh locals start as `Null`, mirroring the JVM's definite-
    /// assignment requirement being checked dynamically here.
    fn default() -> Self {
        Value::Null
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i)
    }
}

impl From<ObjRef> for Value {
    fn from(r: ObjRef) -> Self {
        Value::Ref(r)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Ref(r) => write!(f, "{r}"),
            Value::Null => f.write_str("null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_ref(), None);
        let r = ObjRef::from_index(3);
        assert_eq!(Value::Ref(r).as_ref(), Some(r));
        assert_eq!(Value::Ref(r).as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn conversions_and_default() {
        assert_eq!(Value::from(5), Value::Int(5));
        assert_eq!(
            Value::from(ObjRef::from_index(1)),
            Value::Ref(ObjRef::from_index(1))
        );
        assert_eq!(Value::default(), Value::Null);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Ref(ObjRef::from_index(2)).to_string(), "obj#2");
    }
}
