//! A static bytecode verifier: abstract interpretation of stack depth and
//! value kinds.
//!
//! The real JVM rules out most dynamic failures of our interpreter —
//! stack underflow, type confusion, reading uninitialized locals, falling
//! off the end of a method — with a dataflow verifier run at class-load
//! time. This module is that verifier for the miniature instruction set:
//! a fixpoint over the control-flow graph with a small type lattice
//!
//! ```text
//!        Conflict            stack slots and locals
//!        /      \
//!      Int      Ref          (Ref includes null)
//!        \      /
//!        Unknown             (unconstrained method argument)
//! ```
//!
//! plus an optional *structured locking* analysis that checks
//! `monitorenter`/`monitorexit` balance along every path — stricter than
//! the JVM (which permits unstructured locking) but true of all code the
//! generators in this crate emit.

use std::collections::VecDeque;
use std::fmt;

use crate::bytecode::Op;
use crate::program::{Method, Program};

/// Abstract value kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VType {
    /// Unconstrained (a method argument not yet used).
    Unknown,
    /// A 32-bit integer.
    Int,
    /// An object reference or null.
    Ref,
}

impl VType {
    /// Least upper bound; `None` is the ⊤ (conflict) element.
    fn join(self, other: VType) -> Option<VType> {
        match (self, other) {
            (a, b) if a == b => Some(a),
            (VType::Unknown, x) | (x, VType::Unknown) => Some(x),
            _ => None,
        }
    }
}

impl fmt::Display for VType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VType::Unknown => "unknown",
            VType::Int => "int",
            VType::Ref => "ref",
        };
        f.write_str(s)
    }
}

/// A verification failure, with the method and program counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Method name.
    pub method: String,
    /// Program counter of the offending instruction (or its join point).
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ pc {}: {}", self.method, self.pc, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Facts proven about a verified method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodSummary {
    /// Maximum operand-stack depth over all paths.
    pub max_stack: usize,
    /// Maximum `monitorenter` nesting along any path (only meaningful when
    /// structured locking was requested and holds).
    pub max_monitors: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    stack: Vec<VType>,
    locals: Vec<Option<VType>>, // None = definitely unassigned
    monitors: usize,
}

impl Frame {
    fn merge(&self, other: &Frame) -> Result<Option<Frame>, String> {
        if self.stack.len() != other.stack.len() {
            return Err(format!(
                "stack depth mismatch at join: {} vs {}",
                self.stack.len(),
                other.stack.len()
            ));
        }
        if self.monitors != other.monitors {
            return Err(format!(
                "monitor depth mismatch at join: {} vs {}",
                self.monitors, other.monitors
            ));
        }
        let mut changed = false;
        let mut stack = Vec::with_capacity(self.stack.len());
        for (&a, &b) in self.stack.iter().zip(&other.stack) {
            let j = a
                .join(b)
                .ok_or_else(|| format!("irreconcilable stack types at join: {a} vs {b}"))?;
            changed |= j != a;
            stack.push(j);
        }
        let mut locals = Vec::with_capacity(self.locals.len());
        for (&a, &b) in self.locals.iter().zip(&other.locals) {
            let j = match (a, b) {
                (Some(x), Some(y)) => x.join(y).map(Some).unwrap_or(None),
                _ => None, // assigned on only one path: unusable after join
            };
            changed |= j != a;
            locals.push(j);
        }
        Ok(changed.then_some(Frame {
            stack,
            locals,
            monitors: self.monitors,
        }))
    }
}

/// Options controlling [`verify_method`] / [`verify_program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOptions {
    /// Require every path to balance `monitorenter`/`monitorexit` and to
    /// hold no monitors at any `return` (stricter than the JVM).
    pub structured_locking: bool,
    /// Maximum permitted operand-stack depth.
    pub max_stack: usize,
}

impl Default for VerifyOptions {
    fn default() -> Self {
        VerifyOptions {
            structured_locking: true,
            max_stack: 64,
        }
    }
}

/// Verifies one method of `program`.
///
/// # Errors
///
/// The first dataflow violation found, as a [`VerifyError`].
///
/// # Example
///
/// ```
/// use thinlock_vm::programs::MicroBench;
/// use thinlock_vm::verify::{verify_program, VerifyOptions};
///
/// let program = MicroBench::Sync.program();
/// let summaries = verify_program(&program, VerifyOptions::default())?;
/// assert!(summaries[0].max_stack <= 4);
/// # Ok::<(), thinlock_vm::verify::VerifyError>(())
/// ```
pub fn verify_method(
    program: &Program,
    method: &Method,
    options: VerifyOptions,
) -> Result<MethodSummary, VerifyError> {
    let err = |pc: usize, message: String| VerifyError {
        method: method.name().to_string(),
        pc,
        message,
    };
    let code = method.code();
    if code.is_empty() {
        return Err(err(0, "empty method body".into()));
    }

    // Entry frame: arguments occupy the first locals; a synchronized
    // method's receiver must be a reference.
    let mut entry_locals: Vec<Option<VType>> = vec![None; usize::from(method.max_locals())];
    for slot in entry_locals
        .iter_mut()
        .take(usize::from(method.arg_count()))
    {
        *slot = Some(VType::Unknown);
    }
    if method.flags().synchronized {
        match entry_locals.first_mut() {
            Some(first) => *first = Some(VType::Ref),
            None => {
                return Err(err(
                    0,
                    "synchronized method needs a receiver argument".into(),
                ))
            }
        }
    }

    let mut states: Vec<Option<Frame>> = vec![None; code.len()];
    states[0] = Some(Frame {
        stack: Vec::new(),
        locals: entry_locals,
        monitors: 0,
    });
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);
    let mut max_stack = 0usize;
    let mut max_monitors = 0usize;

    while let Some(pc) = worklist.pop_front() {
        let mut frame = states[pc].clone().expect("worklist entries have states");
        let op = *code
            .get(pc)
            .ok_or_else(|| err(pc, "control flow leaves the method".into()))?;

        macro_rules! pop {
            () => {
                frame
                    .stack
                    .pop()
                    .ok_or_else(|| err(pc, "operand stack underflow".into()))?
            };
        }
        macro_rules! pop_kind {
            ($want:expr) => {{
                let v = pop!();
                match v.join($want) {
                    Some(_) => {}
                    None => return Err(err(pc, format!("expected {} on stack, found {v}", $want))),
                }
            }};
        }
        macro_rules! push {
            ($t:expr) => {{
                frame.stack.push($t);
                if frame.stack.len() > options.max_stack {
                    return Err(err(pc, "operand stack overflow".into()));
                }
                max_stack = max_stack.max(frame.stack.len());
            }};
        }
        macro_rules! local {
            ($slot:expr) => {{
                let s = usize::from($slot);
                if s >= frame.locals.len() {
                    return Err(err(pc, format!("local {s} out of range")));
                }
                s
            }};
        }

        let mut successors: Vec<usize> = Vec::with_capacity(2);
        let mut falls_through = true;

        match op {
            Op::IConst(_) => push!(VType::Int),
            Op::ILoad(s) => {
                let s = local!(s);
                match frame.locals[s] {
                    Some(t) if t.join(VType::Int).is_some() => {
                        frame.locals[s] = Some(VType::Int);
                    }
                    Some(t) => return Err(err(pc, format!("iload of {t} local"))),
                    None => return Err(err(pc, "iload of unassigned local".into())),
                }
                push!(VType::Int);
            }
            Op::IStore(s) => {
                pop_kind!(VType::Int);
                let s = local!(s);
                frame.locals[s] = Some(VType::Int);
            }
            Op::IInc(s, _) => {
                let s = local!(s);
                match frame.locals[s] {
                    Some(t) if t.join(VType::Int).is_some() => {
                        frame.locals[s] = Some(VType::Int);
                    }
                    Some(t) => return Err(err(pc, format!("iinc of {t} local"))),
                    None => return Err(err(pc, "iinc of unassigned local".into())),
                }
            }
            Op::IAdd
            | Op::ISub
            | Op::IMul
            | Op::IRem
            | Op::IAnd
            | Op::IOr
            | Op::IXor
            | Op::IShl
            | Op::IShr => {
                pop_kind!(VType::Int);
                pop_kind!(VType::Int);
                push!(VType::Int);
            }
            Op::ALoad(s) => {
                let s = local!(s);
                match frame.locals[s] {
                    Some(t) if t.join(VType::Ref).is_some() => {
                        frame.locals[s] = Some(VType::Ref);
                    }
                    Some(t) => return Err(err(pc, format!("aload of {t} local"))),
                    None => return Err(err(pc, "aload of unassigned local".into())),
                }
                push!(VType::Ref);
            }
            Op::AStore(s) => {
                pop_kind!(VType::Ref);
                let s = local!(s);
                frame.locals[s] = Some(VType::Ref);
            }
            Op::AConst(i) => {
                if i >= program.pool_size() {
                    return Err(err(pc, format!("pool index {i} out of range")));
                }
                push!(VType::Ref);
            }
            Op::ALoadPool => {
                pop_kind!(VType::Int);
                push!(VType::Ref);
            }
            Op::GetField(_) => {
                pop_kind!(VType::Ref);
                push!(VType::Int);
            }
            Op::PutField(_) => {
                pop_kind!(VType::Int);
                pop_kind!(VType::Ref);
            }
            Op::GetFieldDyn => {
                pop_kind!(VType::Int);
                pop_kind!(VType::Ref);
                push!(VType::Int);
            }
            Op::PutFieldDyn => {
                pop_kind!(VType::Int);
                pop_kind!(VType::Int);
                pop_kind!(VType::Ref);
            }
            Op::Dup => {
                let v = pop!();
                push!(v);
                push!(v);
            }
            Op::Pop => {
                let _ = pop!();
            }
            Op::Goto(t) => {
                successors.push(t);
                falls_through = false;
            }
            Op::INeg => {
                pop_kind!(VType::Int);
                push!(VType::Int);
            }
            Op::IfICmpLt(t) | Op::IfICmpGe(t) | Op::IfICmpEq(t) => {
                pop_kind!(VType::Int);
                pop_kind!(VType::Int);
                successors.push(t);
            }
            Op::IfEq(t) => {
                pop_kind!(VType::Int);
                successors.push(t);
            }
            Op::MonitorEnter => {
                pop_kind!(VType::Ref);
                // Only track depth under structured locking: exits do not
                // decrement otherwise, and a stale count would poison the
                // depth check in `Frame::merge` at every loop join.
                if options.structured_locking {
                    frame.monitors += 1;
                    max_monitors = max_monitors.max(frame.monitors);
                }
            }
            Op::MonitorExit => {
                pop_kind!(VType::Ref);
                if options.structured_locking {
                    frame.monitors = frame.monitors.checked_sub(1).ok_or_else(|| {
                        err(pc, "monitorexit without matching monitorenter".into())
                    })?;
                }
            }
            Op::Wait | Op::Notify => {
                // Stack-wise these are monitorexit-shaped: consume one ref.
                // Monitor ownership is a dynamic property, so the verifier
                // does not require a surrounding monitorenter here.
                pop_kind!(VType::Ref);
            }
            Op::Invoke(id) => {
                let callee = program
                    .method(id)
                    .ok_or_else(|| err(pc, format!("unknown method id {id}")))?;
                let argc = usize::from(callee.arg_count());
                if frame.stack.len() < argc {
                    return Err(err(pc, "too few arguments on stack for invoke".into()));
                }
                // Receiver of a synchronized callee must be a reference.
                if callee.flags().synchronized && argc > 0 {
                    let recv = frame.stack[frame.stack.len() - argc];
                    if recv.join(VType::Ref).is_none() {
                        return Err(err(
                            pc,
                            format!("synchronized callee receiver must be ref, found {recv}"),
                        ));
                    }
                }
                frame.stack.truncate(frame.stack.len() - argc);
                if callee.flags().returns_value {
                    push!(VType::Int);
                }
            }
            Op::Throw => {
                pop_kind!(VType::Ref);
                falls_through = false;
            }
            Op::Return => {
                if method.flags().returns_value {
                    return Err(err(pc, "return in a method declared `returns`".into()));
                }
                if options.structured_locking && frame.monitors != 0 {
                    return Err(err(pc, "return while holding a monitor".into()));
                }
                falls_through = false;
            }
            Op::IReturn => {
                pop_kind!(VType::Int);
                if !method.flags().returns_value {
                    return Err(err(pc, "ireturn in a method not declared `returns`".into()));
                }
                if options.structured_locking && frame.monitors != 0 {
                    return Err(err(pc, "ireturn while holding a monitor".into()));
                }
                falls_through = false;
            }
            Op::Nop => {}
        }

        if falls_through {
            successors.push(pc + 1);
        }

        // Any instruction inside a protected range may transfer to its
        // handler with the stack reduced to the exception object. Seed the
        // handler with the frame at instruction *entry* (locals and
        // monitor depth as they were before the op).
        if let Some(h) = method.handler_for(pc) {
            let entry = states[pc].clone().expect("current state exists");
            let handler_frame = Frame {
                stack: vec![VType::Ref],
                locals: entry.locals,
                monitors: entry.monitors,
            };
            if h.target >= code.len() {
                return Err(err(pc, format!("handler target {} out of range", h.target)));
            }
            match &states[h.target] {
                None => {
                    states[h.target] = Some(handler_frame);
                    worklist.push_back(h.target);
                }
                Some(existing) => match existing.merge(&handler_frame) {
                    Ok(Some(merged)) => {
                        states[h.target] = Some(merged);
                        worklist.push_back(h.target);
                    }
                    Ok(None) => {}
                    Err(msg) => return Err(err(h.target, msg)),
                },
            }
        }

        for succ in successors {
            if succ >= code.len() {
                return Err(err(pc, format!("control flow target {succ} out of range")));
            }
            match &states[succ] {
                None => {
                    states[succ] = Some(frame.clone());
                    worklist.push_back(succ);
                }
                Some(existing) => match existing.merge(&frame) {
                    Ok(Some(merged)) => {
                        states[succ] = Some(merged);
                        worklist.push_back(succ);
                    }
                    Ok(None) => {}
                    Err(msg) => return Err(err(succ, msg)),
                },
            }
        }
    }

    Ok(MethodSummary {
        max_stack,
        max_monitors,
    })
}

/// Verifies every method of a program.
///
/// # Errors
///
/// The first failure across all methods, as a [`VerifyError`].
pub fn verify_program(
    program: &Program,
    options: VerifyOptions,
) -> Result<Vec<MethodSummary>, VerifyError> {
    program.validate().map_err(|message| VerifyError {
        method: "<program>".to_string(),
        pc: 0,
        message,
    })?;
    program
        .methods()
        .iter()
        .map(|m| verify_method(program, m, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::MethodFlags;

    fn method(flags: MethodFlags, args: u8, locals: u8, code: Vec<Op>) -> (Program, Method) {
        let mut p = Program::new(4);
        let m = Method::new("m", args, locals, flags, code);
        p.add_method(m.clone());
        (p, m)
    }

    fn ret_flags() -> MethodFlags {
        MethodFlags {
            synchronized: false,
            returns_value: true,
        }
    }

    fn void_flags() -> MethodFlags {
        MethodFlags::default()
    }

    #[test]
    fn accepts_simple_arithmetic() {
        let (p, m) = method(
            ret_flags(),
            2,
            2,
            vec![Op::ILoad(0), Op::ILoad(1), Op::IAdd, Op::IReturn],
        );
        let s = verify_method(&p, &m, VerifyOptions::default()).unwrap();
        assert_eq!(s.max_stack, 2);
        assert_eq!(s.max_monitors, 0);
    }

    #[test]
    fn rejects_stack_underflow() {
        let (p, m) = method(void_flags(), 0, 0, vec![Op::Pop, Op::Return]);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("underflow"), "{e}");
    }

    #[test]
    fn rejects_type_confusion() {
        let (p, m) = method(
            void_flags(),
            0,
            1,
            vec![Op::AConst(0), Op::IStore(0), Op::Return],
        );
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("expected int"), "{e}");
    }

    #[test]
    fn rejects_unassigned_local_read() {
        let (p, m) = method(ret_flags(), 0, 1, vec![Op::ILoad(0), Op::IReturn]);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("unassigned"), "{e}");
    }

    #[test]
    fn argument_kind_is_inferred_from_use() {
        // Arg 0 used as an int: fine. Then used as a ref: conflict.
        let (p, ok) = method(ret_flags(), 1, 1, vec![Op::ILoad(0), Op::IReturn]);
        verify_method(&p, &ok, VerifyOptions::default()).unwrap();

        let (p2, bad) = method(
            ret_flags(),
            1,
            1,
            vec![Op::ILoad(0), Op::ALoad(0), Op::MonitorEnter, Op::IReturn],
        );
        let e = verify_method(&p2, &bad, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("aload of int"), "{e}");
    }

    #[test]
    fn rejects_fall_off_end() {
        let (p, m) = method(void_flags(), 0, 0, vec![Op::Nop]);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn rejects_return_kind_mismatch() {
        let (p, m) = method(ret_flags(), 0, 0, vec![Op::Return]);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("declared `returns`"), "{e}");

        let (p2, m2) = method(void_flags(), 0, 0, vec![Op::IConst(1), Op::IReturn]);
        let e2 = verify_method(&p2, &m2, VerifyOptions::default()).unwrap_err();
        assert!(e2.message.contains("not declared"), "{e2}");
    }

    #[test]
    fn rejects_join_with_mismatched_stack_depth() {
        // Path A pushes one int before the join; path B pushes none.
        let code = vec![
            Op::ILoad(0),  // 0
            Op::IfEq(4),   // 1: if zero jump to 4 with empty stack
            Op::IConst(7), // 2: push
            Op::Goto(4),   // 3: join at 4 with depth 1
            Op::Return,    // 4
        ];
        let (p, m) = method(void_flags(), 1, 1, code);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("stack depth mismatch"), "{e}");
    }

    #[test]
    fn structured_locking_rejects_unbalanced_paths() {
        // Lock without unlock before return.
        let code = vec![Op::AConst(0), Op::MonitorEnter, Op::Return];
        let (p, m) = method(void_flags(), 0, 0, code);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("holding a monitor"), "{e}");

        // Orphan exit.
        let code = vec![Op::AConst(0), Op::MonitorExit, Op::Return];
        let (p2, m2) = method(void_flags(), 0, 0, code);
        let e2 = verify_method(&p2, &m2, VerifyOptions::default()).unwrap_err();
        assert!(e2.message.contains("without matching"), "{e2}");
    }

    #[test]
    fn structured_locking_can_be_disabled() {
        let code = vec![Op::AConst(0), Op::MonitorEnter, Op::Return];
        let (p, m) = method(void_flags(), 0, 0, code);
        let opts = VerifyOptions {
            structured_locking: false,
            ..VerifyOptions::default()
        };
        verify_method(&p, &m, opts).unwrap();
    }

    #[test]
    fn monitorenter_on_int_is_rejected_with_precise_pc() {
        let code = vec![Op::IConst(1), Op::MonitorEnter, Op::Return];
        let (p, m) = method(void_flags(), 0, 0, code);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert_eq!(e.pc, 1);
        assert!(
            e.message.contains("expected ref on stack, found int"),
            "{e}"
        );
    }

    #[test]
    fn exception_path_that_releases_the_lock_verifies() {
        use crate::program::Handler;
        // synchronized(pool[0]) { throw } with a handler that releases
        // the monitor before returning: every path balances.
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(0),    // 2: protected
            Op::Throw,        // 3: protected
            Op::AStore(0),    // 4: handler target
            Op::AConst(0),    // 5
            Op::MonitorExit,  // 6
            Op::Return,       // 7
        ];
        let mut p = Program::new(1);
        let m = Method::new("m", 0, 1, void_flags(), code).with_handler(Handler {
            start: 2,
            end: 4,
            target: 4,
        });
        p.add_method(m.clone());
        let s = verify_method(&p, &m, VerifyOptions::default()).unwrap();
        assert_eq!(s.max_monitors, 1);
    }

    #[test]
    fn exception_path_that_leaks_the_lock_is_rejected() {
        use crate::program::Handler;
        // Same shape but the handler forgets the monitorexit: the return
        // on the exception path still holds the monitor.
        let code = vec![
            Op::AConst(0),    // 0
            Op::MonitorEnter, // 1
            Op::AConst(0),    // 2: protected
            Op::Throw,        // 3: protected
            Op::AStore(0),    // 4: handler target
            Op::Return,       // 5
        ];
        let mut p = Program::new(1);
        let m = Method::new("m", 0, 1, void_flags(), code).with_handler(Handler {
            start: 2,
            end: 4,
            target: 4,
        });
        p.add_method(m.clone());
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        assert_eq!(e.pc, 5);
        assert!(e.message.contains("holding a monitor"), "{e}");
    }

    #[test]
    fn unstructured_mode_accepts_balanced_loops() {
        // With structured locking off, monitor depth must not be tracked
        // at all — a stale only-incremented count would fail the join
        // check at the loop head of any balanced looping program.
        use crate::programs::MicroBench;
        let opts = VerifyOptions {
            structured_locking: false,
            ..VerifyOptions::default()
        };
        for b in [
            MicroBench::MixedSync,
            MicroBench::Sync,
            MicroBench::MultiSync(4),
        ] {
            verify_program(&b.program(), opts).unwrap_or_else(|e| panic!("{b}: {e}"));
        }
    }

    #[test]
    fn synchronized_receiver_must_be_ref() {
        let mut p = Program::new(1);
        let callee = Method::new(
            "locked",
            1,
            1,
            MethodFlags {
                synchronized: true,
                returns_value: false,
            },
            vec![Op::Return],
        );
        let callee_id = 1u16;
        p.add_method(Method::new(
            "caller",
            0,
            0,
            void_flags(),
            vec![Op::IConst(3), Op::Invoke(callee_id), Op::Return],
        ));
        p.add_method(callee);
        let e = verify_program(&p, VerifyOptions::default()).unwrap_err();
        assert!(e.message.contains("receiver must be ref"), "{e}");
    }

    #[test]
    fn stack_overflow_detected() {
        let code = vec![
            Op::IConst(1), // 0
            Op::Dup,       // 1
            Op::Goto(1),   // 2: unbounded growth
        ];
        let (p, m) = method(void_flags(), 0, 0, code);
        let e = verify_method(&p, &m, VerifyOptions::default()).unwrap_err();
        // Either detected as overflow or as a depth mismatch at the loop
        // join — both mean the stack is not height-consistent.
        assert!(
            e.message.contains("overflow") || e.message.contains("depth mismatch"),
            "{e}"
        );
    }

    #[test]
    fn loops_reach_fixpoint() {
        // A well-formed counting loop verifies and reports its stack need.
        let code = vec![
            Op::IConst(0),   // 0
            Op::IStore(1),   // 1
            Op::ILoad(1),    // 2
            Op::ILoad(0),    // 3
            Op::IfICmpGe(7), // 4
            Op::IInc(1, 1),  // 5
            Op::Goto(2),     // 6
            Op::ILoad(1),    // 7
            Op::IReturn,     // 8
        ];
        let (p, m) = method(ret_flags(), 1, 2, code);
        let s = verify_method(&p, &m, VerifyOptions::default()).unwrap();
        assert_eq!(s.max_stack, 2);
    }

    #[test]
    fn all_generated_microbench_programs_verify() {
        use crate::programs::MicroBench;
        let all = [
            MicroBench::NoSync,
            MicroBench::Sync,
            MicroBench::NestedSync,
            MicroBench::MultiSync(16),
            MicroBench::Call,
            MicroBench::CallSync,
            MicroBench::NestedCallSync,
            MicroBench::Threads(4),
            MicroBench::MixedSync,
        ];
        for b in all {
            let program = b.program();
            let summaries = verify_program(&program, VerifyOptions::default())
                .unwrap_or_else(|e| panic!("{b}: {e}"));
            assert!(summaries.iter().all(|s| s.max_stack <= 4), "{b}");
        }
        // MixedSync holds three monitors at once.
        let s = verify_program(&MicroBench::MixedSync.program(), VerifyOptions::default()).unwrap();
        assert_eq!(s[0].max_monitors, 3);
    }

    #[test]
    fn error_display() {
        let e = VerifyError {
            method: "m".into(),
            pc: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "m @ pc 3: boom");
    }
}
