//! The instruction set of the miniature VM.
//!
//! A JVM-flavoured subset, enough to express every benchmark in the paper:
//! integer arithmetic and locals, conditional branches, object-pool loads
//! (standing in for resolved constant-pool references), field access,
//! method invocation, and — centrally — `monitorenter`/`monitorexit`.

use std::fmt;

/// One bytecode instruction.
///
/// Branch targets are absolute instruction indices within the method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Push the immediate integer.
    IConst(i32),
    /// Push the integer in local `slot`.
    ILoad(u8),
    /// Pop an integer into local `slot`.
    IStore(u8),
    /// Add `delta` to the integer in local `slot` (the JVM's `iinc`).
    IInc(u8, i16),
    /// Pop two integers, push their sum.
    IAdd,
    /// Pop two integers, push `first - second`.
    ISub,
    /// Pop two integers, push their product.
    IMul,
    /// Pop two integers, push `first % second` (truncated, like Java).
    IRem,
    /// Pop an integer, push its negation.
    INeg,
    /// Pop two integers, push their bitwise AND.
    IAnd,
    /// Pop two integers, push their bitwise OR.
    IOr,
    /// Pop two integers, push their bitwise XOR.
    IXor,
    /// Pop shift amount then value; push `value << (shift & 31)`.
    IShl,
    /// Pop shift amount then value; push `value >> (shift & 31)` (arithmetic).
    IShr,
    /// Push the object reference in local `slot`.
    ALoad(u8),
    /// Pop an object reference (or null) into local `slot`.
    AStore(u8),
    /// Push object-pool entry `index` (a resolved object constant).
    AConst(u32),
    /// Pop an integer `i`, push object-pool entry `i`.
    ALoadPool,
    /// Pop an object reference, push its integer field `index`.
    GetField(u16),
    /// Pop an integer then an object reference; store into field `index`.
    PutField(u16),
    /// Pop an integer index then an object reference; push the field at
    /// that dynamic index (the `iaload` of our field-array objects).
    GetFieldDyn,
    /// Pop an integer value, an integer index, then an object reference;
    /// store the value at that dynamic index (`iastore`).
    PutFieldDyn,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
    /// Unconditional jump.
    Goto(usize),
    /// Pop two integers; jump if `first < second`.
    IfICmpLt(usize),
    /// Pop two integers; jump if `first >= second`.
    IfICmpGe(usize),
    /// Pop two integers; jump if equal.
    IfICmpEq(usize),
    /// Pop an integer; jump if zero.
    IfEq(usize),
    /// Pop an object reference; acquire its monitor.
    MonitorEnter,
    /// Pop an object reference; release its monitor.
    MonitorExit,
    /// Pop an object reference; wait on its monitor (`Object.wait` with a
    /// short interpreter-chosen timeout, so a waiter with no notifier
    /// still makes progress). The monitor must be held.
    Wait,
    /// Pop an object reference; wake one waiter on its monitor
    /// (`Object.notify`). The monitor must be held.
    Notify,
    /// Call method `id`; pops the callee's arguments (receiver first in
    /// the argument list, deepest on the stack), pushes its return value
    /// if it has one.
    Invoke(u16),
    /// Pop an object reference and throw it as an exception, unwinding to
    /// the nearest enclosing handler (the JVM's `athrow`).
    Throw,
    /// Return with no value.
    Return,
    /// Pop an integer and return it.
    IReturn,
    /// Do nothing (padding / patched-out code).
    Nop,
}

impl Op {
    /// The assembler mnemonic of this instruction.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::IConst(_) => "iconst",
            Op::ILoad(_) => "iload",
            Op::IStore(_) => "istore",
            Op::IInc(..) => "iinc",
            Op::IAdd => "iadd",
            Op::ISub => "isub",
            Op::IMul => "imul",
            Op::IRem => "irem",
            Op::INeg => "ineg",
            Op::IAnd => "iand",
            Op::IOr => "ior",
            Op::IXor => "ixor",
            Op::IShl => "ishl",
            Op::IShr => "ishr",
            Op::ALoad(_) => "aload",
            Op::AStore(_) => "astore",
            Op::AConst(_) => "aconst",
            Op::ALoadPool => "aloadpool",
            Op::GetField(_) => "getfield",
            Op::PutField(_) => "putfield",
            Op::GetFieldDyn => "getfielddyn",
            Op::PutFieldDyn => "putfielddyn",
            Op::Dup => "dup",
            Op::Pop => "pop",
            Op::Goto(_) => "goto",
            Op::IfICmpLt(_) => "if_icmplt",
            Op::IfICmpGe(_) => "if_icmpge",
            Op::IfICmpEq(_) => "if_icmpeq",
            Op::IfEq(_) => "ifeq",
            Op::MonitorEnter => "monitorenter",
            Op::MonitorExit => "monitorexit",
            Op::Wait => "wait",
            Op::Notify => "notify",
            Op::Invoke(_) => "invoke",
            Op::Throw => "athrow",
            Op::Return => "return",
            Op::IReturn => "ireturn",
            Op::Nop => "nop",
        }
    }

    /// True for instructions that transfer control.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Op::Goto(_) | Op::IfICmpLt(_) | Op::IfICmpGe(_) | Op::IfICmpEq(_) | Op::IfEq(_)
        )
    }

    /// The branch target, for branch instructions.
    pub fn branch_target(self) -> Option<usize> {
        match self {
            Op::Goto(t) | Op::IfICmpLt(t) | Op::IfICmpGe(t) | Op::IfICmpEq(t) | Op::IfEq(t) => {
                Some(t)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::IConst(v) => write!(f, "iconst {v}"),
            Op::ILoad(s) => write!(f, "iload {s}"),
            Op::IStore(s) => write!(f, "istore {s}"),
            Op::IInc(s, d) => write!(f, "iinc {s} {d}"),
            Op::ALoad(s) => write!(f, "aload {s}"),
            Op::AStore(s) => write!(f, "astore {s}"),
            Op::AConst(i) => write!(f, "aconst {i}"),
            Op::GetField(i) => write!(f, "getfield {i}"),
            Op::PutField(i) => write!(f, "putfield {i}"),
            Op::Goto(t) => write!(f, "goto {t}"),
            Op::IfICmpLt(t) => write!(f, "if_icmplt {t}"),
            Op::IfICmpGe(t) => write!(f, "if_icmpge {t}"),
            Op::IfICmpEq(t) => write!(f, "if_icmpeq {t}"),
            Op::IfEq(t) => write!(f, "ifeq {t}"),
            Op::Invoke(m) => write!(f, "invoke {m}"),
            op => f.write_str(op.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_cover_display() {
        let ops = [
            Op::IConst(3),
            Op::ILoad(1),
            Op::IStore(2),
            Op::IInc(1, -1),
            Op::IAdd,
            Op::ISub,
            Op::ALoad(0),
            Op::AStore(3),
            Op::AConst(9),
            Op::ALoadPool,
            Op::GetField(0),
            Op::PutField(1),
            Op::Dup,
            Op::Pop,
            Op::Goto(4),
            Op::IfICmpLt(5),
            Op::IfICmpGe(6),
            Op::IfEq(7),
            Op::MonitorEnter,
            Op::MonitorExit,
            Op::Wait,
            Op::Notify,
            Op::Invoke(2),
            Op::Return,
            Op::IReturn,
            Op::Nop,
        ];
        for op in ops {
            let text = op.to_string();
            assert!(
                text.starts_with(op.mnemonic()),
                "{text} should start with {}",
                op.mnemonic()
            );
        }
    }

    #[test]
    fn branch_classification() {
        assert!(Op::Goto(3).is_branch());
        assert_eq!(Op::Goto(3).branch_target(), Some(3));
        assert!(Op::IfEq(0).is_branch());
        assert!(!Op::IAdd.is_branch());
        assert_eq!(Op::MonitorEnter.branch_target(), None);
    }
}
