//! Property tests of the assembler: `assemble ∘ disassemble` is the
//! identity on arbitrary well-formed programs.

use proptest::prelude::*;

use thinlock_vm::asm::{assemble, disassemble};
use thinlock_vm::{Method, MethodFlags, Op, Program};

/// Strategy for a single non-branch instruction within the given limits.
fn arb_plain_op(max_locals: u8, pool: u32, methods: u16) -> impl Strategy<Value = Op> {
    let slot = 0..max_locals.max(1);
    prop_oneof![
        any::<i32>().prop_map(Op::IConst),
        slot.clone().prop_map(Op::ILoad),
        slot.clone().prop_map(Op::IStore),
        (slot.clone(), any::<i16>()).prop_map(|(s, d)| Op::IInc(s, d)),
        Just(Op::IAdd),
        Just(Op::ISub),
        slot.clone().prop_map(Op::ALoad),
        slot.prop_map(Op::AStore),
        (0..pool.max(1)).prop_map(Op::AConst),
        Just(Op::ALoadPool),
        (0u16..4).prop_map(Op::GetField),
        (0u16..4).prop_map(Op::PutField),
        Just(Op::Dup),
        Just(Op::Pop),
        Just(Op::MonitorEnter),
        Just(Op::MonitorExit),
        (0..methods.max(1)).prop_map(Op::Invoke),
        Just(Op::Return),
        Just(Op::IReturn),
        Just(Op::Nop),
    ]
}

/// A well-formed method: random body with in-range branches, terminated
/// by a return.
fn arb_method(index: usize, pool: u32, methods: u16) -> impl Strategy<Value = Method> {
    (2u8..6, 0u8..4, any::<bool>(), any::<bool>()).prop_flat_map(
        move |(max_locals, extra_locals, synchronized, returns)| {
            let locals = max_locals + extra_locals;
            let body_len = 1usize..20;
            body_len
                .prop_flat_map(move |len| {
                    (
                        proptest::collection::vec(arb_plain_op(locals, pool, methods), len),
                        proptest::collection::vec((0u8..100, any::<bool>()), 0..4),
                    )
                })
                .prop_map(move |(mut code, branches)| {
                    // Terminate so fall-through stays in range when assembled.
                    code.push(Op::Return);
                    // Sprinkle branches with targets inside the final code.
                    let len = code.len();
                    for (pos, forward) in branches {
                        let target = usize::from(pos) % len;
                        let at = usize::from(pos) % len;
                        code[at] = if forward {
                            Op::Goto(target)
                        } else {
                            Op::IfICmpGe(target)
                        };
                    }
                    // Re-terminate in case a branch overwrote the return.
                    code.push(Op::Return);
                    Method::new(
                        format!("m{index}"),
                        1,
                        locals.max(1),
                        MethodFlags {
                            synchronized,
                            returns_value: returns,
                        },
                        code,
                    )
                })
        },
    )
}

fn arb_program() -> impl Strategy<Value = Program> {
    (1u32..8, 1u16..4).prop_flat_map(|(pool, nmethods)| {
        let methods: Vec<_> = (0..usize::from(nmethods))
            .map(|i| arb_method(i, pool, nmethods))
            .collect();
        methods.prop_map(move |ms| {
            let mut p = Program::new(pool);
            for m in ms {
                p.add_method(m);
            }
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round trip: disassemble then assemble reproduces the program.
    #[test]
    fn assembler_round_trips(program in arb_program()) {
        prop_assume!(program.validate().is_ok());
        let text = disassemble(&program);
        let back = assemble(&text);
        prop_assert!(back.is_ok(), "{}\n{}", back.unwrap_err(), text);
        prop_assert_eq!(program, back.unwrap());
    }

    /// Disassembly is line-oriented and never empty for a valid program.
    #[test]
    fn disassembly_is_parseable_linewise(program in arb_program()) {
        prop_assume!(program.validate().is_ok());
        let text = disassemble(&program);
        prop_assert!(text.starts_with("pool "));
        prop_assert!(text.lines().count() > program.methods().len());
    }
}
