//! Randomized tests of the assembler: `assemble ∘ disassemble` is the
//! identity on arbitrary well-formed programs. Programs are generated
//! with the in-repo deterministic PRNG; invalid draws are skipped, like
//! a rejection-sampling `prop_assume`.

use thinlock_runtime::prng::Prng;
use thinlock_vm::asm::{assemble, disassemble};
use thinlock_vm::{Method, MethodFlags, Op, Program};

const CASES: usize = 128;

/// A single random non-branch instruction within the given limits.
fn gen_plain_op(rng: &mut Prng, max_locals: u8, pool: u32, methods: u16) -> Op {
    let slot = rng.range_u32(0, u32::from(max_locals.max(1))) as u8;
    match rng.range_u32(0, 20) {
        0 => Op::IConst(rng.next_u32() as i32),
        1 => Op::ILoad(slot),
        2 => Op::IStore(slot),
        3 => Op::IInc(slot, rng.next_u32() as i16),
        4 => Op::IAdd,
        5 => Op::ISub,
        6 => Op::ALoad(slot),
        7 => Op::AStore(slot),
        8 => Op::AConst(rng.range_u32(0, pool.max(1))),
        9 => Op::ALoadPool,
        10 => Op::GetField(rng.range_u32(0, 4) as u16),
        11 => Op::PutField(rng.range_u32(0, 4) as u16),
        12 => Op::Dup,
        13 => Op::Pop,
        14 => Op::MonitorEnter,
        15 => Op::MonitorExit,
        16 => Op::Invoke(rng.range_u32(0, u32::from(methods.max(1))) as u16),
        17 => Op::Return,
        18 => Op::IReturn,
        _ => Op::Nop,
    }
}

/// A well-formed method: random body with in-range branches, terminated
/// by a return.
fn gen_method(rng: &mut Prng, index: usize, pool: u32, methods: u16) -> Method {
    let max_locals = rng.range_u32(2, 6) as u8;
    let extra_locals = rng.range_u32(0, 4) as u8;
    let synchronized = rng.gen_bool(0.5);
    let returns_value = rng.gen_bool(0.5);
    let locals = max_locals + extra_locals;
    let body_len = rng.range_usize(1, 20);
    let mut code: Vec<Op> = (0..body_len)
        .map(|_| gen_plain_op(rng, locals, pool, methods))
        .collect();
    // Terminate so fall-through stays in range when assembled.
    code.push(Op::Return);
    // Sprinkle branches with targets inside the final code.
    let len = code.len();
    for _ in 0..rng.range_usize(0, 4) {
        let pos = rng.range_usize(0, 100);
        let forward = rng.gen_bool(0.5);
        let target = pos % len;
        let at = pos % len;
        code[at] = if forward {
            Op::Goto(target)
        } else {
            Op::IfICmpGe(target)
        };
    }
    // Re-terminate in case a branch overwrote the return.
    code.push(Op::Return);
    Method::new(
        format!("m{index}"),
        1,
        locals.max(1),
        MethodFlags {
            synchronized,
            returns_value,
        },
        code,
    )
}

fn gen_program(rng: &mut Prng) -> Program {
    let pool = rng.range_u32(1, 8);
    let nmethods = rng.range_u32(1, 4) as u16;
    let mut p = Program::new(pool);
    for i in 0..usize::from(nmethods) {
        p.add_method(gen_method(rng, i, pool, nmethods));
    }
    p
}

/// Round trip: disassemble then assemble reproduces the program.
#[test]
fn assembler_round_trips() {
    let mut rng = Prng::seed_from_u64(0xa53b_0001);
    let mut tested = 0usize;
    for _ in 0..CASES {
        let program = gen_program(&mut rng);
        if program.validate().is_err() {
            continue;
        }
        tested += 1;
        let text = disassemble(&program);
        let back = assemble(&text);
        assert!(back.is_ok(), "{}\n{}", back.unwrap_err(), text);
        assert_eq!(program, back.unwrap());
    }
    assert!(tested > CASES / 2, "only {tested} valid programs generated");
}

/// Disassembly is line-oriented and never empty for a valid program.
#[test]
fn disassembly_is_parseable_linewise() {
    let mut rng = Prng::seed_from_u64(0xa53b_0002);
    let mut tested = 0usize;
    for _ in 0..CASES {
        let program = gen_program(&mut rng);
        if program.validate().is_err() {
            continue;
        }
        tested += 1;
        let text = disassemble(&program);
        assert!(text.starts_with("pool "));
        assert!(text.lines().count() > program.methods().len());
    }
    assert!(tested > CASES / 2, "only {tested} valid programs generated");
}
