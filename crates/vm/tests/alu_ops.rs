//! Semantics of the extended ALU / comparison instruction set, checked
//! against Rust's own integer semantics through assembled programs.

use thinlock::ThinLocks;
use thinlock_vm::asm::{assemble, disassemble};
use thinlock_vm::verify::{verify_program, VerifyOptions};
use thinlock_vm::{Value, Vm};

fn eval(body: &str, args: &[i32]) -> i32 {
    let src = format!(
        "pool 0\nmethod main args={} locals={} returns {{\n{}\n  ireturn\n}}\n",
        args.len(),
        args.len().max(1),
        body
    );
    let program = assemble(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    verify_program(&program, VerifyOptions::default()).unwrap();
    // Round-trip through the disassembler on the way, for free coverage.
    let program = assemble(&disassemble(&program)).unwrap();
    let locks = ThinLocks::with_capacity(1);
    let reg = thinlock_runtime::protocol::SyncProtocol::registry(&locks)
        .register()
        .unwrap();
    let vm = Vm::new(&locks, &program, vec![]).unwrap();
    let vals: Vec<Value> = args.iter().map(|&a| Value::Int(a)).collect();
    vm.run("main", reg.token(), &vals)
        .unwrap()
        .and_then(Value::as_int)
        .unwrap()
}

#[test]
fn ineg() {
    assert_eq!(eval("  iload 0\n  ineg", &[5]), -5);
    assert_eq!(
        eval("  iload 0\n  ineg", &[i32::MIN]),
        i32::MIN.wrapping_neg()
    );
}

#[test]
fn bitwise_ops() {
    assert_eq!(
        eval("  iload 0\n  iload 1\n  iand", &[0b1100, 0b1010]),
        0b1000
    );
    assert_eq!(
        eval("  iload 0\n  iload 1\n  ior", &[0b1100, 0b1010]),
        0b1110
    );
    assert_eq!(
        eval("  iload 0\n  iload 1\n  ixor", &[0b1100, 0b1010]),
        0b0110
    );
}

#[test]
fn shifts_mask_the_count_like_java() {
    assert_eq!(eval("  iload 0\n  iload 1\n  ishl", &[1, 4]), 16);
    assert_eq!(
        eval("  iload 0\n  iload 1\n  ishl", &[1, 33]),
        2,
        "count & 31"
    );
    assert_eq!(
        eval("  iload 0\n  iload 1\n  ishr", &[-16, 2]),
        -4,
        "arithmetic"
    );
}

#[test]
fn imul_and_irem() {
    assert_eq!(eval("  iload 0\n  iload 1\n  imul", &[7, -6]), -42);
    assert_eq!(eval("  iload 0\n  iload 1\n  irem", &[17, 5]), 2);
    assert_eq!(
        eval("  iload 0\n  iload 1\n  irem", &[-17, 5]),
        -2,
        "truncated"
    );
}

#[test]
fn if_icmpeq_branches_on_equality() {
    let body = "\
  iload 0
  iload 1
  if_icmpeq same
  iconst 0
  ireturn
same:
  iconst 1";
    assert_eq!(eval(body, &[3, 3]), 1);
    assert_eq!(eval(body, &[3, 4]), 0);
}

#[test]
fn hash_mixing_program() {
    // A small multiplicative hash written in assembly exercises several
    // new ops together; compared against the same computation in Rust.
    let body = "\
  iload 0
  iconst 31
  imul
  iload 0
  ixor
  iconst 7
  ishr
  iload 0
  ior";
    for x in [0i32, 1, -1, 12345, i32::MAX] {
        let expected = (x.wrapping_mul(31) ^ x).wrapping_shr(7) | x;
        assert_eq!(eval(body, &[x]), expected, "x = {x}");
    }
}

#[test]
fn verifier_types_new_ops() {
    // iand on a ref must be rejected.
    let src = "pool 1\nmethod main args=0 locals=0 returns {\n  aconst 0\n  iconst 1\n  iand\n  ireturn\n}\n";
    let program = assemble(src).unwrap();
    let e = verify_program(&program, VerifyOptions::default()).unwrap_err();
    assert!(e.message.contains("expected int"), "{e}");
}
