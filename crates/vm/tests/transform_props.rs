//! Differential property tests of the bytecode transformations: for any
//! *verified* program, peephole optimization and synchronization
//! stripping preserve single-threaded results exactly.

use proptest::prelude::*;

use thinlock::ThinLocks;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_vm::transform::{peephole, strip_synchronization};
use thinlock_vm::verify::{verify_program, VerifyOptions};
use thinlock_vm::{Method, MethodFlags, Op, Program, Value, Vm};

const POOL: u32 = 2;
const LOCALS: u8 = 4;

/// A stack-neutral, monitor-balanced code snippet — programs composed of
/// these verify by construction, so the properties never starve on
/// rejected inputs.
#[derive(Debug, Clone)]
enum Snippet {
    /// `local[dst] = c`
    SetConst(u8, i32),
    /// `local[dst] = local[a] <arith> local[b]` over int locals 1..LOCALS
    Arith(u8, u8, u8, u8),
    /// `iconst c; pop` / `aconst k; pop` — peephole fodder
    PushPop(i32, Option<u32>),
    /// `iconst a; iconst b; imul; istore dst` — constant-fold fodder
    FoldFodder(u8, i32, i32),
    /// `local[dst] = local[a] + local[a]` via `dup`
    DupAdd(u8, u8),
    /// `nop`
    Nop,
    /// `synchronized (pool[k]) { inner }`
    Sync(u32, Box<Snippet>),
}

impl Snippet {
    fn emit(&self, code: &mut Vec<Op>) {
        match self {
            Snippet::SetConst(dst, c) => {
                code.push(Op::IConst(*c));
                code.push(Op::IStore(*dst));
            }
            Snippet::Arith(dst, a, b, which) => {
                code.push(Op::ILoad(*a));
                code.push(Op::ILoad(*b));
                code.push(match which % 3 {
                    0 => Op::IAdd,
                    1 => Op::ISub,
                    _ => Op::IMul,
                });
                code.push(Op::IStore(*dst));
            }
            Snippet::PushPop(c, pool) => {
                match pool {
                    Some(k) => code.push(Op::AConst(*k)),
                    None => code.push(Op::IConst(*c)),
                }
                code.push(Op::Pop);
            }
            Snippet::FoldFodder(dst, a, b) => {
                code.push(Op::IConst(*a));
                code.push(Op::IConst(*b));
                code.push(Op::IMul);
                code.push(Op::IStore(*dst));
            }
            Snippet::DupAdd(dst, a) => {
                code.push(Op::ILoad(*a));
                code.push(Op::Dup);
                code.push(Op::IAdd);
                code.push(Op::IStore(*dst));
            }
            Snippet::Nop => code.push(Op::Nop),
            Snippet::Sync(k, inner) => {
                code.push(Op::AConst(*k));
                code.push(Op::MonitorEnter);
                inner.emit(code);
                code.push(Op::AConst(*k));
                code.push(Op::MonitorExit);
            }
        }
    }
}

fn arb_snippet() -> impl Strategy<Value = Snippet> {
    let local = 1u8..LOCALS;
    let leaf = prop_oneof![
        (local.clone(), -100i32..100).prop_map(|(d, c)| Snippet::SetConst(d, c)),
        (local.clone(), local.clone(), local.clone(), any::<u8>())
            .prop_map(|(d, a, b, w)| Snippet::Arith(d, a, b, w)),
        (-100i32..100, proptest::option::of(0..POOL))
            .prop_map(|(c, p)| Snippet::PushPop(c, p)),
        (local.clone(), -50i32..50, -50i32..50)
            .prop_map(|(d, a, b)| Snippet::FoldFodder(d, a, b)),
        (local.clone(), local.clone()).prop_map(|(d, a)| Snippet::DupAdd(d, a)),
        Just(Snippet::Nop),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (0..POOL, inner).prop_map(|(k, s)| Snippet::Sync(k, Box::new(s)))
    })
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_snippet(), 0..10).prop_map(|snippets| {
        let body: Vec<Op> = {
            let mut code = Vec::new();
            for s in &snippets {
                s.emit(&mut code);
            }
            code
        };
        // Template: counter loop running the random body twice, guarded by
        // a fixed prologue that seeds the locals, ending by returning
        // local 1 (defined by the prologue so it is always assigned).
        let mut code = vec![
            Op::IConst(7),
            Op::IStore(1),
            Op::IConst(3),
            Op::IStore(2),
            Op::IConst(0),
            Op::IStore(3),
        ];
        code.extend(body.iter().copied());
        code.extend(body);
        code.push(Op::ILoad(1));
        code.push(Op::IReturn);
        let mut p = Program::new(POOL);
        p.add_method(Method::new(
            "main",
            1,
            LOCALS,
            MethodFlags {
                synchronized: false,
                returns_value: true,
            },
            code,
        ));
        p
    })
}

fn run(program: &Program, arg: i32) -> Option<i32> {
    let heap = std::sync::Arc::new(thinlock_runtime::heap::Heap::with_capacity_and_fields(
        POOL as usize + 1,
        1,
    ));
    let locks = ThinLocks::new(heap, thinlock_runtime::registry::ThreadRegistry::new());
    let pool: Vec<ObjRef> = (0..POOL).map(|_| locks.heap().alloc().unwrap()).collect();
    let reg = locks.registry().register().unwrap();
    let vm = Vm::new(&locks, program, pool).unwrap();
    vm.run_with_fuel("main", reg.token(), &[Value::Int(arg)], 100_000)
        .ok()
        .and_then(|(v, _)| v)
        .and_then(Value::as_int)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Peephole-optimized programs compute the same results.
    #[test]
    fn peephole_is_semantics_preserving(program in arb_program(), arg in -5i32..5) {
        prop_assume!(verify_program(&program, VerifyOptions::default()).is_ok());
        let original = run(&program, arg);
        prop_assume!(original.is_some());
        let (optimized, _) = peephole(&program);
        prop_assert!(optimized.validate().is_ok());
        prop_assert_eq!(run(&optimized, arg), original);
    }

    /// Stripping synchronization never changes single-threaded results.
    #[test]
    fn stripping_is_semantics_preserving(program in arb_program(), arg in -5i32..5) {
        prop_assume!(verify_program(&program, VerifyOptions::default()).is_ok());
        let original = run(&program, arg);
        prop_assume!(original.is_some());
        let stripped = strip_synchronization(&program);
        prop_assert!(stripped.validate().is_ok());
        prop_assert_eq!(run(&stripped, arg), original);
    }

    /// The two transformations compose.
    #[test]
    fn transforms_compose(program in arb_program(), arg in -5i32..5) {
        prop_assume!(verify_program(&program, VerifyOptions::default()).is_ok());
        let original = run(&program, arg);
        prop_assume!(original.is_some());
        let (optimized, _) = peephole(&strip_synchronization(&program));
        prop_assert_eq!(run(&optimized, arg), original);
    }

    /// Peephole is idempotent-ish: a second pass finds nothing more on
    /// programs whose first pass already converged (single application of
    /// the local rules; folding can cascade, so run to fixpoint first).
    #[test]
    fn peephole_reaches_fixpoint(program in arb_program()) {
        prop_assume!(verify_program(&program, VerifyOptions::default()).is_ok());
        let mut current = program;
        for _ in 0..8 {
            let (next, stats) = peephole(&current);
            if stats.total_removed() == 0 {
                let (again, stats2) = peephole(&next);
                prop_assert_eq!(stats2.total_removed(), 0);
                prop_assert_eq!(again, next);
                return Ok(());
            }
            current = next;
        }
        // Cascades longer than 8 passes would indicate non-termination.
        let (_, stats) = peephole(&current);
        prop_assert_eq!(stats.total_removed(), 0, "peephole must converge");
    }
}
