//! Differential randomized tests of the bytecode transformations: for
//! any *verified* program, peephole optimization and synchronization
//! stripping preserve single-threaded results exactly. Programs are
//! built from stack-neutral snippets drawn with the in-repo PRNG, so
//! they verify by construction and the properties never starve.

use thinlock::ThinLocks;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::prng::Prng;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_vm::transform::{peephole, strip_synchronization};
use thinlock_vm::verify::{verify_program, VerifyOptions};
use thinlock_vm::{Method, MethodFlags, Op, Program, Value, Vm};

const POOL: u32 = 2;
const LOCALS: u8 = 4;
const CASES: usize = 128;

/// A stack-neutral, monitor-balanced code snippet.
#[derive(Debug, Clone)]
enum Snippet {
    /// `local[dst] = c`
    SetConst(u8, i32),
    /// `local[dst] = local[a] <arith> local[b]` over int locals 1..LOCALS
    Arith(u8, u8, u8, u8),
    /// `iconst c; pop` / `aconst k; pop` — peephole fodder
    PushPop(i32, Option<u32>),
    /// `iconst a; iconst b; imul; istore dst` — constant-fold fodder
    FoldFodder(u8, i32, i32),
    /// `local[dst] = local[a] + local[a]` via `dup`
    DupAdd(u8, u8),
    /// `nop`
    Nop,
    /// `synchronized (pool[k]) { inner }`
    Sync(u32, Box<Snippet>),
}

impl Snippet {
    fn emit(&self, code: &mut Vec<Op>) {
        match self {
            Snippet::SetConst(dst, c) => {
                code.push(Op::IConst(*c));
                code.push(Op::IStore(*dst));
            }
            Snippet::Arith(dst, a, b, which) => {
                code.push(Op::ILoad(*a));
                code.push(Op::ILoad(*b));
                code.push(match which % 3 {
                    0 => Op::IAdd,
                    1 => Op::ISub,
                    _ => Op::IMul,
                });
                code.push(Op::IStore(*dst));
            }
            Snippet::PushPop(c, pool) => {
                match pool {
                    Some(k) => code.push(Op::AConst(*k)),
                    None => code.push(Op::IConst(*c)),
                }
                code.push(Op::Pop);
            }
            Snippet::FoldFodder(dst, a, b) => {
                code.push(Op::IConst(*a));
                code.push(Op::IConst(*b));
                code.push(Op::IMul);
                code.push(Op::IStore(*dst));
            }
            Snippet::DupAdd(dst, a) => {
                code.push(Op::ILoad(*a));
                code.push(Op::Dup);
                code.push(Op::IAdd);
                code.push(Op::IStore(*dst));
            }
            Snippet::Nop => code.push(Op::Nop),
            Snippet::Sync(k, inner) => {
                code.push(Op::AConst(*k));
                code.push(Op::MonitorEnter);
                inner.emit(code);
                code.push(Op::AConst(*k));
                code.push(Op::MonitorExit);
            }
        }
    }
}

fn gen_local(rng: &mut Prng) -> u8 {
    rng.range_u32(1, u32::from(LOCALS)) as u8
}

/// Random snippet; up to `depth` levels of `Sync` nesting.
fn gen_snippet(rng: &mut Prng, depth: u32) -> Snippet {
    if depth > 0 && rng.gen_bool(0.25) {
        let k = rng.range_u32(0, POOL);
        return Snippet::Sync(k, Box::new(gen_snippet(rng, depth - 1)));
    }
    match rng.range_u32(0, 6) {
        0 => Snippet::SetConst(gen_local(rng), rng.range_i32(-100, 100)),
        1 => Snippet::Arith(
            gen_local(rng),
            gen_local(rng),
            gen_local(rng),
            rng.next_u32() as u8,
        ),
        2 => {
            let pool = if rng.gen_bool(0.5) {
                Some(rng.range_u32(0, POOL))
            } else {
                None
            };
            Snippet::PushPop(rng.range_i32(-100, 100), pool)
        }
        3 => Snippet::FoldFodder(
            gen_local(rng),
            rng.range_i32(-50, 50),
            rng.range_i32(-50, 50),
        ),
        4 => Snippet::DupAdd(gen_local(rng), gen_local(rng)),
        _ => Snippet::Nop,
    }
}

fn gen_program(rng: &mut Prng) -> Program {
    let snippets: Vec<Snippet> = (0..rng.range_usize(0, 10))
        .map(|_| gen_snippet(rng, 2))
        .collect();
    let body: Vec<Op> = {
        let mut code = Vec::new();
        for s in &snippets {
            s.emit(&mut code);
        }
        code
    };
    // Template: a fixed prologue seeds the locals, the random body runs
    // twice, and the method returns local 1 (always assigned by the
    // prologue).
    let mut code = vec![
        Op::IConst(7),
        Op::IStore(1),
        Op::IConst(3),
        Op::IStore(2),
        Op::IConst(0),
        Op::IStore(3),
    ];
    code.extend(body.iter().copied());
    code.extend(body);
    code.push(Op::ILoad(1));
    code.push(Op::IReturn);
    let mut p = Program::new(POOL);
    p.add_method(Method::new(
        "main",
        1,
        LOCALS,
        MethodFlags {
            synchronized: false,
            returns_value: true,
        },
        code,
    ));
    p
}

fn run(program: &Program, arg: i32) -> Option<i32> {
    let heap = std::sync::Arc::new(thinlock_runtime::heap::Heap::with_capacity_and_fields(
        POOL as usize + 1,
        1,
    ));
    let locks = ThinLocks::new(heap, thinlock_runtime::registry::ThreadRegistry::new());
    let pool: Vec<ObjRef> = (0..POOL).map(|_| locks.heap().alloc().unwrap()).collect();
    let reg = locks.registry().register().unwrap();
    let vm = Vm::new(&locks, program, pool).unwrap();
    vm.run_with_fuel("main", reg.token(), &[Value::Int(arg)], 100_000)
        .ok()
        .and_then(|(v, _)| v)
        .and_then(Value::as_int)
}

/// Drives `check` over `CASES` random (program, arg) pairs that verify
/// and run successfully.
fn for_valid_cases(seed: u64, mut check: impl FnMut(&Program, i32, i32)) {
    let mut rng = Prng::seed_from_u64(seed);
    let mut tested = 0usize;
    for _ in 0..CASES {
        let program = gen_program(&mut rng);
        let arg = rng.range_i32(-5, 5);
        if verify_program(&program, VerifyOptions::default()).is_err() {
            continue;
        }
        let Some(original) = run(&program, arg) else {
            continue;
        };
        tested += 1;
        check(&program, arg, original);
    }
    assert!(
        tested > CASES / 2,
        "only {tested} usable programs generated"
    );
}

/// Peephole-optimized programs compute the same results.
#[test]
fn peephole_is_semantics_preserving() {
    for_valid_cases(0x7f0e_0001, |program, arg, original| {
        let (optimized, _) = peephole(program);
        assert!(optimized.validate().is_ok());
        assert_eq!(run(&optimized, arg), Some(original));
    });
}

/// Stripping synchronization never changes single-threaded results.
#[test]
fn stripping_is_semantics_preserving() {
    for_valid_cases(0x7f0e_0002, |program, arg, original| {
        let stripped = strip_synchronization(program);
        assert!(stripped.validate().is_ok());
        assert_eq!(run(&stripped, arg), Some(original));
    });
}

/// The two transformations compose.
#[test]
fn transforms_compose() {
    for_valid_cases(0x7f0e_0003, |program, arg, original| {
        let (optimized, _) = peephole(&strip_synchronization(program));
        assert_eq!(run(&optimized, arg), Some(original));
    });
}

/// Peephole is idempotent-ish: a second pass finds nothing more on
/// programs whose first pass already converged (single application of
/// the local rules; folding can cascade, so run to fixpoint first).
#[test]
fn peephole_reaches_fixpoint() {
    let mut rng = Prng::seed_from_u64(0x7f0e_0004);
    let mut tested = 0usize;
    'cases: for _ in 0..CASES {
        let program = gen_program(&mut rng);
        if verify_program(&program, VerifyOptions::default()).is_err() {
            continue;
        }
        tested += 1;
        let mut current = program;
        for _ in 0..8 {
            let (next, stats) = peephole(&current);
            if stats.total_removed() == 0 {
                let (again, stats2) = peephole(&next);
                assert_eq!(stats2.total_removed(), 0);
                assert_eq!(again, next);
                continue 'cases;
            }
            current = next;
        }
        // Cascades longer than 8 passes would indicate non-termination.
        let (_, stats) = peephole(&current);
        assert_eq!(stats.total_removed(), 0, "peephole must converge");
    }
    assert!(tested > CASES / 2, "only {tested} valid programs generated");
}
