//! Exception semantics: `athrow`, handler dispatch, propagation through
//! frames, and — the part that matters for this reproduction — monitor
//! release on every unwind path, under every locking protocol shape.

use thinlock::ThinLocks;
use thinlock_runtime::heap::ObjRef;
use thinlock_runtime::protocol::SyncProtocol;
use thinlock_vm::asm::{assemble, disassemble};
use thinlock_vm::program::Handler;
use thinlock_vm::verify::{verify_program, VerifyOptions};
use thinlock_vm::{Method, MethodFlags, Op, Program, Value, Vm, VmError};

fn setup(pool: u32) -> (ThinLocks, Vec<ObjRef>) {
    let locks = ThinLocks::with_capacity(pool as usize + 2);
    let objs = (0..pool).map(|_| locks.heap().alloc().unwrap()).collect();
    (locks, objs)
}

fn flags(returns: bool) -> MethodFlags {
    MethodFlags {
        synchronized: false,
        returns_value: returns,
    }
}

#[test]
fn throw_caught_in_same_frame() {
    let (locks, pool) = setup(1);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(1);
    // try { throw pool[0]; unreachable } catch (e) { return 7 }
    p.add_method(
        Method::new(
            "f",
            0,
            1,
            flags(true),
            vec![
                Op::AConst(0), // 0
                Op::Throw,     // 1
                Op::IConst(0), // 2: skipped
                Op::IReturn,   // 3: skipped
                Op::AStore(0), // 4: handler — store exception
                Op::IConst(7), // 5
                Op::IReturn,   // 6
            ],
        )
        .with_handler(Handler {
            start: 0,
            end: 4,
            target: 4,
        }),
    );
    let vm = Vm::new(&locks, &p, pool).unwrap();
    let out = vm.run("f", reg.token(), &[]).unwrap();
    assert_eq!(out, Some(Value::Int(7)));
}

#[test]
fn uncaught_throw_surfaces_with_the_object() {
    let (locks, pool) = setup(1);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(1);
    p.add_method(Method::new(
        "boom",
        0,
        0,
        flags(false),
        vec![Op::AConst(0), Op::Throw],
    ));
    let vm = Vm::new(&locks, &p, pool.clone()).unwrap();
    assert_eq!(
        vm.run("boom", reg.token(), &[]).unwrap_err(),
        VmError::UncaughtException { object: pool[0] }
    );
}

#[test]
fn throw_propagates_through_caller_frames() {
    let (locks, pool) = setup(1);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(1);
    // id 0: outer catches; id 1: middle (no handler); id 2: thrower.
    p.add_method(
        Method::new(
            "outer",
            0,
            1,
            flags(true),
            vec![
                Op::Invoke(1), // 0: protected
                Op::IConst(0), // 1: skipped (middle threw)
                Op::IReturn,   // 2
                Op::AStore(0), // 3: handler
                Op::IConst(42),
                Op::IReturn,
            ],
        )
        .with_handler(Handler {
            start: 0,
            end: 3,
            target: 3,
        }),
    );
    p.add_method(Method::new(
        "middle",
        0,
        0,
        flags(false),
        vec![Op::Invoke(2), Op::Return],
    ));
    p.add_method(Method::new(
        "thrower",
        0,
        0,
        flags(false),
        vec![Op::AConst(0), Op::Throw],
    ));
    let vm = Vm::new(&locks, &p, pool).unwrap();
    let out = vm.run("outer", reg.token(), &[]).unwrap();
    assert_eq!(out, Some(Value::Int(42)));
}

#[test]
fn synchronized_method_unlocks_when_exception_escapes() {
    let (locks, pool) = setup(1);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(1);
    // synchronized void f(this) { throw this; }
    p.add_method(Method::new(
        "f",
        1,
        1,
        MethodFlags {
            synchronized: true,
            returns_value: false,
        },
        vec![Op::ALoad(0), Op::Throw],
    ));
    let vm = Vm::new(&locks, &p, pool.clone()).unwrap();
    let err = vm
        .run("f", reg.token(), &[Value::Ref(pool[0])])
        .unwrap_err();
    assert_eq!(err, VmError::UncaughtException { object: pool[0] });
    assert!(
        locks.lock_word(pool[0]).is_unlocked(),
        "ACC_SYNCHRONIZED released on unwind"
    );
}

#[test]
fn javac_style_synchronized_block_with_exception_cleanup() {
    // The pattern javac emits for `synchronized (o) { body }`:
    // the protected region is covered by a handler that performs
    // monitorexit and rethrows.
    let (locks, pool) = setup(2);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(2);
    p.add_method(
        Method::new(
            "f",
            1,
            2,
            flags(true),
            vec![
                Op::AConst(0),    // 0: monitor object
                Op::MonitorEnter, // 1
                Op::ILoad(0),     // 2: protected body: if arg != 0 throw
                Op::IfEq(7),      // 3
                Op::AConst(1),    // 4: the "exception"
                Op::Throw,        // 5
                Op::Nop,          // 6
                Op::AConst(0),    // 7: normal exit: monitorexit
                Op::MonitorExit,  // 8
                Op::IConst(1),    // 9
                Op::IReturn,      // 10
                Op::AStore(1),    // 11: handler: save exception
                Op::AConst(0),    // 12
                Op::MonitorExit,  // 13: release the monitor
                Op::ALoad(1),     // 14
                Op::Throw,        // 15: rethrow
            ],
        )
        .with_handler(Handler {
            start: 2,
            end: 7,
            target: 11,
        }),
    );
    let vm = Vm::new(&locks, &p, pool.clone()).unwrap();

    // Normal path.
    let out = vm.run("f", reg.token(), &[Value::Int(0)]).unwrap();
    assert_eq!(out, Some(Value::Int(1)));
    assert!(locks.lock_word(pool[0]).is_unlocked());

    // Exceptional path: the handler's monitorexit must run before the
    // rethrow escapes.
    let err = vm.run("f", reg.token(), &[Value::Int(1)]).unwrap_err();
    assert_eq!(err, VmError::UncaughtException { object: pool[1] });
    assert!(
        locks.lock_word(pool[0]).is_unlocked(),
        "handler released the monitor before rethrowing"
    );
}

#[test]
fn handler_clears_operand_stack() {
    let (locks, pool) = setup(1);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(1);
    // Leave junk on the stack, then throw; handler must see only the
    // exception object (it stores it and returns an int constant).
    p.add_method(
        Method::new(
            "f",
            0,
            1,
            flags(true),
            vec![
                Op::IConst(1), // 0: junk
                Op::IConst(2), // 1: junk
                Op::AConst(0), // 2
                Op::Throw,     // 3
                Op::AStore(0), // 4: handler; succeeds only if top is a ref
                Op::IConst(9), // 5
                Op::IReturn,   // 6
            ],
        )
        .with_handler(Handler {
            start: 0,
            end: 4,
            target: 4,
        }),
    );
    let vm = Vm::new(&locks, &p, pool).unwrap();
    assert_eq!(vm.run("f", reg.token(), &[]).unwrap(), Some(Value::Int(9)));
}

#[test]
fn throwing_null_is_an_error_not_an_exception() {
    let (locks, _) = setup(0);
    let reg = locks.registry().register().unwrap();
    let mut p = Program::new(0);
    p.add_method(Method::new(
        "f",
        0,
        1,
        flags(false),
        vec![Op::ALoad(0), Op::Throw],
    ));
    let vm = Vm::new(&locks, &p, vec![]).unwrap();
    assert_eq!(
        vm.run("f", reg.token(), &[]).unwrap_err(),
        VmError::NullMonitor { pc: 1 }
    );
}

#[test]
fn asm_round_trips_handlers_and_athrow() {
    let src = "\
pool 1
method f args=0 locals=1 returns {
try_start:
  aconst 0
  athrow
try_end:
  astore 0
  iconst 3
  ireturn
  .catch try_start try_end try_end
}
";
    let p = assemble(src).unwrap();
    let m = p.method(0).unwrap();
    assert_eq!(m.handlers().len(), 1);
    assert_eq!(
        m.handlers()[0],
        Handler {
            start: 0,
            end: 2,
            target: 2
        }
    );
    assert!(m.code().contains(&Op::Throw));
    // Round trip.
    let text = disassemble(&p);
    assert!(text.contains(".catch"));
    assert_eq!(assemble(&text).unwrap(), p);
    // And it runs.
    let (locks, pool) = setup(1);
    let reg = locks.registry().register().unwrap();
    let vm = Vm::new(&locks, &p, pool).unwrap();
    assert_eq!(vm.run("f", reg.token(), &[]).unwrap(), Some(Value::Int(3)));
}

#[test]
fn verifier_accepts_handler_code_and_checks_it() {
    let mut p = Program::new(1);
    p.add_method(
        Method::new(
            "good",
            0,
            1,
            flags(true),
            vec![
                Op::AConst(0),
                Op::Throw,
                Op::AStore(0), // 2: handler stores the ref
                Op::IConst(1),
                Op::IReturn,
            ],
        )
        .with_handler(Handler {
            start: 0,
            end: 2,
            target: 2,
        }),
    );
    verify_program(&p, VerifyOptions::default()).unwrap();

    // A handler that treats the exception as an int must be rejected.
    let mut bad = Program::new(1);
    bad.add_method(
        Method::new(
            "bad",
            0,
            1,
            flags(true),
            vec![
                Op::AConst(0),
                Op::Throw,
                Op::IStore(0), // 2: handler misuses the ref as int
                Op::IConst(1),
                Op::IReturn,
            ],
        )
        .with_handler(Handler {
            start: 0,
            end: 2,
            target: 2,
        }),
    );
    let e = verify_program(&bad, VerifyOptions::default()).unwrap_err();
    assert!(e.message.contains("expected int"), "{e}");
}

#[test]
fn validation_rejects_malformed_handler_tables() {
    let make = |h: Handler| {
        let mut p = Program::new(0);
        p.add_method(Method::new("m", 0, 0, flags(false), vec![Op::Return]).with_handler(h));
        p.validate()
    };
    assert!(make(Handler {
        start: 0,
        end: 0,
        target: 0
    })
    .is_err());
    assert!(make(Handler {
        start: 0,
        end: 5,
        target: 0
    })
    .is_err());
    assert!(make(Handler {
        start: 0,
        end: 1,
        target: 9
    })
    .is_err());
    assert!(make(Handler {
        start: 0,
        end: 1,
        target: 0
    })
    .is_ok());
}
