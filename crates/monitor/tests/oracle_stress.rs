//! Differential stress tests: our fat monitor against a `parking_lot`
//! oracle under randomized multi-threaded schedules. `parking_lot` is used
//! *only* here, as an independent reference implementation — never inside
//! the reproduction itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use thinlock_monitor::FatLock;
use thinlock_runtime::registry::ThreadRegistry;

/// Shared scenario: several threads perform a random mix of plain
/// critical sections and condition-variable handoffs; the same schedule
/// (same seeds) is executed against the oracle and results compared.
struct Totals {
    increments: AtomicU64,
    handoffs: AtomicU64,
}

fn run_ours(threads: usize, per_thread: u32, seed: u64) -> (u64, u64) {
    let lock = Arc::new(FatLock::new());
    let registry = ThreadRegistry::new();
    let totals = Arc::new(Totals {
        increments: AtomicU64::new(0),
        handoffs: AtomicU64::new(0),
    });
    let pending = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for who in 0..threads {
            let lock = Arc::clone(&lock);
            let registry = registry.clone();
            let totals = Arc::clone(&totals);
            let pending = Arc::clone(&pending);
            scope.spawn(move || {
                let reg = registry.register().unwrap();
                let t = reg.token();
                let mut rng = StdRng::seed_from_u64(seed ^ who as u64);
                for _ in 0..per_thread {
                    match rng.gen_range(0..10u8) {
                        // Plain critical section, sometimes nested.
                        0..=6 => {
                            let depth = rng.gen_range(1..=3);
                            for _ in 0..depth {
                                lock.lock(t, &registry).unwrap();
                            }
                            totals.increments.fetch_add(1, Ordering::Relaxed);
                            for _ in 0..depth {
                                lock.unlock(t, &registry).unwrap();
                            }
                        }
                        // Producer: post a token and notify.
                        7..=8 => {
                            lock.lock(t, &registry).unwrap();
                            pending.fetch_add(1, Ordering::Relaxed);
                            lock.notify(t).unwrap();
                            lock.unlock(t, &registry).unwrap();
                        }
                        // Consumer: timed wait for a token.
                        _ => {
                            lock.lock(t, &registry).unwrap();
                            let mut got = false;
                            for _ in 0..3 {
                                if pending.load(Ordering::Relaxed) > 0 {
                                    pending.fetch_sub(1, Ordering::Relaxed);
                                    got = true;
                                    break;
                                }
                                let _ = lock
                                    .wait(t, &registry, Some(Duration::from_millis(1)))
                                    .unwrap();
                            }
                            if got {
                                totals.handoffs.fetch_add(1, Ordering::Relaxed);
                            }
                            lock.unlock(t, &registry).unwrap();
                        }
                    }
                }
            });
        }
    });
    assert_eq!(lock.owner(), None, "monitor fully released at end");
    assert_eq!(lock.entry_queue_len(), 0);
    (
        totals.increments.load(Ordering::Relaxed),
        totals.handoffs.load(Ordering::Relaxed),
    )
}

fn run_oracle(threads: usize, per_thread: u32, seed: u64) -> u64 {
    // The oracle checks only the deterministic part of the schedule: the
    // number of plain critical sections is a pure function of the RNG
    // streams, independent of interleaving.
    let lock = Arc::new(parking_lot::ReentrantMutex::new(()));
    let count = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        for who in 0..threads {
            let lock = Arc::clone(&lock);
            let count = Arc::clone(&count);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ who as u64);
                for _ in 0..per_thread {
                    // Producer and consumer branches draw nothing further
                    // from the RNG in either implementation.
                    if let 0..=6 = rng.gen_range(0..10u8) {
                        let depth = rng.gen_range(1..=3);
                        let mut guards = Vec::new();
                        for _ in 0..depth {
                            guards.push(lock.lock());
                        }
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    count.load(Ordering::Relaxed)
}

#[test]
fn randomized_stress_matches_oracle_counts() {
    for seed in [1u64, 99, 12345] {
        let (increments, handoffs) = run_ours(4, 150, seed);
        let oracle = run_oracle(4, 150, seed);
        assert_eq!(
            increments, oracle,
            "seed {seed}: critical-section count must match the oracle"
        );
        // Handoffs are schedule-dependent but bounded by producer posts.
        assert!(handoffs <= 4 * 150);
    }
}

#[test]
fn heavy_reentrancy_stress() {
    let lock = Arc::new(FatLock::new());
    let registry = ThreadRegistry::new();
    std::thread::scope(|scope| {
        for who in 0..3usize {
            let lock = Arc::clone(&lock);
            let registry = registry.clone();
            scope.spawn(move || {
                let reg = registry.register().unwrap();
                let t = reg.token();
                let mut rng = StdRng::seed_from_u64(who as u64);
                for _ in 0..300 {
                    let depth = rng.gen_range(1..=16);
                    for _ in 0..depth {
                        lock.lock(t, &registry).unwrap();
                    }
                    assert_eq!(lock.count(), depth);
                    assert!(lock.holds(t));
                    for _ in 0..depth {
                        lock.unlock(t, &registry).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(lock.owner(), None);
}

#[test]
fn release_all_under_contention_restores_consistency() {
    let lock = Arc::new(FatLock::new());
    let registry = ThreadRegistry::new();
    std::thread::scope(|scope| {
        for who in 0..3usize {
            let lock = Arc::clone(&lock);
            let registry = registry.clone();
            scope.spawn(move || {
                let reg = registry.register().unwrap();
                let t = reg.token();
                for i in 0..200 {
                    let depth = (who + i) % 5 + 1;
                    for _ in 0..depth {
                        lock.lock(t, &registry).unwrap();
                    }
                    let released = lock.release_all(t, &registry).unwrap();
                    assert_eq!(released as usize, depth);
                }
            });
        }
    });
    assert_eq!(lock.owner(), None);
    assert_eq!(lock.entry_queue_len(), 0);
    assert_eq!(lock.wait_set_len(), 0);
}
