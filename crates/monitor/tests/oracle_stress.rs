//! Differential stress tests: our fat monitor under randomized
//! multi-threaded schedules, checked against two independent oracles —
//! a pure single-threaded replay of the same PRNG streams (the
//! critical-section count is a pure function of the seeds, independent
//! of interleaving) and a `std::sync::Mutex`-guarded counter executing
//! the identical schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use thinlock_monitor::FatLock;
use thinlock_runtime::prng::Prng;
use thinlock_runtime::registry::ThreadRegistry;

/// Shared scenario: several threads perform a random mix of plain
/// critical sections and condition-variable handoffs; the same schedule
/// (same seeds) is executed against the oracles and results compared.
struct Totals {
    increments: AtomicU64,
    handoffs: AtomicU64,
}

fn run_ours(threads: usize, per_thread: u32, seed: u64) -> (u64, u64) {
    let lock = Arc::new(FatLock::new());
    let registry = ThreadRegistry::new();
    let totals = Arc::new(Totals {
        increments: AtomicU64::new(0),
        handoffs: AtomicU64::new(0),
    });
    let pending = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for who in 0..threads {
            let lock = Arc::clone(&lock);
            let registry = registry.clone();
            let totals = Arc::clone(&totals);
            let pending = Arc::clone(&pending);
            scope.spawn(move || {
                let reg = registry.register().unwrap();
                let t = reg.token();
                let mut rng = Prng::seed_from_u64(seed ^ who as u64);
                for _ in 0..per_thread {
                    match rng.range_u32(0, 10) {
                        // Plain critical section, sometimes nested.
                        0..=6 => {
                            let depth = rng.range_u32(1, 4);
                            for _ in 0..depth {
                                lock.lock(t, &registry).unwrap();
                            }
                            totals.increments.fetch_add(1, Ordering::Relaxed);
                            for _ in 0..depth {
                                lock.unlock(t, &registry).unwrap();
                            }
                        }
                        // Producer: post a token and notify.
                        7..=8 => {
                            lock.lock(t, &registry).unwrap();
                            pending.fetch_add(1, Ordering::Relaxed);
                            lock.notify(t).unwrap();
                            lock.unlock(t, &registry).unwrap();
                        }
                        // Consumer: timed wait for a token.
                        _ => {
                            lock.lock(t, &registry).unwrap();
                            let mut got = false;
                            for _ in 0..3 {
                                if pending.load(Ordering::Relaxed) > 0 {
                                    pending.fetch_sub(1, Ordering::Relaxed);
                                    got = true;
                                    break;
                                }
                                let _ = lock
                                    .wait(t, &registry, Some(Duration::from_millis(1)))
                                    .unwrap();
                            }
                            if got {
                                totals.handoffs.fetch_add(1, Ordering::Relaxed);
                            }
                            lock.unlock(t, &registry).unwrap();
                        }
                    }
                }
            });
        }
    });
    assert_eq!(lock.owner(), None, "monitor fully released at end");
    assert_eq!(lock.entry_queue_len(), 0);
    (
        totals.increments.load(Ordering::Relaxed),
        totals.handoffs.load(Ordering::Relaxed),
    )
}

/// Pure replay oracle: the number of plain critical sections is a pure
/// function of the RNG streams, independent of interleaving, so it can
/// be computed without running any threads at all.
fn replay_oracle(threads: usize, per_thread: u32, seed: u64) -> u64 {
    let mut count = 0u64;
    for who in 0..threads {
        let mut rng = Prng::seed_from_u64(seed ^ who as u64);
        for _ in 0..per_thread {
            // Producer and consumer branches draw nothing further from
            // the RNG in the real run either.
            if let 0..=6 = rng.range_u32(0, 10) {
                let _depth = rng.range_u32(1, 4);
                count += 1;
            }
        }
    }
    count
}

/// Concurrent reference oracle: the identical schedule against a plain
/// `std::sync::Mutex` counter (no reentrancy, so nesting collapses to a
/// single hold), checking that real threads draw the same streams.
fn run_mutex_oracle(threads: usize, per_thread: u32, seed: u64) -> u64 {
    let count = Arc::new(Mutex::new(0u64));
    std::thread::scope(|scope| {
        for who in 0..threads {
            let count = Arc::clone(&count);
            scope.spawn(move || {
                let mut rng = Prng::seed_from_u64(seed ^ who as u64);
                for _ in 0..per_thread {
                    if let 0..=6 = rng.range_u32(0, 10) {
                        let _depth = rng.range_u32(1, 4);
                        *count.lock().unwrap() += 1;
                    }
                }
            });
        }
    });
    let n = *count.lock().unwrap();
    n
}

#[test]
fn randomized_stress_matches_oracle_counts() {
    for seed in [1u64, 99, 12345] {
        let (increments, handoffs) = run_ours(4, 150, seed);
        let replay = replay_oracle(4, 150, seed);
        let mutex = run_mutex_oracle(4, 150, seed);
        assert_eq!(
            increments, replay,
            "seed {seed}: critical-section count must match the pure replay"
        );
        assert_eq!(
            mutex, replay,
            "seed {seed}: mutex oracle must agree with the pure replay"
        );
        // Handoffs are schedule-dependent but bounded by producer posts.
        assert!(handoffs <= 4 * 150);
    }
}

#[test]
fn heavy_reentrancy_stress() {
    let lock = Arc::new(FatLock::new());
    let registry = ThreadRegistry::new();
    std::thread::scope(|scope| {
        for who in 0..3usize {
            let lock = Arc::clone(&lock);
            let registry = registry.clone();
            scope.spawn(move || {
                let reg = registry.register().unwrap();
                let t = reg.token();
                let mut rng = Prng::seed_from_u64(who as u64);
                for _ in 0..300 {
                    let depth = rng.range_u32(1, 17);
                    for _ in 0..depth {
                        lock.lock(t, &registry).unwrap();
                    }
                    assert_eq!(lock.count(), depth);
                    assert!(lock.holds(t));
                    for _ in 0..depth {
                        lock.unlock(t, &registry).unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(lock.owner(), None);
}

#[test]
fn release_all_under_contention_restores_consistency() {
    let lock = Arc::new(FatLock::new());
    let registry = ThreadRegistry::new();
    std::thread::scope(|scope| {
        for who in 0..3usize {
            let lock = Arc::clone(&lock);
            let registry = registry.clone();
            scope.spawn(move || {
                let reg = registry.register().unwrap();
                let t = reg.token();
                for i in 0..200 {
                    let depth = (who + i) % 5 + 1;
                    for _ in 0..depth {
                        lock.lock(t, &registry).unwrap();
                    }
                    let released = lock.release_all(t, &registry).unwrap();
                    assert_eq!(released as usize, depth);
                }
            });
        }
    });
    assert_eq!(lock.owner(), None);
    assert_eq!(lock.entry_queue_len(), 0);
    assert_eq!(lock.wait_set_len(), 0);
}
