//! Heavyweight ("fat") monitor subsystem.
//!
//! Section 2.1 of the paper assumes "a pre-existing heavy-weight system in
//! place to support the full range of Java synchronization semantics,
//! including queuing of unsatisfied lock requests, and the wait, notify,
//! and notifyAll operations. Such a system will represent a monitor as a
//! multi-word structure which includes space for a thread pointer, a
//! nested lock count, and the necessary queues. We refer to such
//! multi-word lock objects as *fat locks*."
//!
//! This crate is that system, built from scratch on the runtime crate's
//! per-thread [`Parker`](thinlock_runtime::registry::Parker):
//!
//! * [`fatlock::FatLock`] — owner + nested count + FIFO entry queue + wait
//!   set, with Java/Mesa monitor semantics (`notify` moves a waiter to the
//!   entry queue; it runs only once the monitor is released).
//! * [`table::MonitorTable`] — the vector mapping 23-bit monitor indices to
//!   fat locks, sized so every heap object can inflate at most once, with
//!   wait-free lookups ("the fat lock pointer is simply obtained by
//!   shifting the monitor index to the right and indexing into the vector",
//!   Section 3.3).
//! * [`pool::MonitorPool`] — the recycling sibling of the table for
//!   *deflating* backends (Compact Java Monitors): same wait-free lookup,
//!   but slots return to a free list when their monitor deflates, so a
//!   bounded pool serves unbounded churn (BACKENDS.md).
//!
//! Thin locks (the `thinlock` crate) are "implemented as a veneer over the
//! existing heavy-weight locking facilities" — i.e., over this crate. The
//! baselines reuse it too, so all three protocols share identical
//! heavyweight semantics and the benchmarks compare only their fast paths.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod fatlock;
pub mod pool;
pub mod table;

pub use fatlock::FatLock;
pub use pool::MonitorPool;
pub use table::MonitorTable;
