//! The fat lock: the paper's multi-word heavyweight monitor.
//!
//! A [`FatLock`] holds the owning thread index, a nested lock count, a FIFO
//! *entry queue* of threads blocked trying to acquire, and a *wait set* of
//! threads parked inside `wait`. Semantics are Java's (derived from Mesa):
//!
//! * acquisition is re-entrant per owning thread;
//! * `notify` moves a waiter from the wait set to the entry queue without
//!   waking it immediately — it will run after the monitor is released
//!   (signal-and-continue);
//! * `wait(timeout)` re-acquires the monitor to its previous nesting depth
//!   before returning, even when it returns by timeout or interruption.
//!
//! Internally a small `std::sync::Mutex` guards the monitor bookkeeping —
//! an accurate stand-in for the pthread mutex + kernel support that backed
//! the JDK's fat locks on AIX — while blocked threads park on the
//! per-thread [`Parker`](thinlock_runtime::registry::Parker) from the
//! thread registry. Unparks can therefore never be lost (a permit persists
//! until consumed) and stale permits only cost one loop iteration.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use thinlock_runtime::error::{SyncError, SyncResult};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::lockword::ThreadIndex;
use thinlock_runtime::protocol::WaitOutcome;
use thinlock_runtime::registry::{ThreadRegistry, ThreadToken};
use thinlock_runtime::schedule::{SchedAction, SchedPoint, Schedule};

/// Shared flag linking a waiting thread to its wait-set entry, so `notify`
/// can mark it delivered after the entry has moved queues.
#[derive(Debug, Default)]
struct WaitFlag {
    notified: AtomicBool,
}

#[derive(Debug)]
struct WaitEntry {
    thread: ThreadIndex,
    flag: Arc<WaitFlag>,
}

#[derive(Debug, Default)]
struct Inner {
    owner: Option<ThreadIndex>,
    count: u32,
    entry_queue: VecDeque<ThreadIndex>,
    wait_set: VecDeque<WaitEntry>,
}

impl Inner {
    fn enqueue_entry_back(&mut self, t: ThreadIndex) {
        if !self.entry_queue.contains(&t) {
            self.entry_queue.push_back(t);
        }
    }

    fn enqueue_entry_front(&mut self, t: ThreadIndex) {
        if !self.entry_queue.contains(&t) {
            self.entry_queue.push_front(t);
        }
    }

    fn remove_from_entry(&mut self, t: ThreadIndex) {
        self.entry_queue.retain(|&x| x != t);
    }

    /// Next thread to wake when the monitor becomes free.
    fn front_of_entry(&self) -> Option<ThreadIndex> {
        self.entry_queue.front().copied()
    }
}

/// The heavyweight monitor structure of Section 2.1 / Figure 2(b).
///
/// # Example
///
/// ```
/// use thinlock_monitor::FatLock;
/// use thinlock_runtime::registry::ThreadRegistry;
///
/// let registry = ThreadRegistry::new();
/// let me = registry.register()?;
/// let lock = FatLock::new();
/// lock.lock(me.token(), &registry)?;
/// assert!(lock.holds(me.token()));
/// lock.unlock(me.token(), &registry)?;
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
#[derive(Default)]
pub struct FatLock {
    inner: Mutex<Inner>,
    injector: OnceLock<Arc<dyn FaultInjector>>,
    schedule: OnceLock<Arc<dyn Schedule>>,
}

impl fmt::Debug for FatLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FatLock")
            .field("inner", &self.inner)
            .field("injector", &self.injector.get().is_some())
            .field("schedule", &self.schedule.get().is_some())
            .finish()
    }
}

impl FatLock {
    /// Creates an unowned fat lock.
    pub fn new() -> Self {
        FatLock::default()
    }

    /// Creates a fat lock already owned `count` times by `owner` — the
    /// inflation constructor. When a thin lock is inflated, its owner and
    /// nested count transfer directly into the new monitor (the fat count
    /// is the number of locks, *not* locks − 1 as in the thin encoding).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero (an unowned monitor must use [`new`]).
    ///
    /// [`new`]: FatLock::new
    pub fn new_owned(owner: ThreadToken, count: u32) -> Self {
        assert!(count > 0, "owned monitor needs a positive count");
        FatLock {
            inner: Mutex::new(Inner {
                owner: Some(owner.index()),
                count,
                entry_queue: VecDeque::new(),
                wait_set: VecDeque::new(),
            }),
            injector: OnceLock::new(),
            schedule: OnceLock::new(),
        }
    }

    /// Attaches a fault injector consulted before every park
    /// ([`InjectionPoint::FatPark`] / [`InjectionPoint::WaitPark`]) and on
    /// entry to the acquire loop ([`InjectionPoint::FatAcquire`]).
    /// Write-once: the first installed injector wins. The monitor table
    /// stamps its own injector into every fat lock it publishes.
    pub fn set_fault_injector(&self, injector: Arc<dyn FaultInjector>) {
        let _ = self.injector.set(injector);
    }

    #[inline]
    fn inject(&self, point: InjectionPoint) -> FaultAction {
        match self.injector.get() {
            None => FaultAction::Proceed,
            Some(i) => i.decide(point),
        }
    }

    /// Attaches a cooperative schedule consulted before every park
    /// ([`SchedPoint::FatPark`] / [`SchedPoint::WaitPark`]), so a model
    /// checker can hold the thread at the point instead of letting it
    /// sleep. Write-once: the first installed schedule wins. The monitor
    /// table stamps its own schedule into every fat lock it publishes.
    ///
    /// Both park points sit *outside* the monitor's internal mutex, so a
    /// thread blocked inside [`Schedule::reached`] never wedges other
    /// threads touching this monitor.
    pub fn set_schedule(&self, schedule: Arc<dyn Schedule>) {
        let _ = self.schedule.set(schedule);
    }

    #[inline]
    fn reach(&self, point: SchedPoint) -> SchedAction {
        match self.schedule.get() {
            None => SchedAction::Proceed,
            Some(s) => s.reached(point, None),
        }
    }

    /// True if `t` is in the wait set — parked in `wait` and not yet
    /// moved to the entry queue by a `notify`. Model checkers use this
    /// to decide whether a thread blocked at a wait park can make
    /// progress when resumed.
    pub fn is_waiting(&self, t: ThreadToken) -> bool {
        let me = t.index();
        self.lock_inner().wait_set.iter().any(|e| e.thread == me)
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Recover from poisoning rather than propagating it: the monitor
        // bookkeeping is updated in small all-or-nothing critical sections,
        // so a thread that panicked while holding the inner mutex left it
        // consistent; cascading the panic into every other thread touching
        // this monitor would turn one failed test thread into a wedged
        // monitor table.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the monitor once for `t`, re-entrantly; blocks by parking
    /// while another thread owns it.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::StaleThreadToken`] if `t` is not registered
    /// with `registry` (the parker lookup fails).
    pub fn lock(&self, t: ThreadToken, registry: &ThreadRegistry) -> SyncResult<()> {
        self.lock_n(t, 1, registry)
    }

    /// Acquires the monitor and sets the nested count to `n` in one step;
    /// used by `wait` to restore its saved depth and by lock inflation.
    ///
    /// # Errors
    ///
    /// Returns [`SyncError::StaleThreadToken`] if `t` is not registered.
    pub fn lock_n(&self, t: ThreadToken, n: u32, registry: &ThreadRegistry) -> SyncResult<()> {
        debug_assert!(n > 0);
        let me = t.index();
        // Resolve the parker up front so a stale token fails fast rather
        // than after mutating the queues.
        let record = registry.record(me)?;
        if self.inject(InjectionPoint::FatAcquire) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let mut first_block = true;
        loop {
            {
                let mut inner = self.lock_inner();
                match inner.owner {
                    None => {
                        inner.owner = Some(me);
                        inner.count = n;
                        inner.remove_from_entry(me);
                        return Ok(());
                    }
                    Some(owner) if owner == me => {
                        inner.count += n;
                        return Ok(());
                    }
                    Some(_) => {
                        // FIFO on first arrival; a thread that was woken
                        // but lost the race to a barger goes back to the
                        // front so it cannot starve behind newcomers.
                        if first_block {
                            inner.enqueue_entry_back(me);
                            first_block = false;
                        } else {
                            inner.enqueue_entry_front(me);
                        }
                    }
                }
            }
            // A serializing scheduler holds the thread here and answers
            // SkipPark when it is resumed — the park never happens, and
            // the re-looped acquire attempt is the thread's next step.
            if self.reach(SchedPoint::FatPark) == SchedAction::SkipPark {
                continue;
            }
            match self.inject(InjectionPoint::FatPark) {
                // A spurious wakeup is a park that returns with nothing to
                // show for it; skipping the park entirely is the same
                // observable behavior, and drives the woken-but-lost-race
                // requeue-to-front path above.
                FaultAction::SpuriousWake => {}
                FaultAction::Yield => {
                    std::thread::yield_now();
                    record.parker().park();
                }
                _ => record.parker().park(),
            }
        }
    }

    /// The non-blocking half of [`lock`](FatLock::lock): acquires if the
    /// monitor is unowned or already owned by `t`, returning the
    /// resulting nested depth, or `None` if another thread owns it (the
    /// caller must fall back to the parking path).
    ///
    /// One critical section, no registry lookup — this is the fat-lock
    /// fast path of Section 2.3 ("index into the vector"), where the
    /// paper's design only wins over the JDK monitor cache if an
    /// inflated acquisition stays a handful of instructions. Token
    /// validation is deferred to the parking path, exactly as the thin
    /// fast path defers it to inflation.
    #[inline]
    pub fn lock_uncontended(&self, t: ThreadToken) -> Option<u32> {
        if self.inject(InjectionPoint::FatAcquire) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let me = t.index();
        let mut inner = self.lock_inner();
        match inner.owner {
            None => {
                inner.owner = Some(me);
                inner.count = 1;
                inner.remove_from_entry(me);
                Some(1)
            }
            Some(owner) if owner == me => {
                inner.count += 1;
                Some(inner.count)
            }
            Some(_) => None,
        }
    }

    /// Attempts to acquire the monitor once for `t` without blocking.
    ///
    /// Returns `true` on success (including re-entrant acquisition),
    /// `false` if another thread owns the monitor. Never touches the
    /// entry queue, so a failed attempt leaves no trace.
    pub fn try_lock(&self, t: ThreadToken) -> bool {
        let me = t.index();
        let mut inner = self.lock_inner();
        match inner.owner {
            None => {
                inner.owner = Some(me);
                inner.count = 1;
                inner.remove_from_entry(me);
                true
            }
            Some(owner) if owner == me => {
                inner.count += 1;
                true
            }
            Some(_) => false,
        }
    }

    /// Like [`lock_n`](FatLock::lock_n) but gives up once `deadline`
    /// passes, returning [`SyncError::Timeout`] with the monitor unheld
    /// and the caller removed from the entry queue.
    ///
    /// Acquisition is preferred over punctuality: the deadline is only
    /// checked after a failed attempt, so a monitor that frees up at the
    /// last instant is still taken.
    ///
    /// # Errors
    ///
    /// [`SyncError::Timeout`] past the deadline;
    /// [`SyncError::StaleThreadToken`] if `t` is not registered.
    pub fn lock_n_deadline(
        &self,
        t: ThreadToken,
        n: u32,
        registry: &ThreadRegistry,
        deadline: Instant,
    ) -> SyncResult<()> {
        debug_assert!(n > 0);
        let me = t.index();
        let record = registry.record(me)?;
        if self.inject(InjectionPoint::FatAcquire) == FaultAction::Yield {
            std::thread::yield_now();
        }
        let mut first_block = true;
        loop {
            {
                let mut inner = self.lock_inner();
                match inner.owner {
                    None => {
                        inner.owner = Some(me);
                        inner.count = n;
                        inner.remove_from_entry(me);
                        return Ok(());
                    }
                    Some(owner) if owner == me => {
                        inner.count += n;
                        return Ok(());
                    }
                    Some(_) => {
                        if first_block {
                            inner.enqueue_entry_back(me);
                            first_block = false;
                        } else {
                            inner.enqueue_entry_front(me);
                        }
                    }
                }
            }
            let Some(remaining) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                return self.abandon_entry(me, registry);
            };
            match self.inject(InjectionPoint::FatPark) {
                FaultAction::SpuriousWake => {}
                FaultAction::Yield => {
                    std::thread::yield_now();
                    record.parker().park_timeout(remaining);
                }
                _ => {
                    record.parker().park_timeout(remaining);
                }
            }
        }
    }

    /// Removes a timed-out acquirer from the entry queue. If the monitor
    /// was released and the unlocker's wake went to *us* (we were the
    /// front), that wake must be handed to the new front, or the threads
    /// still queued behind us would sleep forever.
    fn abandon_entry(&self, me: ThreadIndex, registry: &ThreadRegistry) -> SyncResult<()> {
        let wake = {
            let mut inner = self.lock_inner();
            inner.remove_from_entry(me);
            if inner.owner.is_none() {
                inner.front_of_entry()
            } else {
                None
            }
        };
        if let Some(next) = wake {
            if let Ok(rec) = registry.record(next) {
                rec.parker().unpark();
            }
        }
        Err(SyncError::Timeout)
    }

    /// Force-releases everything a dead (deregistered) thread left behind
    /// in this monitor: its entry-queue and wait-set entries are purged,
    /// and if it still owned the monitor the ownership is cleared and the
    /// next queued thread woken. Returns `true` if ownership was
    /// reclaimed.
    ///
    /// Called by the registry exit sweep while `dead`'s index is in limbo
    /// (slot cleared, not yet recyclable), so no live thread can hold it.
    pub fn reclaim_orphan(&self, dead: ThreadIndex, registry: &ThreadRegistry) -> bool {
        let (reclaimed, wake) = {
            let mut inner = self.lock_inner();
            inner.remove_from_entry(dead);
            inner.wait_set.retain(|e| e.thread != dead);
            if inner.owner == Some(dead) {
                inner.owner = None;
                inner.count = 0;
                (true, inner.front_of_entry())
            } else {
                (false, None)
            }
        };
        if let Some(next) = wake {
            if let Ok(rec) = registry.record(next) {
                rec.parker().unpark();
            }
        }
        reclaimed
    }

    /// Releases one nesting level of the monitor.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] if another thread owns the monitor;
    /// [`SyncError::NotLocked`] if nobody does.
    pub fn unlock(&self, t: ThreadToken, registry: &ThreadRegistry) -> SyncResult<()> {
        let me = t.index();
        let wake = {
            let mut inner = self.lock_inner();
            match inner.owner {
                Some(owner) if owner == me => {
                    inner.count -= 1;
                    if inner.count == 0 {
                        inner.owner = None;
                        inner.front_of_entry()
                    } else {
                        None
                    }
                }
                Some(_) => return Err(SyncError::NotOwner),
                None => return Err(SyncError::NotLocked),
            }
        };
        if let Some(next) = wake {
            // A stale token here means the queued thread already exited;
            // its queue entry is gone with it, so just skip the wake.
            if let Ok(rec) = registry.record(next) {
                rec.parker().unpark();
            }
        }
        Ok(())
    }

    /// Releases the monitor entirely regardless of depth, returning the
    /// depth that was held. Pairs with [`lock_n`](FatLock::lock_n) inside
    /// `wait`.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] / [`SyncError::NotLocked`] as for `unlock`.
    pub fn release_all(&self, t: ThreadToken, registry: &ThreadRegistry) -> SyncResult<u32> {
        let me = t.index();
        let (depth, wake) = {
            let mut inner = self.lock_inner();
            match inner.owner {
                Some(owner) if owner == me => {
                    let depth = inner.count;
                    inner.count = 0;
                    inner.owner = None;
                    (depth, inner.front_of_entry())
                }
                Some(_) => return Err(SyncError::NotOwner),
                None => return Err(SyncError::NotLocked),
            }
        };
        if let Some(next) = wake {
            if let Ok(rec) = registry.record(next) {
                rec.parker().unpark();
            }
        }
        Ok(depth)
    }

    /// Java `Object.wait([timeout])`: atomically releases the monitor
    /// (all levels), sleeps until notified / timed out / interrupted, then
    /// re-acquires the monitor to the saved depth before returning.
    ///
    /// # Errors
    ///
    /// * [`SyncError::NotOwner`] / [`SyncError::NotLocked`] if `t` does not
    ///   own the monitor.
    /// * [`SyncError::Interrupted`] if the thread's interrupt flag was set
    ///   while waiting (the flag is consumed; the monitor is re-acquired
    ///   first, as in Java). If a notification had already moved the thread
    ///   to the entry queue, the notification wins and the interrupt flag
    ///   stays pending.
    pub fn wait(
        &self,
        t: ThreadToken,
        registry: &ThreadRegistry,
        timeout: Option<Duration>,
    ) -> SyncResult<WaitOutcome> {
        let me = t.index();
        let record = registry.record(me)?;
        let flag = Arc::new(WaitFlag::default());
        let deadline = timeout.map(|d| Instant::now() + d);

        // Enqueue on the wait set *then* release the monitor; both steps
        // under the inner mutex make enqueue-and-release atomic w.r.t. any
        // notifier (which must hold the monitor, hence cannot be between
        // our two steps).
        let saved_depth = {
            let mut inner = self.lock_inner();
            match inner.owner {
                Some(owner) if owner == me => {}
                Some(_) => return Err(SyncError::NotOwner),
                None => return Err(SyncError::NotLocked),
            }
            inner.wait_set.push_back(WaitEntry {
                thread: me,
                flag: Arc::clone(&flag),
            });
            let depth = inner.count;
            inner.count = 0;
            inner.owner = None;
            let wake = inner.front_of_entry();
            drop(inner);
            if let Some(next) = wake {
                if let Ok(rec) = registry.record(next) {
                    rec.parker().unpark();
                }
            }
            depth
        };

        // Sleep until one of the three exits fires. Stale permits and
        // spurious wakeups just re-loop.
        let outcome = loop {
            if flag.notified.load(Ordering::Acquire) {
                break WaitOutcome::Notified;
            }
            if record.take_interrupt(false) {
                // Remove ourselves from the wait set unless a notify
                // already did; the notification takes precedence. The move
                // to the entry queue happens in the same critical section:
                // a thread leaving `wait` must never be in *neither* queue,
                // or a deflating backend's quiescence snapshot could pass
                // while this thread is about to re-acquire a monitor that
                // no longer backs its object.
                let mut inner = self.lock_inner();
                if flag.notified.load(Ordering::Acquire) {
                    break WaitOutcome::Notified;
                }
                inner.wait_set.retain(|e| e.thread != me);
                inner.enqueue_entry_back(me);
                drop(inner);
                record.take_interrupt(true);
                self.lock_n(t, saved_depth, registry)?;
                return Err(SyncError::Interrupted);
            }
            match deadline {
                None => {
                    if self.reach(SchedPoint::WaitPark) == SchedAction::SkipPark {
                        continue;
                    }
                    match self.inject(InjectionPoint::WaitPark) {
                        // Same spurious-wakeup model as the entry queue: the
                        // skipped park re-runs the notified/interrupt checks,
                        // which is exactly what a real spurious wake does.
                        FaultAction::SpuriousWake => {}
                        FaultAction::Yield => {
                            std::thread::yield_now();
                            record.parker().park();
                        }
                        _ => record.parker().park(),
                    }
                }
                Some(d) => {
                    let now = Instant::now();
                    let Some(remaining) = d.checked_duration_since(now).filter(|r| !r.is_zero())
                    else {
                        let mut inner = self.lock_inner();
                        if flag.notified.load(Ordering::Acquire) {
                            break WaitOutcome::Notified;
                        }
                        // Migrate wait set → entry queue atomically (see the
                        // interrupt path above for why the single critical
                        // section matters to deflating backends).
                        inner.wait_set.retain(|e| e.thread != me);
                        inner.enqueue_entry_back(me);
                        drop(inner);
                        self.lock_n(t, saved_depth, registry)?;
                        return Ok(WaitOutcome::TimedOut);
                    };
                    match self.inject(InjectionPoint::WaitPark) {
                        FaultAction::SpuriousWake => {}
                        FaultAction::Yield => {
                            std::thread::yield_now();
                            record.parker().park_timeout(remaining);
                        }
                        _ => {
                            record.parker().park_timeout(remaining);
                        }
                    }
                }
            }
        };

        // Notified: our entry is already on the entry queue; re-acquire.
        self.lock_n(t, saved_depth, registry)?;
        Ok(outcome)
    }

    /// Java `Object.notify()`: moves one waiter (FIFO) from the wait set
    /// to the entry queue. The waiter runs only after the monitor is
    /// released.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] / [`SyncError::NotLocked`] if `t` does not
    /// own the monitor.
    pub fn notify(&self, t: ThreadToken) -> SyncResult<()> {
        let me = t.index();
        let mut inner = self.lock_inner();
        match inner.owner {
            Some(owner) if owner == me => {}
            Some(_) => return Err(SyncError::NotOwner),
            None => return Err(SyncError::NotLocked),
        }
        if let Some(entry) = inner.wait_set.pop_front() {
            entry.flag.notified.store(true, Ordering::Release);
            inner.enqueue_entry_back(entry.thread);
        }
        Ok(())
    }

    /// Java `Object.notifyAll()`: moves every waiter to the entry queue.
    ///
    /// # Errors
    ///
    /// [`SyncError::NotOwner`] / [`SyncError::NotLocked`] if `t` does not
    /// own the monitor.
    pub fn notify_all(&self, t: ThreadToken) -> SyncResult<()> {
        let me = t.index();
        let mut inner = self.lock_inner();
        match inner.owner {
            Some(owner) if owner == me => {}
            Some(_) => return Err(SyncError::NotOwner),
            None => return Err(SyncError::NotLocked),
        }
        while let Some(entry) = inner.wait_set.pop_front() {
            entry.flag.notified.store(true, Ordering::Release);
            inner.enqueue_entry_back(entry.thread);
        }
        Ok(())
    }

    /// The current owner, if any.
    #[inline]
    pub fn owner(&self) -> Option<ThreadIndex> {
        self.lock_inner().owner
    }

    /// The current nested lock count (0 when unowned). Unlike the thin
    /// encoding this is the number of locks, not locks − 1 (Figure 2).
    #[inline]
    pub fn count(&self) -> u32 {
        self.lock_inner().count
    }

    /// True if `t` owns the monitor. `#[inline]` (with [`Self::owner`]
    /// and [`Self::count`]) so ownership checks on the cross-crate fat
    /// path compile down to the underlying mutex acquire + field read.
    #[inline]
    pub fn holds(&self, t: ThreadToken) -> bool {
        self.lock_inner().owner == Some(t.index())
    }

    /// Atomically true iff `t` owns the monitor exactly once and both the
    /// entry queue and the wait set are empty — the deflation precondition
    /// of a Compact-Java-Monitors backend (BACKENDS.md), evaluated in a
    /// single critical section so all four facts hold at one instant.
    ///
    /// Three separate `count`/`entry_queue_len`/`wait_set_len` reads would
    /// not do: a timed-out waiter migrates from the wait set to the entry
    /// queue without owning the monitor, and could slip between two of the
    /// reads, letting a release deflate a monitor that still has a thread
    /// inside it. Because the migration itself is one critical section in
    /// [`wait`](FatLock::wait), and the wait set can only *grow* under
    /// ownership, a `true` snapshot taken by the owner stays deflation-safe
    /// until the owner releases: only fresh entry-queue racers can arrive,
    /// and those revalidate the lock word after acquiring.
    pub fn is_sole_quiescent_owner(&self, t: ThreadToken) -> bool {
        let inner = self.lock_inner();
        inner.owner == Some(t.index())
            && inner.count == 1
            && inner.entry_queue.is_empty()
            && inner.wait_set.is_empty()
    }

    /// Number of threads blocked on entry (diagnostics).
    pub fn entry_queue_len(&self) -> usize {
        self.lock_inner().entry_queue.len()
    }

    /// Number of threads in the wait set (diagnostics).
    pub fn wait_set_len(&self) -> usize {
        self.lock_inner().wait_set.len()
    }
}

impl fmt::Display for FatLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock_inner();
        match inner.owner {
            Some(o) => write!(
                f,
                "fat-lock(owner={o}, count={}, entryq={}, waiters={})",
                inner.count,
                inner.entry_queue.len(),
                inner.wait_set.len()
            ),
            None => write!(
                f,
                "fat-lock(free, entryq={}, waiters={})",
                inner.entry_queue.len(),
                inner.wait_set.len()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    fn setup() -> (Arc<FatLock>, ThreadRegistry) {
        (Arc::new(FatLock::new()), ThreadRegistry::new())
    }

    #[test]
    fn reentrant_lock_unlock() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        lock.lock(t, &reg).unwrap();
        assert_eq!(lock.count(), 2);
        assert!(lock.holds(t));
        lock.unlock(t, &reg).unwrap();
        assert_eq!(lock.count(), 1);
        lock.unlock(t, &reg).unwrap();
        assert_eq!(lock.owner(), None);
        assert_eq!(lock.unlock(t, &reg), Err(SyncError::NotLocked));
    }

    #[test]
    fn new_owned_transfers_thin_state() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let t = r.token();
        let lock = FatLock::new_owned(t, 3);
        assert!(lock.holds(t));
        assert_eq!(lock.count(), 3);
        for _ in 0..3 {
            lock.unlock(t, &reg).unwrap();
        }
        assert_eq!(lock.owner(), None);
    }

    #[test]
    #[should_panic(expected = "positive count")]
    fn new_owned_rejects_zero() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let _ = FatLock::new_owned(r.token(), 0);
    }

    #[test]
    fn unlock_by_non_owner_rejected() {
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        let rb = reg.register().unwrap();
        lock.lock(ra.token(), &reg).unwrap();
        assert_eq!(lock.unlock(rb.token(), &reg), Err(SyncError::NotOwner));
        assert_eq!(lock.notify(rb.token()), Err(SyncError::NotOwner));
        assert_eq!(lock.notify_all(rb.token()), Err(SyncError::NotOwner));
        lock.unlock(ra.token(), &reg).unwrap();
    }

    #[test]
    fn wait_requires_ownership() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        assert_eq!(
            lock.wait(r.token(), &reg, None).unwrap_err(),
            SyncError::NotLocked
        );
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let (lock, reg) = setup();
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut handles = Vec::new();
        const THREADS: usize = 4;
        const ITERS: u64 = 200;
        for _ in 0..THREADS {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                for _ in 0..ITERS {
                    lock.lock(t, &reg).unwrap();
                    // Non-atomic-looking RMW under the lock.
                    let v = counter.load(Ordering::Relaxed);
                    thread::yield_now();
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.unlock(t, &reg).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * ITERS);
        assert_eq!(lock.owner(), None);
        assert_eq!(lock.entry_queue_len(), 0);
    }

    #[test]
    fn wait_notify_rendezvous() {
        let (lock, reg) = setup();
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waiter = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            let flag = Arc::clone(&flag);
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                while !flag.load(Ordering::Relaxed) {
                    let out = lock.wait(t, &reg, None).unwrap();
                    assert_eq!(out, WaitOutcome::Notified);
                }
                assert!(lock.holds(t), "monitor re-acquired after wait");
                lock.unlock(t, &reg).unwrap();
                true
            })
        };
        // Give the waiter time to park.
        while lock.wait_set_len() == 0 {
            thread::yield_now();
        }
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        flag.store(true, Ordering::Relaxed);
        lock.notify(t).unwrap();
        assert_eq!(lock.wait_set_len(), 0);
        assert_eq!(lock.entry_queue_len(), 1, "waiter moved to entry queue");
        lock.unlock(t, &reg).unwrap();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn notify_all_wakes_every_waiter() {
        let (lock, reg) = setup();
        const WAITERS: usize = 3;
        let mut handles = Vec::new();
        for _ in 0..WAITERS {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            handles.push(thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                let out = lock.wait(t, &reg, None).unwrap();
                lock.unlock(t, &reg).unwrap();
                out
            }));
        }
        while lock.wait_set_len() < WAITERS {
            thread::yield_now();
        }
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        lock.notify_all(t).unwrap();
        lock.unlock(t, &reg).unwrap();
        for h in handles {
            assert_eq!(h.join().unwrap(), WaitOutcome::Notified);
        }
    }

    #[test]
    fn notify_with_empty_wait_set_is_noop() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        lock.notify(t).unwrap();
        lock.notify_all(t).unwrap();
        lock.unlock(t, &reg).unwrap();
    }

    #[test]
    fn wait_timeout_expires_and_reacquires() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        lock.lock(t, &reg).unwrap(); // depth 2
        let start = Instant::now();
        let out = lock.wait(t, &reg, Some(Duration::from_millis(40))).unwrap();
        assert_eq!(out, WaitOutcome::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(35));
        assert_eq!(lock.count(), 2, "nesting depth restored");
        assert_eq!(lock.wait_set_len(), 0, "timed-out waiter removed");
        lock.unlock(t, &reg).unwrap();
        lock.unlock(t, &reg).unwrap();
    }

    #[test]
    fn wait_preserves_deep_nesting() {
        let (lock, reg) = setup();
        let notifier = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                while lock.wait_set_len() == 0 {
                    thread::yield_now();
                }
                lock.lock(t, &reg).unwrap();
                lock.notify(t).unwrap();
                lock.unlock(t, &reg).unwrap();
            })
        };
        let r = reg.register().unwrap();
        let t = r.token();
        for _ in 0..5 {
            lock.lock(t, &reg).unwrap();
        }
        assert_eq!(lock.count(), 5);
        lock.wait(t, &reg, None).unwrap();
        assert_eq!(lock.count(), 5, "wait restored all five levels");
        for _ in 0..5 {
            lock.unlock(t, &reg).unwrap();
        }
        notifier.join().unwrap();
    }

    #[test]
    fn interrupt_during_wait_surfaces_after_reacquire() {
        let (lock, reg) = setup();
        let waiter = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                let err = lock.wait(t, &reg, None).unwrap_err();
                assert!(lock.holds(t), "monitor held when interrupt surfaces");
                lock.unlock(t, &reg).unwrap();
                (err, t.index())
            })
        };
        while lock.wait_set_len() == 0 {
            thread::yield_now();
        }
        // Find the waiter's index by peeking at the registry: interrupt all
        // registered indices (only the waiter is live besides none here).
        // Simpler: waiter is the only registered thread.
        for raw in 1..=4 {
            if let Ok(idx) = thinlock_runtime::lockword::ThreadIndex::new(raw) {
                let _ = reg.interrupt(idx);
            }
        }
        let (err, _) = waiter.join().unwrap();
        assert_eq!(err, SyncError::Interrupted);
        assert_eq!(lock.wait_set_len(), 0);
    }

    #[test]
    fn release_all_returns_depth() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        let t = r.token();
        for _ in 0..4 {
            lock.lock(t, &reg).unwrap();
        }
        assert_eq!(lock.release_all(t, &reg).unwrap(), 4);
        assert_eq!(lock.owner(), None);
        assert_eq!(lock.release_all(t, &reg), Err(SyncError::NotLocked));
    }

    #[test]
    fn display_shows_state() {
        let (lock, reg) = setup();
        assert!(lock.to_string().contains("free"));
        let r = reg.register().unwrap();
        lock.lock(r.token(), &reg).unwrap();
        assert!(lock.to_string().contains("owner="));
    }

    #[test]
    fn try_lock_non_blocking_semantics() {
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        let rb = reg.register().unwrap();
        assert!(lock.try_lock(ra.token()));
        assert!(lock.try_lock(ra.token()), "re-entrant try succeeds");
        assert_eq!(lock.count(), 2);
        assert!(!lock.try_lock(rb.token()));
        assert_eq!(lock.entry_queue_len(), 0, "failed try leaves no trace");
        lock.unlock(ra.token(), &reg).unwrap();
        lock.unlock(ra.token(), &reg).unwrap();
        assert!(lock.try_lock(rb.token()));
        lock.unlock(rb.token(), &reg).unwrap();
    }

    #[test]
    fn lock_deadline_times_out_and_leaves_queue_clean() {
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        let rb = reg.register().unwrap();
        lock.lock(ra.token(), &reg).unwrap();
        let start = Instant::now();
        let err = lock
            .lock_n_deadline(
                rb.token(),
                1,
                &reg,
                Instant::now() + Duration::from_millis(30),
            )
            .unwrap_err();
        assert_eq!(err, SyncError::Timeout);
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(lock.entry_queue_len(), 0, "timed-out acquirer dequeued");
        assert!(!lock.holds(rb.token()));
        lock.unlock(ra.token(), &reg).unwrap();
    }

    #[test]
    fn timed_out_front_hands_wake_to_next_queued_thread() {
        // a owns; b (timed) and c (untimed) queue behind. b times out at
        // the worst moment — the handoff must still reach c.
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        lock.lock(ra.token(), &reg).unwrap();
        let b = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                lock.lock_n_deadline(
                    r.token(),
                    1,
                    &reg,
                    Instant::now() + Duration::from_millis(40),
                )
            })
        };
        while lock.entry_queue_len() < 1 {
            thread::yield_now();
        }
        let c = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                let held = lock.holds(t);
                lock.unlock(t, &reg).unwrap();
                held
            })
        };
        while lock.entry_queue_len() < 2 {
            thread::yield_now();
        }
        assert_eq!(b.join().unwrap(), Err(SyncError::Timeout));
        // Release only after b has timed out, so the wake b received (or
        // would have received) must be forwarded for c to ever run.
        lock.unlock(ra.token(), &reg).unwrap();
        assert!(c.join().unwrap(), "c acquired after b's timeout");
        assert_eq!(lock.owner(), None);
        assert_eq!(lock.entry_queue_len(), 0);
    }

    #[test]
    fn deadline_acquisition_prefers_lock_over_timeout() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        let t = r.token();
        // Free monitor: acquires immediately even with an expired deadline.
        lock.lock_n_deadline(t, 3, &reg, Instant::now() - Duration::from_millis(1))
            .unwrap();
        assert_eq!(lock.count(), 3);
        lock.release_all(t, &reg).unwrap();
    }

    #[test]
    fn reclaim_orphan_releases_dead_owner_and_wakes_next() {
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        let ta = ra.token();
        lock.lock(ta, &reg).unwrap();
        lock.lock(ta, &reg).unwrap();
        let waiter = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                let held = lock.holds(t);
                lock.unlock(t, &reg).unwrap();
                held
            })
        };
        while lock.entry_queue_len() == 0 {
            thread::yield_now();
        }
        // Simulate thread death: release the registration without
        // unlocking (forget the RAII drop order problem — reclaim is
        // driven explicitly here; the registry-driven path is tested at
        // the core layer).
        let dead = ta.index();
        drop(ra);
        assert!(lock.reclaim_orphan(dead, &reg), "ownership reclaimed");
        assert!(waiter.join().unwrap(), "queued thread acquired after sweep");
        assert_eq!(lock.owner(), None);
    }

    #[test]
    fn reclaim_orphan_purges_queues_of_non_owner() {
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        lock.lock(ra.token(), &reg).unwrap();
        // A dead thread that was only queued, never owning.
        let rb = reg.register().unwrap();
        let dead = rb.token().index();
        {
            let mut inner = lock.lock_inner();
            inner.enqueue_entry_back(dead);
        }
        drop(rb);
        assert!(!lock.reclaim_orphan(dead, &reg), "no ownership to reclaim");
        assert_eq!(lock.entry_queue_len(), 0, "dead entry purged");
        lock.unlock(ra.token(), &reg).unwrap();
    }

    #[test]
    fn quiescence_snapshot_tracks_owner_count_and_queues() {
        let (lock, reg) = setup();
        let ra = reg.register().unwrap();
        let ta = ra.token();
        assert!(
            !lock.is_sole_quiescent_owner(ta),
            "unowned is not quiescent"
        );
        lock.lock(ta, &reg).unwrap();
        assert!(lock.is_sole_quiescent_owner(ta));
        lock.lock(ta, &reg).unwrap();
        assert!(!lock.is_sole_quiescent_owner(ta), "nested count blocks");
        lock.unlock(ta, &reg).unwrap();
        let rb = reg.register().unwrap();
        assert!(!lock.is_sole_quiescent_owner(rb.token()), "non-owner");
        // A queued contender blocks quiescence.
        {
            let mut inner = lock.lock_inner();
            inner.enqueue_entry_back(rb.token().index());
        }
        assert!(!lock.is_sole_quiescent_owner(ta), "entry queue blocks");
        {
            let mut inner = lock.lock_inner();
            inner.remove_from_entry(rb.token().index());
        }
        assert!(lock.is_sole_quiescent_owner(ta));
        lock.unlock(ta, &reg).unwrap();
    }

    #[test]
    fn timed_out_waiter_is_never_in_neither_queue() {
        // A waiter whose timeout expires must migrate wait set → entry
        // queue atomically; the monitor must never observe it absent from
        // both while it is still logically inside `wait`.
        let (lock, reg) = setup();
        let waiter = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                let out = lock.wait(t, &reg, Some(Duration::from_millis(20))).unwrap();
                assert!(lock.holds(t), "monitor re-acquired after timeout");
                lock.unlock(t, &reg).unwrap();
                out
            })
        };
        // While holding the monitor ourselves for the whole expiry window,
        // the waiter can time out but must land in the entry queue — it can
        // never re-acquire (we own), and the atomic migration means the
        // quiescence snapshot stays false throughout.
        while lock.wait_set_len() == 0 {
            thread::yield_now();
        }
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        let deadline = Instant::now() + Duration::from_millis(120);
        while lock.wait_set_len() > 0 && Instant::now() < deadline {
            assert!(
                !lock.is_sole_quiescent_owner(t),
                "waiter visible in a queue at every instant"
            );
            thread::yield_now();
        }
        // Timed out by now: the waiter sits in the entry queue.
        assert!(!lock.is_sole_quiescent_owner(t));
        lock.unlock(t, &reg).unwrap();
        assert_eq!(waiter.join().unwrap(), WaitOutcome::TimedOut);
    }

    #[test]
    fn poisoned_inner_mutex_recovers() {
        let (lock, reg) = setup();
        let r = reg.register().unwrap();
        let t = r.token();
        lock.lock(t, &reg).unwrap();
        // Poison the inner mutex by panicking while holding it.
        let lock2 = Arc::clone(&lock);
        let _ = thread::spawn(move || {
            let _guard = lock2.inner.lock().unwrap();
            panic!("poison the monitor");
        })
        .join();
        assert!(lock.inner.is_poisoned(), "mutex really was poisoned");
        // Every entry point still works.
        assert!(lock.holds(t));
        assert_eq!(lock.count(), 1);
        lock.lock(t, &reg).unwrap();
        lock.notify(t).unwrap();
        lock.unlock(t, &reg).unwrap();
        lock.unlock(t, &reg).unwrap();
        assert_eq!(lock.owner(), None);
    }

    #[test]
    fn spurious_wake_injection_still_acquires() {
        use std::sync::atomic::AtomicU32;

        /// Spuriously wakes the first `budget` parks at FatPark.
        #[derive(Debug)]
        struct Spurious(AtomicU32);
        impl FaultInjector for Spurious {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::FatPark
                    && self
                        .0
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                        .is_ok()
                {
                    FaultAction::SpuriousWake
                } else {
                    FaultAction::Proceed
                }
            }
        }

        let (lock, reg) = setup();
        lock.set_fault_injector(Arc::new(Spurious(AtomicU32::new(50))));
        let ra = reg.register().unwrap();
        lock.lock(ra.token(), &reg).unwrap();
        let contender = {
            let lock = Arc::clone(&lock);
            let reg = reg.clone();
            thread::spawn(move || {
                let r = reg.register().unwrap();
                let t = r.token();
                lock.lock(t, &reg).unwrap();
                let held = lock.holds(t);
                lock.unlock(t, &reg).unwrap();
                held
            })
        };
        while lock.entry_queue_len() == 0 {
            thread::yield_now();
        }
        lock.unlock(ra.token(), &reg).unwrap();
        assert!(contender.join().unwrap());
    }
}
