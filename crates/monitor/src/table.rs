//! The monitor-index table: 23-bit indices to fat locks.
//!
//! "We maintain the table which maps inflated monitor indices to fat
//! locks" (Section 2.3). The table must support wait-free lookup — the
//! paper's fat-lock fast path is "shifting the monitor index to the right
//! and indexing into the vector" with no locking, which is what makes thin
//! locks beat the JDK monitor cache even after inflation (Section 3.3).
//!
//! We get the same property with a preallocated slot array and an atomic
//! bump allocator: since a lock inflates at most once and never deflates,
//! a table sized to the heap's object capacity can never overflow, and a
//! published index is immutable for the table's lifetime.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

use thinlock_runtime::error::SyncError;
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::lockword::MonitorIndex;
use thinlock_runtime::schedule::Schedule;

use crate::fatlock::FatLock;

/// Map from [`MonitorIndex`] to [`FatLock`] with wait-free lookups.
///
/// # Example
///
/// ```
/// use thinlock_monitor::{FatLock, MonitorTable};
///
/// let table = MonitorTable::with_capacity(8);
/// let idx = table.allocate(FatLock::new())?;
/// assert!(table.get(idx).is_some());
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct MonitorTable {
    slots: Box<[OnceLock<FatLock>]>,
    next: AtomicU32,
    sink: OnceLock<Arc<dyn TraceSink>>,
    injector: OnceLock<Arc<dyn FaultInjector>>,
    schedule: OnceLock<Arc<dyn Schedule>>,
}

impl MonitorTable {
    /// Creates a table with room for `capacity` monitors (clamped to the
    /// 23-bit index space).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.min(MonitorIndex::MAX as usize + 1);
        MonitorTable {
            slots: (0..cap).map(|_| OnceLock::new()).collect(),
            next: AtomicU32::new(0),
            sink: OnceLock::new(),
            injector: OnceLock::new(),
            schedule: OnceLock::new(),
        }
    }

    /// Attaches an event sink; every subsequent allocation emits a
    /// [`TraceEventKind::MonitorAllocated`] event. Recording at the table
    /// (rather than at inflation sites) also covers allocations whose
    /// installing CAS loses a race and leaks the slot. Write-once: the
    /// first installed sink wins.
    pub fn set_sink(&self, sink: Arc<dyn TraceSink>) {
        let _ = self.sink.set(sink);
    }

    /// Attaches a fault injector consulted at
    /// [`InjectionPoint::MonitorAllocate`] on every allocation, and
    /// stamped into every fat lock this table publishes (so their park
    /// points inject too). Write-once: the first installed injector wins.
    pub fn set_fault_injector(&self, injector: Arc<dyn FaultInjector>) {
        let _ = self.injector.set(injector);
    }

    /// Attaches a cooperative schedule, stamped into every fat lock this
    /// table publishes (so their park points consult it). Write-once:
    /// the first installed schedule wins.
    pub fn set_schedule(&self, schedule: Arc<dyn Schedule>) {
        let _ = self.schedule.set(schedule);
    }

    /// Registers a fat lock, returning its permanent index.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`] if the table is full.
    pub fn allocate(&self, lock: FatLock) -> Result<MonitorIndex, SyncError> {
        if let Some(injector) = self.injector.get() {
            match injector.decide(InjectionPoint::MonitorAllocate) {
                // Injected exhaustion consumes no slot: callers observe
                // exactly what a full table produces, while the table
                // stays usable for the recovery the caller must perform.
                FaultAction::Exhaust => return Err(SyncError::MonitorIndexExhausted),
                FaultAction::Yield => std::thread::yield_now(),
                _ => {}
            }
            lock.set_fault_injector(Arc::clone(injector));
        }
        if let Some(schedule) = self.schedule.get() {
            lock.set_schedule(Arc::clone(schedule));
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed);
        if (slot as usize) >= self.slots.len() {
            self.next.fetch_sub(1, Ordering::Relaxed);
            return Err(SyncError::MonitorIndexExhausted);
        }
        let installed = self.slots[slot as usize].set(lock).is_ok();
        assert!(installed, "slot allocated twice");
        if let Some(sink) = self.sink.get() {
            sink.record(None, None, TraceEventKind::MonitorAllocated { index: slot });
        }
        // The index is published to other threads through a release store
        // of the inflated lock word; OnceLock::set already synchronizes
        // the lock contents with any subsequent get().
        MonitorIndex::new(slot)
    }

    /// Looks up a monitor by index. Wait-free.
    ///
    /// `#[inline]` because this sits on the fat-lock fast path — the
    /// paper's "shifting the monitor index to the right and indexing
    /// into the vector". Without it the call stays outlined across the
    /// crate boundary into `thinlock-core` (the workspace does not use
    /// LTO), costing a call/return on every operation against an
    /// inflated lock.
    #[inline]
    pub fn get(&self, index: MonitorIndex) -> Option<&FatLock> {
        self.slots.get(index.get() as usize)?.get()
    }

    /// Iterates over every allocated monitor with its index, in
    /// allocation order. Diagnostic scans (the orphan sweep, the deadlock
    /// watchdog) use this; monitors allocated after the iterator was
    /// created may or may not appear.
    pub fn iter(&self) -> impl Iterator<Item = (MonitorIndex, &FatLock)> + '_ {
        (0..self.len() as u32).filter_map(move |slot| {
            let lock = self.slots[slot as usize].get()?;
            Some((MonitorIndex::new(slot).ok()?, lock))
        })
    }

    /// Number of monitors allocated so far.
    #[inline]
    pub fn len(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// True if no monitor has been allocated.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slots available.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl fmt::Debug for MonitorTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorTable")
            .field("len", &self.len())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_runtime::registry::ThreadRegistry;

    #[test]
    fn allocate_and_lookup() {
        let table = MonitorTable::with_capacity(4);
        assert!(table.is_empty());
        let a = table.allocate(FatLock::new()).unwrap();
        let b = table.allocate(FatLock::new()).unwrap();
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert!(table.get(a).is_some());
        assert!(table.get(b).is_some());
        let far = MonitorIndex::new(3).unwrap();
        assert!(table.get(far).is_none(), "unallocated slot reads as none");
    }

    #[test]
    fn exhaustion() {
        let table = MonitorTable::with_capacity(2);
        table.allocate(FatLock::new()).unwrap();
        table.allocate(FatLock::new()).unwrap();
        assert_eq!(
            table.allocate(FatLock::new()).unwrap_err(),
            SyncError::MonitorIndexExhausted
        );
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn allocated_monitor_state_is_visible() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let t = r.token();
        let table = MonitorTable::with_capacity(1);
        let idx = table.allocate(FatLock::new_owned(t, 5)).unwrap();
        let lock = table.get(idx).unwrap();
        assert!(lock.holds(t));
        assert_eq!(lock.count(), 5);
    }

    #[test]
    fn capacity_clamped_to_index_space() {
        // Do not actually allocate 2^23 slots of memory in the test; just
        // check the clamp arithmetic via a small wrapper.
        let table = MonitorTable::with_capacity(3);
        assert_eq!(table.capacity(), 3);
    }

    #[test]
    fn concurrent_allocation_unique_indices() {
        let table = std::sync::Arc::new(MonitorTable::with_capacity(400));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let table = std::sync::Arc::clone(&table);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| table.allocate(FatLock::new()).unwrap().get())
                    .collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn sink_sees_every_allocation_with_its_index() {
        use std::sync::Mutex;
        use thinlock_runtime::heap::ObjRef;
        use thinlock_runtime::lockword::ThreadIndex;

        #[derive(Debug, Default)]
        struct Recorder(Mutex<Vec<u32>>);
        impl TraceSink for Recorder {
            fn record(&self, _t: Option<ThreadIndex>, _o: Option<ObjRef>, kind: TraceEventKind) {
                if let TraceEventKind::MonitorAllocated { index } = kind {
                    self.0.lock().unwrap().push(index);
                }
            }
        }

        let recorder = Arc::new(Recorder::default());
        let table = MonitorTable::with_capacity(3);
        table.set_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>);
        table.allocate(FatLock::new()).unwrap();
        table.allocate(FatLock::new()).unwrap();
        assert_eq!(*recorder.0.lock().unwrap(), vec![0, 1]);
    }

    #[test]
    fn debug_output_mentions_len() {
        let table = MonitorTable::with_capacity(1);
        assert!(format!("{table:?}").contains("len"));
    }

    #[test]
    fn injected_exhaustion_consumes_no_slot_and_recovers() {
        use std::sync::atomic::AtomicBool;

        #[derive(Debug, Default)]
        struct ExhaustOnce(AtomicBool);
        impl FaultInjector for ExhaustOnce {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::MonitorAllocate && !self.0.swap(true, Ordering::Relaxed)
                {
                    FaultAction::Exhaust
                } else {
                    FaultAction::Proceed
                }
            }
        }

        let table = MonitorTable::with_capacity(2);
        table.set_fault_injector(Arc::new(ExhaustOnce::default()));
        assert_eq!(
            table.allocate(FatLock::new()).unwrap_err(),
            SyncError::MonitorIndexExhausted
        );
        assert_eq!(table.len(), 0, "injected failure consumed no slot");
        assert!(table.allocate(FatLock::new()).is_ok());
        assert!(table.allocate(FatLock::new()).is_ok());
        assert_eq!(
            table.allocate(FatLock::new()).unwrap_err(),
            SyncError::MonitorIndexExhausted,
            "real exhaustion still reported"
        );
    }

    #[test]
    fn iter_visits_allocated_monitors_in_order() {
        let table = MonitorTable::with_capacity(4);
        let a = table.allocate(FatLock::new()).unwrap();
        let b = table.allocate(FatLock::new()).unwrap();
        let indices: Vec<u32> = table.iter().map(|(i, _)| i.get()).collect();
        assert_eq!(indices, vec![a.get(), b.get()]);
    }
}
