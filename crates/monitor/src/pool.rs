//! A bounded, recycling monitor pool for deflating backends.
//!
//! [`MonitorTable`](crate::table::MonitorTable) never recycles: under
//! the paper's one-way inflation a slot, once handed out, backs its
//! object forever, so the table is sized to the heap and indices are
//! permanent. A deflating backend (Compact Java Monitors, Dice & Kogan,
//! arXiv 2102.04188) breaks exactly that assumption — when a monitor
//! quiesces the object's word is restored to the neutral thin shape and
//! the slot goes back on a free list, so a *bounded* pool can serve an
//! unbounded stream of short-lived contended objects.
//!
//! Lookup stays wait-free (slot array indexed by the word's 23-bit
//! monitor index). Recycling only touches a mutex-guarded free list on
//! the inflation/deflation slow paths, never on lock/unlock fast paths.
//!
//! # Recycling and the ABA argument
//!
//! A recycled index may be observed by a thread still holding a stale
//! fat word. The pool therefore records, per slot, the object the slot
//! currently backs ([`MonitorPool::binding`]). A backend acquiring
//! through a fat word must *revalidate after locking the monitor*:
//! re-load the object's word and check it still carries this index
//! **and** the slot is still bound to this object; on mismatch it
//! releases the (foreign) monitor immediately and retries from the
//! word. Because a slot is unbound and freed only *after* its object's
//! word was neutralized, a revalidated match proves the monitor is the
//! object's current monitor. The transient foreign acquisition is
//! harmless: the mistaken holder never blocks while holding it, so it
//! cannot deadlock, and a concurrent inflater adopting the slot simply
//! queues in [`FatLock::lock_n`] until the transient holder releases.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use thinlock_runtime::error::SyncError;
use thinlock_runtime::events::{TraceEventKind, TraceSink};
use thinlock_runtime::fault::{FaultAction, FaultInjector, InjectionPoint};
use thinlock_runtime::lockword::MonitorIndex;
use thinlock_runtime::schedule::Schedule;

use crate::fatlock::FatLock;

/// Sentinel in a slot's binding meaning "not backing any object".
const UNBOUND: u32 = u32::MAX;

/// A bounded map from [`MonitorIndex`] to [`FatLock`] whose slots are
/// recycled when their monitor deflates.
///
/// # Example
///
/// ```
/// use thinlock_monitor::MonitorPool;
///
/// let pool = MonitorPool::with_capacity(2);
/// let a = pool.acquire(7)?; // bind a slot to object #7
/// assert_eq!(pool.live(), 1);
/// assert_eq!(pool.binding(a), Some(7));
/// pool.release(a); // deflation returns the slot
/// assert_eq!(pool.live(), 0);
/// let b = pool.acquire(9)?; // ... and object #9 reuses it
/// assert_eq!(b, a);
/// # Ok::<(), thinlock_runtime::SyncError>(())
/// ```
pub struct MonitorPool {
    slots: Box<[OnceLock<FatLock>]>,
    bindings: Box<[AtomicU32]>,
    free: Mutex<Vec<u32>>,
    next: AtomicU32,
    live: AtomicU32,
    peak: AtomicU32,
    allocated: AtomicU64,
    recycled: AtomicU64,
    sink: OnceLock<Arc<dyn TraceSink>>,
    injector: OnceLock<Arc<dyn FaultInjector>>,
    schedule: OnceLock<Arc<dyn Schedule>>,
}

impl MonitorPool {
    /// Creates a pool of at most `capacity` concurrently-live monitors
    /// (clamped to the 23-bit index space). The capacity is the bound a
    /// deflating backend advertises: its monitor population can never
    /// exceed it, no matter how many objects churn through inflation.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.min(MonitorIndex::MAX as usize + 1);
        MonitorPool {
            slots: (0..cap).map(|_| OnceLock::new()).collect(),
            bindings: (0..cap).map(|_| AtomicU32::new(UNBOUND)).collect(),
            free: Mutex::new(Vec::new()),
            next: AtomicU32::new(0),
            live: AtomicU32::new(0),
            peak: AtomicU32::new(0),
            allocated: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            sink: OnceLock::new(),
            injector: OnceLock::new(),
            schedule: OnceLock::new(),
        }
    }

    /// Attaches an event sink; every subsequent [`MonitorPool::acquire`]
    /// (fresh or recycled) emits [`TraceEventKind::MonitorAllocated`],
    /// so the trace shows each inflation's slot. Write-once.
    pub fn set_sink(&self, sink: Arc<dyn TraceSink>) {
        let _ = self.sink.set(sink);
    }

    /// Attaches a fault injector consulted at
    /// [`InjectionPoint::MonitorAllocate`] on every acquire and stamped
    /// into every fresh fat lock. Write-once.
    pub fn set_fault_injector(&self, injector: Arc<dyn FaultInjector>) {
        let _ = self.injector.set(injector);
    }

    /// Attaches a cooperative schedule, stamped into every fresh fat
    /// lock so its park points consult it. Write-once.
    pub fn set_schedule(&self, schedule: Arc<dyn Schedule>) {
        let _ = self.schedule.set(schedule);
    }

    /// Binds a slot to the object with heap index `obj_index` and
    /// returns its monitor index, recycling a freed slot when one
    /// exists. The returned slot's monitor is *unowned* (fresh) or at
    /// worst transiently held by a stale-word racer (recycled); the
    /// caller adopts it with [`FatLock::lock_n`] before publishing the
    /// fat word.
    ///
    /// # Errors
    ///
    /// [`SyncError::MonitorIndexExhausted`] when every slot is live (or
    /// the fault seam injects exhaustion, consuming nothing).
    pub fn acquire(&self, obj_index: u32) -> Result<MonitorIndex, SyncError> {
        if let Some(injector) = self.injector.get() {
            match injector.decide(InjectionPoint::MonitorAllocate) {
                FaultAction::Exhaust => return Err(SyncError::MonitorIndexExhausted),
                FaultAction::Yield => std::thread::yield_now(),
                _ => {}
            }
        }
        let slot = match self.free.lock().expect("pool free list poisoned").pop() {
            Some(slot) => {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                slot
            }
            None => {
                let slot = self.next.fetch_add(1, Ordering::Relaxed);
                if (slot as usize) >= self.slots.len() {
                    self.next.fetch_sub(1, Ordering::Relaxed);
                    return Err(SyncError::MonitorIndexExhausted);
                }
                let lock = FatLock::new();
                if let Some(injector) = self.injector.get() {
                    lock.set_fault_injector(Arc::clone(injector));
                }
                if let Some(schedule) = self.schedule.get() {
                    lock.set_schedule(Arc::clone(schedule));
                }
                let installed = self.slots[slot as usize].set(lock).is_ok();
                assert!(installed, "pool slot allocated twice");
                slot
            }
        };
        self.allocated.fetch_add(1, Ordering::Relaxed);
        // Bind before the caller can publish the fat word: a revalidating
        // reader that sees the new word must also see the binding.
        self.bindings[slot as usize].store(obj_index, Ordering::Release);
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(live, Ordering::Relaxed);
        if let Some(sink) = self.sink.get() {
            sink.record(None, None, TraceEventKind::MonitorAllocated { index: slot });
        }
        MonitorIndex::new(slot)
    }

    /// Returns a deflated slot to the free list.
    ///
    /// The caller must have already neutralized the bound object's word
    /// (so no *new* reader can reach the slot through it) and released
    /// the monitor. Stale-word racers may still lock the monitor
    /// transiently after this; the revalidation contract (module docs)
    /// makes that harmless.
    pub fn release(&self, index: MonitorIndex) {
        let slot = index.get();
        debug_assert!((slot as usize) < self.slots.len());
        let was = self.bindings[slot as usize].swap(UNBOUND, Ordering::Release);
        debug_assert_ne!(was, UNBOUND, "slot released twice");
        let prev = self.live.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "live monitor count underflow");
        self.free
            .lock()
            .expect("pool free list poisoned")
            .push(slot);
    }

    /// Looks up a monitor by index. Wait-free.
    ///
    /// `#[inline]` for the same reason as
    /// [`MonitorTable::get`](crate::table::MonitorTable::get): this sits
    /// on the fat-lock fast path across a crate boundary.
    #[inline]
    pub fn get(&self, index: MonitorIndex) -> Option<&FatLock> {
        self.slots.get(index.get() as usize)?.get()
    }

    /// The heap index of the object this slot currently backs, or
    /// `None` while the slot is free. Acquire load, pairing with the
    /// release store in [`MonitorPool::acquire`] — this is one half of
    /// the revalidation a fat acquirer performs after locking the
    /// monitor.
    #[inline]
    pub fn binding(&self, index: MonitorIndex) -> Option<u32> {
        let bound = self
            .bindings
            .get(index.get() as usize)?
            .load(Ordering::Acquire);
        (bound != UNBOUND).then_some(bound)
    }

    /// Iterates over every currently-bound slot with its index and the
    /// object index it backs. Diagnostic scans (the orphan sweep, the
    /// idle reclaimer) use this; bindings can change mid-iteration.
    pub fn iter_bound(&self) -> impl Iterator<Item = (MonitorIndex, u32, &FatLock)> + '_ {
        let len = (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len());
        (0..len as u32).filter_map(move |slot| {
            let bound = self.bindings[slot as usize].load(Ordering::Acquire);
            if bound == UNBOUND {
                return None;
            }
            let lock = self.slots[slot as usize].get()?;
            Some((MonitorIndex::new(slot).ok()?, bound, lock))
        })
    }

    /// Monitors currently bound to an object — the population the pool
    /// exists to bound. Never exceeds [`MonitorPool::capacity`].
    #[inline]
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Relaxed) as usize
    }

    /// High-water mark of [`MonitorPool::live`].
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed) as usize
    }

    /// Total [`MonitorPool::acquire`] calls served (monotone; counts
    /// recycled slots every time they are re-bound).
    #[inline]
    pub fn allocated_total(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }

    /// The subset of [`MonitorPool::allocated_total`] served from the
    /// free list rather than a fresh slot.
    #[inline]
    pub fn recycled_total(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Distinct slots ever materialized (the pool's memory footprint).
    #[inline]
    pub fn footprint(&self) -> usize {
        (self.next.load(Ordering::Relaxed) as usize).min(self.slots.len())
    }

    /// Total slots available.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl fmt::Debug for MonitorPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorPool")
            .field("live", &self.live())
            .field("peak", &self.peak())
            .field("footprint", &self.footprint())
            .field("capacity", &self.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thinlock_runtime::registry::ThreadRegistry;

    #[test]
    fn acquire_binds_and_release_recycles() {
        let pool = MonitorPool::with_capacity(2);
        let a = pool.acquire(10).unwrap();
        let b = pool.acquire(11).unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.live(), 2);
        assert_eq!(pool.peak(), 2);
        assert_eq!(pool.binding(a), Some(10));
        assert_eq!(pool.binding(b), Some(11));

        pool.release(a);
        assert_eq!(pool.live(), 1);
        assert_eq!(pool.binding(a), None);

        // The freed slot is reused and re-bound; footprint stays put.
        let c = pool.acquire(12).unwrap();
        assert_eq!(c, a);
        assert_eq!(pool.binding(c), Some(12));
        assert_eq!(pool.footprint(), 2);
        assert_eq!(pool.allocated_total(), 3);
        assert_eq!(pool.recycled_total(), 1);
    }

    #[test]
    fn exhaustion_only_when_all_slots_live() {
        let pool = MonitorPool::with_capacity(1);
        let a = pool.acquire(0).unwrap();
        assert_eq!(
            pool.acquire(1).unwrap_err(),
            SyncError::MonitorIndexExhausted
        );
        pool.release(a);
        assert!(pool.acquire(1).is_ok(), "release unblocks the pool");
    }

    #[test]
    fn recycled_monitor_is_adoptable_via_lock_n() {
        let reg = ThreadRegistry::new();
        let r = reg.register().unwrap();
        let t = r.token();

        let pool = MonitorPool::with_capacity(1);
        let a = pool.acquire(3).unwrap();
        let m = pool.get(a).unwrap();
        m.lock_n(t, 2, &reg).unwrap();
        assert_eq!(m.count(), 2);
        m.release_all(t, &reg).unwrap();
        pool.release(a);

        // Same slot, new object: the existing FatLock is re-owned.
        let b = pool.acquire(4).unwrap();
        assert_eq!(b, a);
        let m = pool.get(b).unwrap();
        m.lock_n(t, 1, &reg).unwrap();
        assert!(m.holds(t));
        m.unlock(t, &reg).unwrap();
    }

    #[test]
    fn injected_exhaustion_consumes_nothing() {
        #[derive(Debug)]
        struct ExhaustAlways;
        impl FaultInjector for ExhaustAlways {
            fn decide(&self, point: InjectionPoint) -> FaultAction {
                if point == InjectionPoint::MonitorAllocate {
                    FaultAction::Exhaust
                } else {
                    FaultAction::Proceed
                }
            }
        }
        let pool = MonitorPool::with_capacity(2);
        pool.set_fault_injector(Arc::new(ExhaustAlways));
        assert_eq!(
            pool.acquire(0).unwrap_err(),
            SyncError::MonitorIndexExhausted
        );
        assert_eq!(pool.live(), 0);
        assert_eq!(pool.allocated_total(), 0);
    }

    #[test]
    fn sink_sees_recycled_acquires_too() {
        use std::sync::Mutex as StdMutex;
        use thinlock_runtime::heap::ObjRef;
        use thinlock_runtime::lockword::ThreadIndex;

        #[derive(Debug, Default)]
        struct Recorder(StdMutex<Vec<u32>>);
        impl TraceSink for Recorder {
            fn record(&self, _t: Option<ThreadIndex>, _o: Option<ObjRef>, kind: TraceEventKind) {
                if let TraceEventKind::MonitorAllocated { index } = kind {
                    self.0.lock().unwrap().push(index);
                }
            }
        }

        let recorder = Arc::new(Recorder::default());
        let pool = MonitorPool::with_capacity(1);
        pool.set_sink(Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let a = pool.acquire(0).unwrap();
        pool.release(a);
        let _ = pool.acquire(1).unwrap();
        assert_eq!(*recorder.0.lock().unwrap(), vec![0, 0]);
    }

    #[test]
    fn iter_bound_skips_free_slots() {
        let pool = MonitorPool::with_capacity(3);
        let a = pool.acquire(5).unwrap();
        let b = pool.acquire(6).unwrap();
        pool.release(a);
        let bound: Vec<(u32, u32)> = pool.iter_bound().map(|(i, o, _)| (i.get(), o)).collect();
        assert_eq!(bound, vec![(b.get(), 6)]);
    }

    #[test]
    fn debug_output_mentions_live() {
        let pool = MonitorPool::with_capacity(1);
        assert!(format!("{pool:?}").contains("live"));
    }
}
