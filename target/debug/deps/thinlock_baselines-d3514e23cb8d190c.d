/root/repo/target/debug/deps/thinlock_baselines-d3514e23cb8d190c.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_baselines-d3514e23cb8d190c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
