/root/repo/target/debug/deps/tracegen-d2101a0c7085e669.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/debug/deps/libtracegen-d2101a0c7085e669.rmeta: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
