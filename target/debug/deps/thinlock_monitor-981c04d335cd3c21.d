/root/repo/target/debug/deps/thinlock_monitor-981c04d335cd3c21.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/debug/deps/libthinlock_monitor-981c04d335cd3c21.rlib: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/debug/deps/libthinlock_monitor-981c04d335cd3c21.rmeta: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
