/root/repo/target/debug/deps/reproduce-dcc612816f510f8c.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-dcc612816f510f8c.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
