/root/repo/target/debug/deps/thinlock_runtime-82b18942e0b7c2f2.d: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_runtime-82b18942e0b7c2f2.rmeta: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/arch.rs:
crates/runtime/src/backoff.rs:
crates/runtime/src/error.rs:
crates/runtime/src/heap.rs:
crates/runtime/src/lockword.rs:
crates/runtime/src/prng.rs:
crates/runtime/src/protocol.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
