/root/repo/target/debug/deps/tracegen-18a48a6e57bee369.d: crates/bench/src/bin/tracegen.rs Cargo.toml

/root/repo/target/debug/deps/libtracegen-18a48a6e57bee369.rmeta: crates/bench/src/bin/tracegen.rs Cargo.toml

crates/bench/src/bin/tracegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
