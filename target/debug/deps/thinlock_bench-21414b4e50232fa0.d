/root/repo/target/debug/deps/thinlock_bench-21414b4e50232fa0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/thinlock_bench-21414b4e50232fa0: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
