/root/repo/target/debug/deps/fig4_micro-69604821edd0bfe8.d: crates/bench/benches/fig4_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_micro-69604821edd0bfe8.rmeta: crates/bench/benches/fig4_micro.rs Cargo.toml

crates/bench/benches/fig4_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
