/root/repo/target/debug/deps/cross_protocol-e8fd55a34bf850a9.d: crates/bench/../../tests/cross_protocol.rs

/root/repo/target/debug/deps/cross_protocol-e8fd55a34bf850a9: crates/bench/../../tests/cross_protocol.rs

crates/bench/../../tests/cross_protocol.rs:
