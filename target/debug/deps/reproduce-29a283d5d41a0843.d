/root/repo/target/debug/deps/reproduce-29a283d5d41a0843.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-29a283d5d41a0843: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
