/root/repo/target/debug/deps/shape_assertions-6a31fc76c03b2970.d: crates/bench/../../tests/shape_assertions.rs Cargo.toml

/root/repo/target/debug/deps/libshape_assertions-6a31fc76c03b2970.rmeta: crates/bench/../../tests/shape_assertions.rs Cargo.toml

crates/bench/../../tests/shape_assertions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
