/root/repo/target/debug/deps/tracegen-ad32b402698e049d.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/debug/deps/libtracegen-ad32b402698e049d.rmeta: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
