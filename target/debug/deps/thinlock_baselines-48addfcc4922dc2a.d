/root/repo/target/debug/deps/thinlock_baselines-48addfcc4922dc2a.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_baselines-48addfcc4922dc2a.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
