/root/repo/target/debug/deps/fig5_macro-d24e70aaa029c29e.d: crates/bench/benches/fig5_macro.rs

/root/repo/target/debug/deps/libfig5_macro-d24e70aaa029c29e.rmeta: crates/bench/benches/fig5_macro.rs

crates/bench/benches/fig5_macro.rs:
