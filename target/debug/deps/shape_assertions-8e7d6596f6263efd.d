/root/repo/target/debug/deps/shape_assertions-8e7d6596f6263efd.d: crates/bench/../../tests/shape_assertions.rs

/root/repo/target/debug/deps/shape_assertions-8e7d6596f6263efd: crates/bench/../../tests/shape_assertions.rs

crates/bench/../../tests/shape_assertions.rs:
