/root/repo/target/debug/deps/thinlock_trace-7816528abb88a97d.d: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_trace-7816528abb88a97d.rmeta: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/characterize.rs:
crates/trace/src/concurrent.rs:
crates/trace/src/generator.rs:
crates/trace/src/io.rs:
crates/trace/src/replay.rs:
crates/trace/src/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
