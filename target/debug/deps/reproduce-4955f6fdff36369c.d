/root/repo/target/debug/deps/reproduce-4955f6fdff36369c.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/libreproduce-4955f6fdff36369c.rmeta: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
