/root/repo/target/debug/deps/alu_ops-5b77e9e98d5dd247.d: crates/vm/tests/alu_ops.rs

/root/repo/target/debug/deps/libalu_ops-5b77e9e98d5dd247.rmeta: crates/vm/tests/alu_ops.rs

crates/vm/tests/alu_ops.rs:
