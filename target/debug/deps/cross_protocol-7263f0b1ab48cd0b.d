/root/repo/target/debug/deps/cross_protocol-7263f0b1ab48cd0b.d: crates/bench/../../tests/cross_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libcross_protocol-7263f0b1ab48cd0b.rmeta: crates/bench/../../tests/cross_protocol.rs Cargo.toml

crates/bench/../../tests/cross_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
