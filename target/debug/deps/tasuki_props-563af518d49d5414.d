/root/repo/target/debug/deps/tasuki_props-563af518d49d5414.d: crates/core/tests/tasuki_props.rs Cargo.toml

/root/repo/target/debug/deps/libtasuki_props-563af518d49d5414.rmeta: crates/core/tests/tasuki_props.rs Cargo.toml

crates/core/tests/tasuki_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
