/root/repo/target/debug/deps/replay_properties-fbb80adac9e47285.d: crates/bench/../../tests/replay_properties.rs

/root/repo/target/debug/deps/replay_properties-fbb80adac9e47285: crates/bench/../../tests/replay_properties.rs

crates/bench/../../tests/replay_properties.rs:
