/root/repo/target/debug/deps/failure_injection-4017a8adc55ad082.d: crates/bench/../../tests/failure_injection.rs

/root/repo/target/debug/deps/libfailure_injection-4017a8adc55ad082.rmeta: crates/bench/../../tests/failure_injection.rs

crates/bench/../../tests/failure_injection.rs:
