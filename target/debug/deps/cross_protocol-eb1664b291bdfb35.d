/root/repo/target/debug/deps/cross_protocol-eb1664b291bdfb35.d: crates/bench/../../tests/cross_protocol.rs

/root/repo/target/debug/deps/cross_protocol-eb1664b291bdfb35: crates/bench/../../tests/cross_protocol.rs

crates/bench/../../tests/cross_protocol.rs:
