/root/repo/target/debug/deps/thinlock-8c0f7f4c2f770c5c.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/debug/deps/libthinlock-8c0f7f4c2f770c5c.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/tasuki.rs:
crates/core/src/thin.rs:
