/root/repo/target/debug/deps/ablations-95e157feb844ef76.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-95e157feb844ef76.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
