/root/repo/target/debug/deps/vm_integration-6ab93cca540e444c.d: crates/bench/../../tests/vm_integration.rs

/root/repo/target/debug/deps/libvm_integration-6ab93cca540e444c.rmeta: crates/bench/../../tests/vm_integration.rs

crates/bench/../../tests/vm_integration.rs:
