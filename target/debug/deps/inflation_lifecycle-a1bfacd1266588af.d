/root/repo/target/debug/deps/inflation_lifecycle-a1bfacd1266588af.d: crates/bench/../../tests/inflation_lifecycle.rs

/root/repo/target/debug/deps/inflation_lifecycle-a1bfacd1266588af: crates/bench/../../tests/inflation_lifecycle.rs

crates/bench/../../tests/inflation_lifecycle.rs:
