/root/repo/target/debug/deps/replay_properties-f5f067ecac8aba62.d: crates/bench/../../tests/replay_properties.rs

/root/repo/target/debug/deps/replay_properties-f5f067ecac8aba62: crates/bench/../../tests/replay_properties.rs

crates/bench/../../tests/replay_properties.rs:
