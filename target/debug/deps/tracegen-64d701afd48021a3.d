/root/repo/target/debug/deps/tracegen-64d701afd48021a3.d: crates/bench/src/bin/tracegen.rs Cargo.toml

/root/repo/target/debug/deps/libtracegen-64d701afd48021a3.rmeta: crates/bench/src/bin/tracegen.rs Cargo.toml

crates/bench/src/bin/tracegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
