/root/repo/target/debug/deps/tasuki_props-bb686c32f2848477.d: crates/core/tests/tasuki_props.rs

/root/repo/target/debug/deps/tasuki_props-bb686c32f2848477: crates/core/tests/tasuki_props.rs

crates/core/tests/tasuki_props.rs:
