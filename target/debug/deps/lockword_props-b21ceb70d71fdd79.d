/root/repo/target/debug/deps/lockword_props-b21ceb70d71fdd79.d: crates/runtime/tests/lockword_props.rs

/root/repo/target/debug/deps/liblockword_props-b21ceb70d71fdd79.rmeta: crates/runtime/tests/lockword_props.rs

crates/runtime/tests/lockword_props.rs:
