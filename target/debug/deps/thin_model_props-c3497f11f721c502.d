/root/repo/target/debug/deps/thin_model_props-c3497f11f721c502.d: crates/core/tests/thin_model_props.rs

/root/repo/target/debug/deps/libthin_model_props-c3497f11f721c502.rmeta: crates/core/tests/thin_model_props.rs

crates/core/tests/thin_model_props.rs:
