/root/repo/target/debug/deps/vm_integration-b3a0bb19b962b8ed.d: crates/bench/../../tests/vm_integration.rs

/root/repo/target/debug/deps/vm_integration-b3a0bb19b962b8ed: crates/bench/../../tests/vm_integration.rs

crates/bench/../../tests/vm_integration.rs:
