/root/repo/target/debug/deps/transform_props-092a248c3fc697a8.d: crates/vm/tests/transform_props.rs

/root/repo/target/debug/deps/libtransform_props-092a248c3fc697a8.rmeta: crates/vm/tests/transform_props.rs

crates/vm/tests/transform_props.rs:
