/root/repo/target/debug/deps/vm_integration-ff709117789ecae9.d: crates/bench/../../tests/vm_integration.rs Cargo.toml

/root/repo/target/debug/deps/libvm_integration-ff709117789ecae9.rmeta: crates/bench/../../tests/vm_integration.rs Cargo.toml

crates/bench/../../tests/vm_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
