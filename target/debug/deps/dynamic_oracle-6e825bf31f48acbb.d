/root/repo/target/debug/deps/dynamic_oracle-6e825bf31f48acbb.d: crates/analysis/tests/dynamic_oracle.rs

/root/repo/target/debug/deps/libdynamic_oracle-6e825bf31f48acbb.rmeta: crates/analysis/tests/dynamic_oracle.rs

crates/analysis/tests/dynamic_oracle.rs:
