/root/repo/target/debug/deps/thinlock_analysis-ecb8f5dbccc8aba1.d: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_analysis-ecb8f5dbccc8aba1.rmeta: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/escape.rs:
crates/analysis/src/lockorder.rs:
crates/analysis/src/lockstack.rs:
crates/analysis/src/nestdepth.rs:
crates/analysis/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
