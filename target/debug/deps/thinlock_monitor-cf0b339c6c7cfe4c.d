/root/repo/target/debug/deps/thinlock_monitor-cf0b339c6c7cfe4c.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/debug/deps/libthinlock_monitor-cf0b339c6c7cfe4c.rmeta: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
