/root/repo/target/debug/deps/table1_characterize-445293e8a5ab23d4.d: crates/bench/benches/table1_characterize.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_characterize-445293e8a5ab23d4.rmeta: crates/bench/benches/table1_characterize.rs Cargo.toml

crates/bench/benches/table1_characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
