/root/repo/target/debug/deps/tracegen-b80a7d695e735d74.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/debug/deps/tracegen-b80a7d695e735d74: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
