/root/repo/target/debug/deps/thinlock_bench-03c27e91619c8c38.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/thinlock_bench-03c27e91619c8c38: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
