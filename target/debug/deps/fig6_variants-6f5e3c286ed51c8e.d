/root/repo/target/debug/deps/fig6_variants-6f5e3c286ed51c8e.d: crates/bench/benches/fig6_variants.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_variants-6f5e3c286ed51c8e.rmeta: crates/bench/benches/fig6_variants.rs Cargo.toml

crates/bench/benches/fig6_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
