/root/repo/target/debug/deps/thin_model_props-dc3fdba06d6e50a6.d: crates/core/tests/thin_model_props.rs

/root/repo/target/debug/deps/thin_model_props-dc3fdba06d6e50a6: crates/core/tests/thin_model_props.rs

crates/core/tests/thin_model_props.rs:
