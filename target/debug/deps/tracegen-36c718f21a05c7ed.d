/root/repo/target/debug/deps/tracegen-36c718f21a05c7ed.d: crates/bench/src/bin/tracegen.rs Cargo.toml

/root/repo/target/debug/deps/libtracegen-36c718f21a05c7ed.rmeta: crates/bench/src/bin/tracegen.rs Cargo.toml

crates/bench/src/bin/tracegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
