/root/repo/target/debug/deps/oracle_stress-341fba6712ddab6e.d: crates/monitor/tests/oracle_stress.rs Cargo.toml

/root/repo/target/debug/deps/liboracle_stress-341fba6712ddab6e.rmeta: crates/monitor/tests/oracle_stress.rs Cargo.toml

crates/monitor/tests/oracle_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
