/root/repo/target/debug/deps/fig6_variants-cc163d82b50f5397.d: crates/bench/benches/fig6_variants.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_variants-cc163d82b50f5397.rmeta: crates/bench/benches/fig6_variants.rs Cargo.toml

crates/bench/benches/fig6_variants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
