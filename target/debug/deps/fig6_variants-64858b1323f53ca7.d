/root/repo/target/debug/deps/fig6_variants-64858b1323f53ca7.d: crates/bench/benches/fig6_variants.rs

/root/repo/target/debug/deps/libfig6_variants-64858b1323f53ca7.rmeta: crates/bench/benches/fig6_variants.rs

crates/bench/benches/fig6_variants.rs:
