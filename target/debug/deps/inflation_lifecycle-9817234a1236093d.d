/root/repo/target/debug/deps/inflation_lifecycle-9817234a1236093d.d: crates/bench/../../tests/inflation_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libinflation_lifecycle-9817234a1236093d.rmeta: crates/bench/../../tests/inflation_lifecycle.rs Cargo.toml

crates/bench/../../tests/inflation_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
