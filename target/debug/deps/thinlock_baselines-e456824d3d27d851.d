/root/repo/target/debug/deps/thinlock_baselines-e456824d3d27d851.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/debug/deps/libthinlock_baselines-e456824d3d27d851.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
