/root/repo/target/debug/deps/failure_injection-c2448dfd1d9cc27a.d: crates/bench/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-c2448dfd1d9cc27a.rmeta: crates/bench/../../tests/failure_injection.rs Cargo.toml

crates/bench/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
