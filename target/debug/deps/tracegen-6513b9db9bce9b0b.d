/root/repo/target/debug/deps/tracegen-6513b9db9bce9b0b.d: crates/bench/src/bin/tracegen.rs Cargo.toml

/root/repo/target/debug/deps/libtracegen-6513b9db9bce9b0b.rmeta: crates/bench/src/bin/tracegen.rs Cargo.toml

crates/bench/src/bin/tracegen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
