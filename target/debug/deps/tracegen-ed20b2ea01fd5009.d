/root/repo/target/debug/deps/tracegen-ed20b2ea01fd5009.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/debug/deps/tracegen-ed20b2ea01fd5009: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
