/root/repo/target/debug/deps/ablations-0e2a3d6f6953cd79.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-0e2a3d6f6953cd79.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
