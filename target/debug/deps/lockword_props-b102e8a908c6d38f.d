/root/repo/target/debug/deps/lockword_props-b102e8a908c6d38f.d: crates/runtime/tests/lockword_props.rs Cargo.toml

/root/repo/target/debug/deps/liblockword_props-b102e8a908c6d38f.rmeta: crates/runtime/tests/lockword_props.rs Cargo.toml

crates/runtime/tests/lockword_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
