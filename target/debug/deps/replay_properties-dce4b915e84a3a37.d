/root/repo/target/debug/deps/replay_properties-dce4b915e84a3a37.d: crates/bench/../../tests/replay_properties.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_properties-dce4b915e84a3a37.rmeta: crates/bench/../../tests/replay_properties.rs Cargo.toml

crates/bench/../../tests/replay_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
