/root/repo/target/debug/deps/cross_protocol-227e867f7b058394.d: crates/bench/../../tests/cross_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libcross_protocol-227e867f7b058394.rmeta: crates/bench/../../tests/cross_protocol.rs Cargo.toml

crates/bench/../../tests/cross_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
