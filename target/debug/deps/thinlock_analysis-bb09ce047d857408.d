/root/repo/target/debug/deps/thinlock_analysis-bb09ce047d857408.d: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

/root/repo/target/debug/deps/libthinlock_analysis-bb09ce047d857408.rmeta: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

crates/analysis/src/lib.rs:
crates/analysis/src/escape.rs:
crates/analysis/src/lockorder.rs:
crates/analysis/src/lockstack.rs:
crates/analysis/src/nestdepth.rs:
crates/analysis/src/report.rs:
