/root/repo/target/debug/deps/failure_injection-55d11bf902ab2968.d: crates/bench/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-55d11bf902ab2968: crates/bench/../../tests/failure_injection.rs

crates/bench/../../tests/failure_injection.rs:
