/root/repo/target/debug/deps/transform_props-98eb44edf23e0e7c.d: crates/vm/tests/transform_props.rs

/root/repo/target/debug/deps/transform_props-98eb44edf23e0e7c: crates/vm/tests/transform_props.rs

crates/vm/tests/transform_props.rs:
