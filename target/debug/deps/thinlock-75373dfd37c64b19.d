/root/repo/target/debug/deps/thinlock-75373dfd37c64b19.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock-75373dfd37c64b19.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/tasuki.rs:
crates/core/src/thin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
