/root/repo/target/debug/deps/thinlock_analysis-923dc882e9ac9e07.d: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_analysis-923dc882e9ac9e07.rmeta: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/escape.rs:
crates/analysis/src/lockorder.rs:
crates/analysis/src/lockstack.rs:
crates/analysis/src/nestdepth.rs:
crates/analysis/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
