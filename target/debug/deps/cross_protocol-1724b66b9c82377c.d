/root/repo/target/debug/deps/cross_protocol-1724b66b9c82377c.d: crates/bench/../../tests/cross_protocol.rs

/root/repo/target/debug/deps/libcross_protocol-1724b66b9c82377c.rmeta: crates/bench/../../tests/cross_protocol.rs

crates/bench/../../tests/cross_protocol.rs:
