/root/repo/target/debug/deps/thinlock_runtime-fdabfdc941e5479e.d: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs

/root/repo/target/debug/deps/libthinlock_runtime-fdabfdc941e5479e.rmeta: crates/runtime/src/lib.rs crates/runtime/src/arch.rs crates/runtime/src/backoff.rs crates/runtime/src/error.rs crates/runtime/src/heap.rs crates/runtime/src/lockword.rs crates/runtime/src/prng.rs crates/runtime/src/protocol.rs crates/runtime/src/registry.rs crates/runtime/src/stats.rs

crates/runtime/src/lib.rs:
crates/runtime/src/arch.rs:
crates/runtime/src/backoff.rs:
crates/runtime/src/error.rs:
crates/runtime/src/heap.rs:
crates/runtime/src/lockword.rs:
crates/runtime/src/prng.rs:
crates/runtime/src/protocol.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/stats.rs:
