/root/repo/target/debug/deps/lockcheck-4e85959e54079f23.d: crates/analysis/src/bin/lockcheck.rs

/root/repo/target/debug/deps/liblockcheck-4e85959e54079f23.rmeta: crates/analysis/src/bin/lockcheck.rs

crates/analysis/src/bin/lockcheck.rs:
