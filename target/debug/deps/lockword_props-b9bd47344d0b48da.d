/root/repo/target/debug/deps/lockword_props-b9bd47344d0b48da.d: crates/runtime/tests/lockword_props.rs

/root/repo/target/debug/deps/lockword_props-b9bd47344d0b48da: crates/runtime/tests/lockword_props.rs

crates/runtime/tests/lockword_props.rs:
