/root/repo/target/debug/deps/exceptions-b2c052db28e2b4c1.d: crates/vm/tests/exceptions.rs

/root/repo/target/debug/deps/libexceptions-b2c052db28e2b4c1.rmeta: crates/vm/tests/exceptions.rs

crates/vm/tests/exceptions.rs:
