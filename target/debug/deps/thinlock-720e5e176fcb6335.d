/root/repo/target/debug/deps/thinlock-720e5e176fcb6335.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/debug/deps/thinlock-720e5e176fcb6335: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/tasuki.rs:
crates/core/src/thin.rs:
