/root/repo/target/debug/deps/alu_ops-61254166b60135bd.d: crates/vm/tests/alu_ops.rs Cargo.toml

/root/repo/target/debug/deps/libalu_ops-61254166b60135bd.rmeta: crates/vm/tests/alu_ops.rs Cargo.toml

crates/vm/tests/alu_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
