/root/repo/target/debug/deps/thinlock_vm-a8437e76f4a9da83.d: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_vm-a8437e76f4a9da83.rmeta: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs Cargo.toml

crates/vm/src/lib.rs:
crates/vm/src/asm.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/error.rs:
crates/vm/src/interp.rs:
crates/vm/src/library.rs:
crates/vm/src/program.rs:
crates/vm/src/programs.rs:
crates/vm/src/transform.rs:
crates/vm/src/value.rs:
crates/vm/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
