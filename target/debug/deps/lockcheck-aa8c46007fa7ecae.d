/root/repo/target/debug/deps/lockcheck-aa8c46007fa7ecae.d: crates/analysis/src/bin/lockcheck.rs

/root/repo/target/debug/deps/lockcheck-aa8c46007fa7ecae: crates/analysis/src/bin/lockcheck.rs

crates/analysis/src/bin/lockcheck.rs:
