/root/repo/target/debug/deps/thinlock_analysis-b594d09d9730cfca.d: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

/root/repo/target/debug/deps/thinlock_analysis-b594d09d9730cfca: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

crates/analysis/src/lib.rs:
crates/analysis/src/escape.rs:
crates/analysis/src/lockorder.rs:
crates/analysis/src/lockstack.rs:
crates/analysis/src/nestdepth.rs:
crates/analysis/src/report.rs:
