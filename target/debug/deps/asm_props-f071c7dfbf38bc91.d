/root/repo/target/debug/deps/asm_props-f071c7dfbf38bc91.d: crates/vm/tests/asm_props.rs

/root/repo/target/debug/deps/asm_props-f071c7dfbf38bc91: crates/vm/tests/asm_props.rs

crates/vm/tests/asm_props.rs:
