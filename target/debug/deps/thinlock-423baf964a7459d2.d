/root/repo/target/debug/deps/thinlock-423baf964a7459d2.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/debug/deps/libthinlock-423baf964a7459d2.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/tasuki.rs:
crates/core/src/thin.rs:
