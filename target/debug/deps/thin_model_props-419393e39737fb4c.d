/root/repo/target/debug/deps/thin_model_props-419393e39737fb4c.d: crates/core/tests/thin_model_props.rs Cargo.toml

/root/repo/target/debug/deps/libthin_model_props-419393e39737fb4c.rmeta: crates/core/tests/thin_model_props.rs Cargo.toml

crates/core/tests/thin_model_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
