/root/repo/target/debug/deps/thinlock_baselines-5d992a19f4b0f653.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/debug/deps/libthinlock_baselines-5d992a19f4b0f653.rlib: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/debug/deps/libthinlock_baselines-5d992a19f4b0f653.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
