/root/repo/target/debug/deps/replay_properties-bc12a0a0448264e1.d: crates/bench/../../tests/replay_properties.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_properties-bc12a0a0448264e1.rmeta: crates/bench/../../tests/replay_properties.rs Cargo.toml

crates/bench/../../tests/replay_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
