/root/repo/target/debug/deps/thinlock_bench-b608fd213b2cb74a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_bench-b608fd213b2cb74a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
