/root/repo/target/debug/deps/thinlock_trace-f6950d1b3a2bc9fa.d: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

/root/repo/target/debug/deps/libthinlock_trace-f6950d1b3a2bc9fa.rmeta: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

crates/trace/src/lib.rs:
crates/trace/src/characterize.rs:
crates/trace/src/concurrent.rs:
crates/trace/src/generator.rs:
crates/trace/src/io.rs:
crates/trace/src/replay.rs:
crates/trace/src/table1.rs:
