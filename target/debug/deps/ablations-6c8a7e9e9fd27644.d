/root/repo/target/debug/deps/ablations-6c8a7e9e9fd27644.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-6c8a7e9e9fd27644.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
