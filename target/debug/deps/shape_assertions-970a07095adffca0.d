/root/repo/target/debug/deps/shape_assertions-970a07095adffca0.d: crates/bench/../../tests/shape_assertions.rs

/root/repo/target/debug/deps/shape_assertions-970a07095adffca0: crates/bench/../../tests/shape_assertions.rs

crates/bench/../../tests/shape_assertions.rs:
