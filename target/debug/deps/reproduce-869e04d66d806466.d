/root/repo/target/debug/deps/reproduce-869e04d66d806466.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-869e04d66d806466.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
