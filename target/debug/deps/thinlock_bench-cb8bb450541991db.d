/root/repo/target/debug/deps/thinlock_bench-cb8bb450541991db.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthinlock_bench-cb8bb450541991db.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthinlock_bench-cb8bb450541991db.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
