/root/repo/target/debug/deps/oracle_stress-908e67086a22ed62.d: crates/monitor/tests/oracle_stress.rs

/root/repo/target/debug/deps/liboracle_stress-908e67086a22ed62.rmeta: crates/monitor/tests/oracle_stress.rs

crates/monitor/tests/oracle_stress.rs:
