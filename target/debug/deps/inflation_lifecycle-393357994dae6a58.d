/root/repo/target/debug/deps/inflation_lifecycle-393357994dae6a58.d: crates/bench/../../tests/inflation_lifecycle.rs

/root/repo/target/debug/deps/libinflation_lifecycle-393357994dae6a58.rmeta: crates/bench/../../tests/inflation_lifecycle.rs

crates/bench/../../tests/inflation_lifecycle.rs:
