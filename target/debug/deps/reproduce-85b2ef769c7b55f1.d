/root/repo/target/debug/deps/reproduce-85b2ef769c7b55f1.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-85b2ef769c7b55f1: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
