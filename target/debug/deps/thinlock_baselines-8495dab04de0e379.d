/root/repo/target/debug/deps/thinlock_baselines-8495dab04de0e379.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/debug/deps/libthinlock_baselines-8495dab04de0e379.rmeta: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
