/root/repo/target/debug/deps/fig4_micro-0ab27d4c8961601e.d: crates/bench/benches/fig4_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfig4_micro-0ab27d4c8961601e.rmeta: crates/bench/benches/fig4_micro.rs Cargo.toml

crates/bench/benches/fig4_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
