/root/repo/target/debug/deps/reproduce-a3788c113dd6490f.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/libreproduce-a3788c113dd6490f.rmeta: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
