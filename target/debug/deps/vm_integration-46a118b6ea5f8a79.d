/root/repo/target/debug/deps/vm_integration-46a118b6ea5f8a79.d: crates/bench/../../tests/vm_integration.rs Cargo.toml

/root/repo/target/debug/deps/libvm_integration-46a118b6ea5f8a79.rmeta: crates/bench/../../tests/vm_integration.rs Cargo.toml

crates/bench/../../tests/vm_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
