/root/repo/target/debug/deps/exceptions-dea8716f90ad2b84.d: crates/vm/tests/exceptions.rs Cargo.toml

/root/repo/target/debug/deps/libexceptions-dea8716f90ad2b84.rmeta: crates/vm/tests/exceptions.rs Cargo.toml

crates/vm/tests/exceptions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
