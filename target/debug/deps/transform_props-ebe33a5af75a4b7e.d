/root/repo/target/debug/deps/transform_props-ebe33a5af75a4b7e.d: crates/vm/tests/transform_props.rs Cargo.toml

/root/repo/target/debug/deps/libtransform_props-ebe33a5af75a4b7e.rmeta: crates/vm/tests/transform_props.rs Cargo.toml

crates/vm/tests/transform_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
