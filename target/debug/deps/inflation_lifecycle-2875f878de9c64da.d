/root/repo/target/debug/deps/inflation_lifecycle-2875f878de9c64da.d: crates/bench/../../tests/inflation_lifecycle.rs

/root/repo/target/debug/deps/inflation_lifecycle-2875f878de9c64da: crates/bench/../../tests/inflation_lifecycle.rs

crates/bench/../../tests/inflation_lifecycle.rs:
