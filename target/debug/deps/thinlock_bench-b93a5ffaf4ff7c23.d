/root/repo/target/debug/deps/thinlock_bench-b93a5ffaf4ff7c23.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_bench-b93a5ffaf4ff7c23.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
