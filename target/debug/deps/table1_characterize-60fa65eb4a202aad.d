/root/repo/target/debug/deps/table1_characterize-60fa65eb4a202aad.d: crates/bench/benches/table1_characterize.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_characterize-60fa65eb4a202aad.rmeta: crates/bench/benches/table1_characterize.rs Cargo.toml

crates/bench/benches/table1_characterize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
