/root/repo/target/debug/deps/reproduce-e3a3422f887707fc.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-e3a3422f887707fc.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
