/root/repo/target/debug/deps/dynamic_oracle-cfa9a5fe4926d242.d: crates/analysis/tests/dynamic_oracle.rs Cargo.toml

/root/repo/target/debug/deps/libdynamic_oracle-cfa9a5fe4926d242.rmeta: crates/analysis/tests/dynamic_oracle.rs Cargo.toml

crates/analysis/tests/dynamic_oracle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
