/root/repo/target/debug/deps/thinlock_bench-be949f071267b982.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthinlock_bench-be949f071267b982.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
