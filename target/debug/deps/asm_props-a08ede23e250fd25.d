/root/repo/target/debug/deps/asm_props-a08ede23e250fd25.d: crates/vm/tests/asm_props.rs

/root/repo/target/debug/deps/libasm_props-a08ede23e250fd25.rmeta: crates/vm/tests/asm_props.rs

crates/vm/tests/asm_props.rs:
