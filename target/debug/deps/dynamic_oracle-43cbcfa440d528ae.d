/root/repo/target/debug/deps/dynamic_oracle-43cbcfa440d528ae.d: crates/analysis/tests/dynamic_oracle.rs

/root/repo/target/debug/deps/dynamic_oracle-43cbcfa440d528ae: crates/analysis/tests/dynamic_oracle.rs

crates/analysis/tests/dynamic_oracle.rs:
