/root/repo/target/debug/deps/thinlock_vm-22ec69a7d73050fd.d: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

/root/repo/target/debug/deps/libthinlock_vm-22ec69a7d73050fd.rmeta: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

crates/vm/src/lib.rs:
crates/vm/src/asm.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/error.rs:
crates/vm/src/interp.rs:
crates/vm/src/library.rs:
crates/vm/src/program.rs:
crates/vm/src/programs.rs:
crates/vm/src/transform.rs:
crates/vm/src/value.rs:
crates/vm/src/verify.rs:
