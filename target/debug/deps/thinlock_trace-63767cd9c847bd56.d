/root/repo/target/debug/deps/thinlock_trace-63767cd9c847bd56.d: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

/root/repo/target/debug/deps/thinlock_trace-63767cd9c847bd56: crates/trace/src/lib.rs crates/trace/src/characterize.rs crates/trace/src/concurrent.rs crates/trace/src/generator.rs crates/trace/src/io.rs crates/trace/src/replay.rs crates/trace/src/table1.rs

crates/trace/src/lib.rs:
crates/trace/src/characterize.rs:
crates/trace/src/concurrent.rs:
crates/trace/src/generator.rs:
crates/trace/src/io.rs:
crates/trace/src/replay.rs:
crates/trace/src/table1.rs:
