/root/repo/target/debug/deps/thinlock_monitor-b7b8b8ed8d6a374b.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/debug/deps/thinlock_monitor-b7b8b8ed8d6a374b: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
