/root/repo/target/debug/deps/thinlock_bench-b84f1856e76bcc2c.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_bench-b84f1856e76bcc2c.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
