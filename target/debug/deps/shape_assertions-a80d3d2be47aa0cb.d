/root/repo/target/debug/deps/shape_assertions-a80d3d2be47aa0cb.d: crates/bench/../../tests/shape_assertions.rs

/root/repo/target/debug/deps/libshape_assertions-a80d3d2be47aa0cb.rmeta: crates/bench/../../tests/shape_assertions.rs

crates/bench/../../tests/shape_assertions.rs:
