/root/repo/target/debug/deps/thinlock_monitor-c191e590fe155f61.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_monitor-c191e590fe155f61.rmeta: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs Cargo.toml

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
