/root/repo/target/debug/deps/fig5_macro-9998c63ed7636310.d: crates/bench/benches/fig5_macro.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_macro-9998c63ed7636310.rmeta: crates/bench/benches/fig5_macro.rs Cargo.toml

crates/bench/benches/fig5_macro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
