/root/repo/target/debug/deps/reproduce-2328aaabac0a6037.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-2328aaabac0a6037: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
