/root/repo/target/debug/deps/replay_properties-acc68f98ccd202a3.d: crates/bench/../../tests/replay_properties.rs

/root/repo/target/debug/deps/libreplay_properties-acc68f98ccd202a3.rmeta: crates/bench/../../tests/replay_properties.rs

crates/bench/../../tests/replay_properties.rs:
