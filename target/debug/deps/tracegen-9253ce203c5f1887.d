/root/repo/target/debug/deps/tracegen-9253ce203c5f1887.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/debug/deps/tracegen-9253ce203c5f1887: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
