/root/repo/target/debug/deps/thinlock_monitor-6c446ce0ad644d6a.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_monitor-6c446ce0ad644d6a.rmeta: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs Cargo.toml

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
