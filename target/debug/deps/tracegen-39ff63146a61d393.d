/root/repo/target/debug/deps/tracegen-39ff63146a61d393.d: crates/bench/src/bin/tracegen.rs

/root/repo/target/debug/deps/tracegen-39ff63146a61d393: crates/bench/src/bin/tracegen.rs

crates/bench/src/bin/tracegen.rs:
