/root/repo/target/debug/deps/fig5_macro-d23b4a9f1efc5b6d.d: crates/bench/benches/fig5_macro.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_macro-d23b4a9f1efc5b6d.rmeta: crates/bench/benches/fig5_macro.rs Cargo.toml

crates/bench/benches/fig5_macro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
