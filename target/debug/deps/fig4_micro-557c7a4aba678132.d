/root/repo/target/debug/deps/fig4_micro-557c7a4aba678132.d: crates/bench/benches/fig4_micro.rs

/root/repo/target/debug/deps/libfig4_micro-557c7a4aba678132.rmeta: crates/bench/benches/fig4_micro.rs

crates/bench/benches/fig4_micro.rs:
