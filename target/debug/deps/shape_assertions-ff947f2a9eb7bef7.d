/root/repo/target/debug/deps/shape_assertions-ff947f2a9eb7bef7.d: crates/bench/../../tests/shape_assertions.rs Cargo.toml

/root/repo/target/debug/deps/libshape_assertions-ff947f2a9eb7bef7.rmeta: crates/bench/../../tests/shape_assertions.rs Cargo.toml

crates/bench/../../tests/shape_assertions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
