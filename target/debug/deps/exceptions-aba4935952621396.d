/root/repo/target/debug/deps/exceptions-aba4935952621396.d: crates/vm/tests/exceptions.rs

/root/repo/target/debug/deps/exceptions-aba4935952621396: crates/vm/tests/exceptions.rs

crates/vm/tests/exceptions.rs:
