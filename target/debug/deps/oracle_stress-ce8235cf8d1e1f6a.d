/root/repo/target/debug/deps/oracle_stress-ce8235cf8d1e1f6a.d: crates/monitor/tests/oracle_stress.rs

/root/repo/target/debug/deps/oracle_stress-ce8235cf8d1e1f6a: crates/monitor/tests/oracle_stress.rs

crates/monitor/tests/oracle_stress.rs:
