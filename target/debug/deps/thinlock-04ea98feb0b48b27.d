/root/repo/target/debug/deps/thinlock-04ea98feb0b48b27.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/debug/deps/libthinlock-04ea98feb0b48b27.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

/root/repo/target/debug/deps/libthinlock-04ea98feb0b48b27.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/tasuki.rs crates/core/src/thin.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/tasuki.rs:
crates/core/src/thin.rs:
