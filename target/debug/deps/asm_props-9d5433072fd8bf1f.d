/root/repo/target/debug/deps/asm_props-9d5433072fd8bf1f.d: crates/vm/tests/asm_props.rs Cargo.toml

/root/repo/target/debug/deps/libasm_props-9d5433072fd8bf1f.rmeta: crates/vm/tests/asm_props.rs Cargo.toml

crates/vm/tests/asm_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
