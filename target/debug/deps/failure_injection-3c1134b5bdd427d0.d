/root/repo/target/debug/deps/failure_injection-3c1134b5bdd427d0.d: crates/bench/../../tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-3c1134b5bdd427d0: crates/bench/../../tests/failure_injection.rs

crates/bench/../../tests/failure_injection.rs:
