/root/repo/target/debug/deps/lockcheck-7718e217481876bb.d: crates/analysis/src/bin/lockcheck.rs

/root/repo/target/debug/deps/lockcheck-7718e217481876bb: crates/analysis/src/bin/lockcheck.rs

crates/analysis/src/bin/lockcheck.rs:
