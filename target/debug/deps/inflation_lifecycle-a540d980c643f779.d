/root/repo/target/debug/deps/inflation_lifecycle-a540d980c643f779.d: crates/bench/../../tests/inflation_lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/libinflation_lifecycle-a540d980c643f779.rmeta: crates/bench/../../tests/inflation_lifecycle.rs Cargo.toml

crates/bench/../../tests/inflation_lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
