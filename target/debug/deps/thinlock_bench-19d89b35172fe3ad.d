/root/repo/target/debug/deps/thinlock_bench-19d89b35172fe3ad.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthinlock_bench-19d89b35172fe3ad.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
