/root/repo/target/debug/deps/thinlock_vm-3f7e99f98391f461.d: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

/root/repo/target/debug/deps/thinlock_vm-3f7e99f98391f461: crates/vm/src/lib.rs crates/vm/src/asm.rs crates/vm/src/bytecode.rs crates/vm/src/error.rs crates/vm/src/interp.rs crates/vm/src/library.rs crates/vm/src/program.rs crates/vm/src/programs.rs crates/vm/src/transform.rs crates/vm/src/value.rs crates/vm/src/verify.rs

crates/vm/src/lib.rs:
crates/vm/src/asm.rs:
crates/vm/src/bytecode.rs:
crates/vm/src/error.rs:
crates/vm/src/interp.rs:
crates/vm/src/library.rs:
crates/vm/src/program.rs:
crates/vm/src/programs.rs:
crates/vm/src/transform.rs:
crates/vm/src/value.rs:
crates/vm/src/verify.rs:
