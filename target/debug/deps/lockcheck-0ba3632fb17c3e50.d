/root/repo/target/debug/deps/lockcheck-0ba3632fb17c3e50.d: crates/analysis/src/bin/lockcheck.rs

/root/repo/target/debug/deps/liblockcheck-0ba3632fb17c3e50.rmeta: crates/analysis/src/bin/lockcheck.rs

crates/analysis/src/bin/lockcheck.rs:
