/root/repo/target/debug/deps/alu_ops-df130bdd0f7e2738.d: crates/vm/tests/alu_ops.rs

/root/repo/target/debug/deps/alu_ops-df130bdd0f7e2738: crates/vm/tests/alu_ops.rs

crates/vm/tests/alu_ops.rs:
