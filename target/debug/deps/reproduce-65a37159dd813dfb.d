/root/repo/target/debug/deps/reproduce-65a37159dd813dfb.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-65a37159dd813dfb: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
