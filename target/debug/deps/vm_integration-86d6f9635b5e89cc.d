/root/repo/target/debug/deps/vm_integration-86d6f9635b5e89cc.d: crates/bench/../../tests/vm_integration.rs

/root/repo/target/debug/deps/vm_integration-86d6f9635b5e89cc: crates/bench/../../tests/vm_integration.rs

crates/bench/../../tests/vm_integration.rs:
