/root/repo/target/debug/deps/failure_injection-895a71b359622ae3.d: crates/bench/../../tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-895a71b359622ae3.rmeta: crates/bench/../../tests/failure_injection.rs Cargo.toml

crates/bench/../../tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
