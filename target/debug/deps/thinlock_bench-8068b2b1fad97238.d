/root/repo/target/debug/deps/thinlock_bench-8068b2b1fad97238.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libthinlock_bench-8068b2b1fad97238.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
