/root/repo/target/debug/deps/lockcheck-5e4cf311a5e44e5e.d: crates/analysis/src/bin/lockcheck.rs Cargo.toml

/root/repo/target/debug/deps/liblockcheck-5e4cf311a5e44e5e.rmeta: crates/analysis/src/bin/lockcheck.rs Cargo.toml

crates/analysis/src/bin/lockcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
