/root/repo/target/debug/deps/lockcheck-5069c8f922a44e3d.d: crates/analysis/src/bin/lockcheck.rs Cargo.toml

/root/repo/target/debug/deps/liblockcheck-5069c8f922a44e3d.rmeta: crates/analysis/src/bin/lockcheck.rs Cargo.toml

crates/analysis/src/bin/lockcheck.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
