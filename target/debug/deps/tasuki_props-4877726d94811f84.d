/root/repo/target/debug/deps/tasuki_props-4877726d94811f84.d: crates/core/tests/tasuki_props.rs

/root/repo/target/debug/deps/libtasuki_props-4877726d94811f84.rmeta: crates/core/tests/tasuki_props.rs

crates/core/tests/tasuki_props.rs:
