/root/repo/target/debug/deps/table1_characterize-b2acd670a9e62023.d: crates/bench/benches/table1_characterize.rs

/root/repo/target/debug/deps/libtable1_characterize-b2acd670a9e62023.rmeta: crates/bench/benches/table1_characterize.rs

crates/bench/benches/table1_characterize.rs:
