/root/repo/target/debug/deps/thinlock_analysis-782d0ea82454595d.d: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

/root/repo/target/debug/deps/libthinlock_analysis-782d0ea82454595d.rlib: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

/root/repo/target/debug/deps/libthinlock_analysis-782d0ea82454595d.rmeta: crates/analysis/src/lib.rs crates/analysis/src/escape.rs crates/analysis/src/lockorder.rs crates/analysis/src/lockstack.rs crates/analysis/src/nestdepth.rs crates/analysis/src/report.rs

crates/analysis/src/lib.rs:
crates/analysis/src/escape.rs:
crates/analysis/src/lockorder.rs:
crates/analysis/src/lockstack.rs:
crates/analysis/src/nestdepth.rs:
crates/analysis/src/report.rs:
