/root/repo/target/debug/deps/thinlock_monitor-19896f270a83189a.d: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

/root/repo/target/debug/deps/libthinlock_monitor-19896f270a83189a.rmeta: crates/monitor/src/lib.rs crates/monitor/src/fatlock.rs crates/monitor/src/table.rs

crates/monitor/src/lib.rs:
crates/monitor/src/fatlock.rs:
crates/monitor/src/table.rs:
