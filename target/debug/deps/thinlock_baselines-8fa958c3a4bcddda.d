/root/repo/target/debug/deps/thinlock_baselines-8fa958c3a4bcddda.d: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

/root/repo/target/debug/deps/thinlock_baselines-8fa958c3a4bcddda: crates/baselines/src/lib.rs crates/baselines/src/cache.rs crates/baselines/src/hot.rs

crates/baselines/src/lib.rs:
crates/baselines/src/cache.rs:
crates/baselines/src/hot.rs:
