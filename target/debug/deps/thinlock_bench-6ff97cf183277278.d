/root/repo/target/debug/deps/thinlock_bench-6ff97cf183277278.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthinlock_bench-6ff97cf183277278.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libthinlock_bench-6ff97cf183277278.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
