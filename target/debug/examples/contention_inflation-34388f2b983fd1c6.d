/root/repo/target/debug/examples/contention_inflation-34388f2b983fd1c6.d: crates/bench/../../examples/contention_inflation.rs

/root/repo/target/debug/examples/contention_inflation-34388f2b983fd1c6: crates/bench/../../examples/contention_inflation.rs

crates/bench/../../examples/contention_inflation.rs:
