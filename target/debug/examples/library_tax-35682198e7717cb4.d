/root/repo/target/debug/examples/library_tax-35682198e7717cb4.d: crates/bench/../../examples/library_tax.rs

/root/repo/target/debug/examples/liblibrary_tax-35682198e7717cb4.rmeta: crates/bench/../../examples/library_tax.rs

crates/bench/../../examples/library_tax.rs:
