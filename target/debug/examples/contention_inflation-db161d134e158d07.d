/root/repo/target/debug/examples/contention_inflation-db161d134e158d07.d: crates/bench/../../examples/contention_inflation.rs Cargo.toml

/root/repo/target/debug/examples/libcontention_inflation-db161d134e158d07.rmeta: crates/bench/../../examples/contention_inflation.rs Cargo.toml

crates/bench/../../examples/contention_inflation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
