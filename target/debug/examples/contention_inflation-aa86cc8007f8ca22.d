/root/repo/target/debug/examples/contention_inflation-aa86cc8007f8ca22.d: crates/bench/../../examples/contention_inflation.rs

/root/repo/target/debug/examples/contention_inflation-aa86cc8007f8ca22: crates/bench/../../examples/contention_inflation.rs

crates/bench/../../examples/contention_inflation.rs:
