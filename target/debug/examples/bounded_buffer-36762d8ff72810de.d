/root/repo/target/debug/examples/bounded_buffer-36762d8ff72810de.d: crates/bench/../../examples/bounded_buffer.rs Cargo.toml

/root/repo/target/debug/examples/libbounded_buffer-36762d8ff72810de.rmeta: crates/bench/../../examples/bounded_buffer.rs Cargo.toml

crates/bench/../../examples/bounded_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
