/root/repo/target/debug/examples/library_tax-2a0bb64e86a3a107.d: crates/bench/../../examples/library_tax.rs Cargo.toml

/root/repo/target/debug/examples/liblibrary_tax-2a0bb64e86a3a107.rmeta: crates/bench/../../examples/library_tax.rs Cargo.toml

crates/bench/../../examples/library_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
