/root/repo/target/debug/examples/contention_inflation-c8975d42d031ae3a.d: crates/bench/../../examples/contention_inflation.rs

/root/repo/target/debug/examples/libcontention_inflation-c8975d42d031ae3a.rmeta: crates/bench/../../examples/contention_inflation.rs

crates/bench/../../examples/contention_inflation.rs:
