/root/repo/target/debug/examples/assembler-ae31491aec52a9c0.d: crates/bench/../../examples/assembler.rs

/root/repo/target/debug/examples/libassembler-ae31491aec52a9c0.rmeta: crates/bench/../../examples/assembler.rs

crates/bench/../../examples/assembler.rs:
