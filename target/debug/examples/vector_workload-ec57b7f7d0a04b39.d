/root/repo/target/debug/examples/vector_workload-ec57b7f7d0a04b39.d: crates/bench/../../examples/vector_workload.rs Cargo.toml

/root/repo/target/debug/examples/libvector_workload-ec57b7f7d0a04b39.rmeta: crates/bench/../../examples/vector_workload.rs Cargo.toml

crates/bench/../../examples/vector_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
