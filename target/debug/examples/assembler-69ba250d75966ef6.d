/root/repo/target/debug/examples/assembler-69ba250d75966ef6.d: crates/bench/../../examples/assembler.rs Cargo.toml

/root/repo/target/debug/examples/libassembler-69ba250d75966ef6.rmeta: crates/bench/../../examples/assembler.rs Cargo.toml

crates/bench/../../examples/assembler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
