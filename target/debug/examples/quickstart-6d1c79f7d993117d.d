/root/repo/target/debug/examples/quickstart-6d1c79f7d993117d.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-6d1c79f7d993117d.rmeta: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
