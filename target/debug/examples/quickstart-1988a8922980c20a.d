/root/repo/target/debug/examples/quickstart-1988a8922980c20a.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1988a8922980c20a: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
