/root/repo/target/debug/examples/assembler-0824d8f4d85368c3.d: crates/bench/../../examples/assembler.rs

/root/repo/target/debug/examples/assembler-0824d8f4d85368c3: crates/bench/../../examples/assembler.rs

crates/bench/../../examples/assembler.rs:
