/root/repo/target/debug/examples/assembler-3171c579c5558ef3.d: crates/bench/../../examples/assembler.rs Cargo.toml

/root/repo/target/debug/examples/libassembler-3171c579c5558ef3.rmeta: crates/bench/../../examples/assembler.rs Cargo.toml

crates/bench/../../examples/assembler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
