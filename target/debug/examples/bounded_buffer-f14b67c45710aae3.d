/root/repo/target/debug/examples/bounded_buffer-f14b67c45710aae3.d: crates/bench/../../examples/bounded_buffer.rs

/root/repo/target/debug/examples/bounded_buffer-f14b67c45710aae3: crates/bench/../../examples/bounded_buffer.rs

crates/bench/../../examples/bounded_buffer.rs:
