/root/repo/target/debug/examples/vector_workload-e654ab21e35c4a9f.d: crates/bench/../../examples/vector_workload.rs Cargo.toml

/root/repo/target/debug/examples/libvector_workload-e654ab21e35c4a9f.rmeta: crates/bench/../../examples/vector_workload.rs Cargo.toml

crates/bench/../../examples/vector_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
