/root/repo/target/debug/examples/library_tax-af4a2e497b03ec04.d: crates/bench/../../examples/library_tax.rs Cargo.toml

/root/repo/target/debug/examples/liblibrary_tax-af4a2e497b03ec04.rmeta: crates/bench/../../examples/library_tax.rs Cargo.toml

crates/bench/../../examples/library_tax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
