/root/repo/target/debug/examples/quickstart-27adc6c9d322d63b.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-27adc6c9d322d63b: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
