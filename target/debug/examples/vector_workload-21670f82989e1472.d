/root/repo/target/debug/examples/vector_workload-21670f82989e1472.d: crates/bench/../../examples/vector_workload.rs

/root/repo/target/debug/examples/vector_workload-21670f82989e1472: crates/bench/../../examples/vector_workload.rs

crates/bench/../../examples/vector_workload.rs:
