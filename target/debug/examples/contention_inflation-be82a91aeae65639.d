/root/repo/target/debug/examples/contention_inflation-be82a91aeae65639.d: crates/bench/../../examples/contention_inflation.rs Cargo.toml

/root/repo/target/debug/examples/libcontention_inflation-be82a91aeae65639.rmeta: crates/bench/../../examples/contention_inflation.rs Cargo.toml

crates/bench/../../examples/contention_inflation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
