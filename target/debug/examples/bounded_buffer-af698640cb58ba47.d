/root/repo/target/debug/examples/bounded_buffer-af698640cb58ba47.d: crates/bench/../../examples/bounded_buffer.rs

/root/repo/target/debug/examples/bounded_buffer-af698640cb58ba47: crates/bench/../../examples/bounded_buffer.rs

crates/bench/../../examples/bounded_buffer.rs:
