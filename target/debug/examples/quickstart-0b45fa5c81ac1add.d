/root/repo/target/debug/examples/quickstart-0b45fa5c81ac1add.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-0b45fa5c81ac1add.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
