/root/repo/target/debug/examples/library_tax-cc7eea13d18f17e6.d: crates/bench/../../examples/library_tax.rs

/root/repo/target/debug/examples/library_tax-cc7eea13d18f17e6: crates/bench/../../examples/library_tax.rs

crates/bench/../../examples/library_tax.rs:
