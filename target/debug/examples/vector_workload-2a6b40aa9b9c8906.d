/root/repo/target/debug/examples/vector_workload-2a6b40aa9b9c8906.d: crates/bench/../../examples/vector_workload.rs

/root/repo/target/debug/examples/vector_workload-2a6b40aa9b9c8906: crates/bench/../../examples/vector_workload.rs

crates/bench/../../examples/vector_workload.rs:
