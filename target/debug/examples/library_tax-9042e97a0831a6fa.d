/root/repo/target/debug/examples/library_tax-9042e97a0831a6fa.d: crates/bench/../../examples/library_tax.rs

/root/repo/target/debug/examples/library_tax-9042e97a0831a6fa: crates/bench/../../examples/library_tax.rs

crates/bench/../../examples/library_tax.rs:
