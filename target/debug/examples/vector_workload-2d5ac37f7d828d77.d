/root/repo/target/debug/examples/vector_workload-2d5ac37f7d828d77.d: crates/bench/../../examples/vector_workload.rs

/root/repo/target/debug/examples/libvector_workload-2d5ac37f7d828d77.rmeta: crates/bench/../../examples/vector_workload.rs

crates/bench/../../examples/vector_workload.rs:
