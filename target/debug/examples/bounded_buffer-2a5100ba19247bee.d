/root/repo/target/debug/examples/bounded_buffer-2a5100ba19247bee.d: crates/bench/../../examples/bounded_buffer.rs

/root/repo/target/debug/examples/libbounded_buffer-2a5100ba19247bee.rmeta: crates/bench/../../examples/bounded_buffer.rs

crates/bench/../../examples/bounded_buffer.rs:
