/root/repo/target/debug/examples/bounded_buffer-181d5c89ccdc2747.d: crates/bench/../../examples/bounded_buffer.rs Cargo.toml

/root/repo/target/debug/examples/libbounded_buffer-181d5c89ccdc2747.rmeta: crates/bench/../../examples/bounded_buffer.rs Cargo.toml

crates/bench/../../examples/bounded_buffer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
