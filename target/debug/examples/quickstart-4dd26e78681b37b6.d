/root/repo/target/debug/examples/quickstart-4dd26e78681b37b6.d: crates/bench/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4dd26e78681b37b6.rmeta: crates/bench/../../examples/quickstart.rs Cargo.toml

crates/bench/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
