/root/repo/target/debug/examples/assembler-93aebf0742ac155a.d: crates/bench/../../examples/assembler.rs

/root/repo/target/debug/examples/assembler-93aebf0742ac155a: crates/bench/../../examples/assembler.rs

crates/bench/../../examples/assembler.rs:
