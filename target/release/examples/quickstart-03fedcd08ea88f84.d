/root/repo/target/release/examples/quickstart-03fedcd08ea88f84.d: crates/bench/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-03fedcd08ea88f84: crates/bench/../../examples/quickstart.rs

crates/bench/../../examples/quickstart.rs:
